"""Table 4: lines of code modified to apply ZebraConf to each application.

The paper reports two counts per application: lines touching the node
classes (startInit/stopInit/refToCloneConf annotations) and lines
touching the configuration class (newConf/cloneConf/interceptGet/
interceptSet hooks).  We regenerate both by scanning this repository's
application sources for the actual annotation call sites.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro
from repro.core.report import render_table

APPS_DIR = Path(repro.__file__).parent / "apps"
CONF_CLASS = Path(repro.__file__).parent / "common" / "configuration.py"

#: one regex per node-class annotation kind (Fig. 2b)
NODE_ANNOTATIONS = (
    re.compile(r"\bnode_init\("),       # start/stop pair, counted as 2
    re.compile(r"\bstart_init\("),
    re.compile(r"\bstop_init\("),
    re.compile(r"\bref_to_clone\("),
)

#: configuration-class hook call sites (Fig. 2a)
CONF_ANNOTATIONS = (
    re.compile(r"\bnew_conf\(self\)"),
    re.compile(r"\bclone_conf\(source, self\)"),
    re.compile(r"\bintercept_get\(self"),
    re.compile(r"\bintercept_set\(self"),
    re.compile(r"\bref_to_clone_conf\(conf\)"),
)

PAPER_TABLE4 = {
    "flink": (30, 8), "hadoop-common": (0, 6), "hbase": (16, 7),
    "hdfs": (24, 6), "mapreduce": (12, 6), "yarn": (12, 6),
}


def count_annotations():
    per_app = {}
    for app_dir in sorted(APPS_DIR.iterdir()):
        if not app_dir.is_dir() or app_dir.name == "__pycache__":
            continue
        lines = 0
        for source in app_dir.rglob("*.py"):
            if "suite" in source.parts:
                continue  # unit tests are reused, not modified
            for line in source.read_text().splitlines():
                for pattern in NODE_ANNOTATIONS:
                    if pattern.search(line):
                        weight = 2 if "node_init(" in line else 1
                        lines += weight
                        break
        per_app[app_dir.name] = lines
    conf_lines = 0
    for line in CONF_CLASS.read_text().splitlines():
        if any(p.search(line) for p in CONF_ANNOTATIONS):
            conf_lines += 1
    return per_app, conf_lines


def test_table4_annotation_effort(benchmark):
    per_app, conf_lines = benchmark(count_annotations)

    rows = []
    for app in ("flink", "hbase", "hdfs", "mapreduce", "yarn"):
        paper_nodes, paper_conf = PAPER_TABLE4[app]
        rows.append([app, per_app.get(app, 0), conf_lines,
                     paper_nodes, paper_conf])
    print("\nTable 4 — modified LOC to apply ZebraConf (ours vs paper):")
    print(render_table(["App", "node-class LOC (ours)",
                        "conf-class LOC (ours)", "node LOC (paper)",
                        "conf LOC (paper)"], rows))
    print("(the conf-class hooks live in the shared Configuration class, "
          "one set for all Hadoop-style apps, as in the paper's 6-8 lines)")

    # the effort is small everywhere, as in the paper's 21-38 LOC
    for app, lines in per_app.items():
        assert lines <= 40, (app, lines)
    # Flink's inlined-init quirk costs extra annotation lines (§7.2);
    # its per-node effort must exceed the simplest apps'
    assert per_app["flink"] >= 4
    # the configuration class needs only a handful of hook lines
    assert 3 <= conf_lines <= 10
