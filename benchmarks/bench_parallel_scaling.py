"""§4 "Test in parallel": unit tests are independent, so campaigns fan
out across workers (the paper used up to 100 machines / 2,000 containers).

The bench runs the HDFS campaign at several worker *thread* counts.  The
load-bearing property is **independence**: findings must be identical at
every width.  Thread-level parallelism itself buys nothing here — the
simulated tests are pure-Python CPU work serialized by the GIL, so the
sweep typically shows flat-to-slower wall times; the paper's speedup
came from process/machine-level fan-out, which the same independence
enables.
"""

from __future__ import annotations

import time

from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import render_table


def run_at_width(workers: int):
    spec = catalog.spec_for("hdfs")
    started = time.time()
    report = Campaign("hdfs", spec.registry,
                      dependency_rules=spec.dependency_rules,
                      config=CampaignConfig(workers=workers)).run()
    return {
        "workers": workers,
        "wall_s": time.time() - started,
        "true_problems": tuple(sorted(v.param for v in report.true_problems)),
        "executions": report.executions,
    }


def sweep():
    return [run_at_width(workers) for workers in (1, 2, 4, 8)]


def test_parallel_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nWorker-count sweep (HDFS campaign):")
    print(render_table(
        ["workers", "wall seconds", "executions", "true problems"],
        [[r["workers"], "%.1f" % r["wall_s"], r["executions"],
          len(r["true_problems"])] for r in rows]))
    serial = rows[0]["wall_s"]
    widest = rows[-1]["wall_s"]
    print("speedup 1 -> 8 workers: %.1fx" % (serial / max(widest, 1e-9)))
    print("(the paper parallelised across up to 100 machines x 20 "
          "containers; unit-test independence is what makes this safe)")

    # findings are identical at every parallelism — the property that
    # makes machine-level fan-out safe
    assert len({r["true_problems"] for r in rows}) == 1
    # thread overhead stays bounded (no pathological contention)
    assert widest <= serial * 1.7
