"""Execution-cache effectiveness and parallel-backend throughput.

Two claims are measured on the HDFS campaign:

1. **Cache**: with ``exec_cache`` on, identical (test, assignment, seed)
   executions are served from the content-addressed cache, cutting total
   unit-test executions by >= 40% while every verdict stays byte-identical
   to the uncached run (the cache-soundness invariant).
2. **Process backend**: with profiles decoupled (``blacklist_threshold``
   high enough that no cross-profile state couples scheduling), the
   fork-based backend beats the GIL-bound thread backend on multi-core
   hosts.  The assertion is conditional on ``os.cpu_count()`` — on a
   single-core runner process fan-out cannot win and only the
   equal-findings invariant is checked.

The measured rows are written as a JSON artifact (path from the
``EXECCACHE_BENCH_JSON`` environment variable, default
``bench_execcache.json``) so CI can archive the numbers per commit.
"""

from __future__ import annotations

import json
import os
import time

from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, render_table

APP = "hdfs"


def _run(**config_kwargs):
    spec = catalog.spec_for(APP)
    campaign = Campaign(APP, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(**config_kwargs))
    started = time.time()
    report = campaign.run()
    return report, time.time() - started


def _verdict_view(report):
    """The report minus run-cost bookkeeping: what soundness preserves."""
    record = app_report_to_dict(report)
    for volatile in ("executions", "machine_time_s", "exec_cache",
                     "supervision", "cost_centers"):
        record.pop(volatile, None)
    return json.dumps(record, sort_keys=True)


def measure():
    rows = {}

    uncached, uncached_wall = _run(exec_cache=False)
    cached, cached_wall = _run(exec_cache=True)
    rows["cache"] = {
        "executions_uncached": uncached.executions,
        "executions_cached": cached.executions,
        "saved_fraction": 1 - cached.executions / uncached.executions,
        "cache_hits": cached.pool_stats.exec_cache_hits,
        "cache_misses": cached.pool_stats.exec_cache_misses,
        "cache_bypasses": cached.pool_stats.exec_cache_bypasses,
        "wall_uncached_s": uncached_wall,
        "wall_cached_s": cached_wall,
        "verdicts_identical": _verdict_view(uncached) == _verdict_view(cached),
    }

    thread, thread_wall = _run(workers=4, parallel_backend="thread",
                               blacklist_threshold=999)
    process, process_wall = _run(workers=4, parallel_backend="process",
                                 blacklist_threshold=999)
    rows["backends"] = {
        "cpu_count": os.cpu_count() or 1,
        "workers": 4,
        "wall_thread_s": thread_wall,
        "wall_process_s": process_wall,
        "findings_identical": _verdict_view(thread) == _verdict_view(process),
    }
    return rows


def test_execcache_and_backends(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    cache, backends = rows["cache"], rows["backends"]
    print("\nExecution cache (HDFS campaign):")
    print(render_table(
        ["metric", "value"],
        [["executions (uncached)", cache["executions_uncached"]],
         ["executions (cached)", cache["executions_cached"]],
         ["saved", "%.1f%%" % (100 * cache["saved_fraction"])],
         ["hits / misses / bypasses",
          "%d / %d / %d" % (cache["cache_hits"], cache["cache_misses"],
                            cache["cache_bypasses"])],
         ["wall uncached -> cached",
          "%.1fs -> %.1fs" % (cache["wall_uncached_s"],
                              cache["wall_cached_s"])]]))
    print("thread vs process at %d workers (%d CPUs): %.1fs vs %.1fs"
          % (backends["workers"], backends["cpu_count"],
             backends["wall_thread_s"], backends["wall_process_s"]))

    artifact = os.environ.get("EXECCACHE_BENCH_JSON", "bench_execcache.json")
    with open(artifact, "w") as sink:
        json.dump(rows, sink, indent=2, sort_keys=True)
    print("wrote %s" % artifact)

    # soundness: caching may only remove duplicate work, never change it
    assert cache["verdicts_identical"]
    assert cache["saved_fraction"] >= 0.40
    assert cache["cache_hits"] > 0

    # backends agree on findings regardless of scheduling
    assert backends["findings_identical"]
    # fork fan-out only beats the GIL when there are cores to fan onto
    if backends["cpu_count"] >= 2:
        assert backends["wall_process_s"] < backends["wall_thread_s"]
