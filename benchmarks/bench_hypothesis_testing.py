"""§7.2 "Effects of hypothesis testing" + ablation.

The paper: 2,167 test instances failed their first trial; hypothesis
testing (significance 1e-4) filtered 731 as nondeterministic false
positives.  This bench (a) reports the same statistic from the full
campaign, and (b) runs the ablation: with single-trial reporting (no
multi-trial confirmation), flaky tests inject spurious parameters.
"""

from __future__ import annotations

from _shared import full_report
from repro.core.pooling import PooledTester
from repro.core.runner import CONFIRMED_UNSAFE, FLAKY_DISMISSED, TestRunner
from repro.core.testgen import ROUND_ROBIN, TestGenerator

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from synthetic_app import SYNTH_REGISTRY, two_service_test  # noqa: E402


def flaky_first_trial_outcomes(trials: int = 40, flaky_rate: float = 0.5):
    """Evaluate a *safe* parameter on a very flaky test many times; count
    how often the first trial looks suspicious and how often the
    hypothesis test lets it through."""
    suspicious = confirmed = 0
    generator = TestGenerator(SYNTH_REGISTRY)
    param = SYNTH_REGISTRY.get("synth.safe-a")
    for index in range(trials):
        test = two_service_test(name="TestSynth.testFlaky%03d" % index,
                                flaky_rate=flaky_rate, flaky=True)
        runner = TestRunner()
        tester = PooledTester(runner)
        unit = generator.assignment(param, "Service", ROUND_ROBIN,
                                    generator.value_pairs(param)[0])
        for result in tester.run(test, "Service", ROUND_ROBIN, [unit]):
            if result.verdict in (CONFIRMED_UNSAFE, FLAKY_DISMISSED):
                suspicious += 1
            if result.verdict == CONFIRMED_UNSAFE:
                confirmed += 1
    return suspicious, confirmed


def test_hypothesis_testing_effects(benchmark):
    suspicious, confirmed = benchmark.pedantic(flaky_first_trial_outcomes,
                                               rounds=1, iterations=1)

    report = full_report()
    total_suspicious = sum(a.hypothesis_stats.suspicious_first_trial
                           for a in report.apps)
    total_filtered = sum(a.hypothesis_stats.filtered_as_flaky
                         for a in report.apps)
    print("\n§7.2 — effects of hypothesis testing")
    print("full campaign: %d suspicious first trials, %d filtered as flaky"
          % (total_suspicious, total_filtered))
    print("(paper: 2,167 first-trial failures, 731 filtered)")

    print("\nablation on a 50%%-flaky test and a SAFE parameter:")
    print("  first trials that looked suspicious : %d / 40" % suspicious)
    print("  confirmed after multi-trial testing : %d / 40" % confirmed)
    print("  -> without hypothesis testing, every suspicious first trial "
          "would have been reported")

    # the full campaign needed the filter (flaky corpus tests exist)
    assert total_filtered > 0
    assert total_suspicious > total_filtered
    # ablation: flakiness produces suspicious first trials, and the
    # hypothesis test eliminates every one of them for a safe parameter
    assert suspicious > 0
    assert confirmed == 0
