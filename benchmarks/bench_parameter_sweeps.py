"""Parameter sweeps over ZebraConf's own knobs (§4's design space).

Two sweeps on the MapReduce campaign:

* **pool size** — from 1 (no pooling) through the paper's setting (all
  parameters in one pool).  The paper argues pooling works because "most
  configuration parameters are heterogeneous safe"; the sweep shows the
  instances-run curve flattening as pools grow, with findings invariant.
* **blacklist threshold** — how many distinct failing unit tests before a
  parameter is declared unsafe outright.  Lower thresholds cut repeat
  confirmations of wide failures (encryption/compression-style
  parameters, §4) without changing findings.
"""

from __future__ import annotations

from _shared import app_report
from repro.core.report import render_table


def sweep_pool_sizes(sizes=(1, 2, 4, 8, None)):
    rows = []
    for size in sizes:
        report = app_report("mapreduce", max_pool_size=size)
        rows.append({
            "pool_size": "all (paper)" if size is None else size,
            "instances_run": report.stage_counts.after_pooling,
            "executions": report.executions,
            "true_problems": len(report.true_problems),
        })
    return rows


def sweep_blacklist_thresholds(thresholds=(1, 2, 3, 10 ** 9)):
    rows = []
    for threshold in thresholds:
        report = app_report("mapreduce", blacklist_threshold=threshold)
        rows.append({
            "threshold": "off" if threshold >= 10 ** 9 else threshold,
            "executions": report.executions,
            "blacklisted": len(report.blacklisted),
            "true_problems": len(report.true_problems),
        })
    return rows


def test_pool_size_sweep(benchmark):
    rows = benchmark.pedantic(sweep_pool_sizes, rounds=1, iterations=1)

    print("\nPool-size sweep (MapReduce campaign):")
    print(render_table(["pool size", "instances run", "executions",
                        "true problems"],
                       [[r["pool_size"], r["instances_run"], r["executions"],
                         r["true_problems"]] for r in rows]))

    # findings never depend on the pooling knob
    assert len({r["true_problems"] for r in rows}) == 1
    # no pooling runs the most instances; the paper's setting (unbounded
    # pools) sits at — or within worker-scheduling noise of — the minimum
    instances = [r["instances_run"] for r in rows]
    assert instances[0] == max(instances)
    assert instances[-1] <= instances[0] * 0.9
    assert instances[-1] <= min(instances) * 1.05


def test_blacklist_threshold_sweep(benchmark):
    rows = benchmark.pedantic(sweep_blacklist_thresholds, rounds=1,
                              iterations=1)

    print("\nBlacklist-threshold sweep (MapReduce campaign):")
    print(render_table(["threshold", "executions", "blacklisted params",
                        "true problems"],
                       [[r["threshold"], r["executions"], r["blacklisted"],
                         r["true_problems"]] for r in rows]))

    assert len({r["true_problems"] for r in rows}) == 1
    # with the blacklist off nothing is blacklisted; with it on, the
    # wide-failure parameters are
    assert rows[-1]["blacklisted"] == 0
    assert rows[0]["blacklisted"] >= 1
    # the blacklist saves work relative to "off"
    assert rows[0]["executions"] <= rows[-1]["executions"]