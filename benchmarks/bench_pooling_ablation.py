"""Ablation: pooled testing and the frequent-failure blacklist (§4).

DESIGN.md calls out pooled testing with bisection + the blacklist as a
key design choice.  The ablation runs the MapReduce campaign with pooling
disabled (pool size 1) and with the blacklist effectively off, and shows
both knobs buy a large chunk of the Table-5 reduction without changing
the findings.
"""

from __future__ import annotations

from _shared import app_report
from repro.core.report import render_table


def run_variants():
    baseline = app_report("mapreduce")
    unpooled = app_report("mapreduce", max_pool_size=1)
    no_blacklist = app_report("mapreduce", blacklist_threshold=10 ** 9)
    return baseline, unpooled, no_blacklist


def test_pooling_and_blacklist_ablation(benchmark):
    baseline, unpooled, no_blacklist = benchmark.pedantic(
        run_variants, rounds=1, iterations=1)

    rows = []
    for label, report in (("pooling + blacklist (paper)", baseline),
                          ("pool size 1 (no pooling)", unpooled),
                          ("no blacklist", no_blacklist)):
        rows.append([label, report.stage_counts.after_pooling,
                     report.executions,
                     len(report.true_problems)])
    print("\nAblation — MapReduce campaign:")
    print(render_table(["Variant", "instances run", "executions",
                        "true problems"], rows))

    # findings are identical across variants
    found = {v.param for v in baseline.true_problems}
    assert {v.param for v in unpooled.true_problems} == found
    assert {v.param for v in no_blacklist.true_problems} == found

    # pooling reduces the instances actually run
    assert (baseline.stage_counts.after_pooling
            < unpooled.stage_counts.after_pooling)
    # the blacklist cuts executions spent re-confirming wide failures
    assert baseline.executions <= no_blacklist.executions
