"""Registry wiring audit: probe economy and separate-budget accounting.

The audit's pitch is "cheap to build, cheap to run": differential
probes reuse the exec-cache canonical forms, so most of the sweep
collapses onto the baseline or hits the probe memo.  The bench audits
every app, prints the per-app probe economy, and gates on the two
headline invariants — planted fixtures flagged, zero false positives
against each app's evaluation ground truth — plus a sanity floor on
the economy itself (the memo + collapse must save at least as many
executions as it spends).
"""

from __future__ import annotations

from repro.apps import catalog
from repro.core.audit import READ_BUT_INERT, UNREAD, audit_app
from repro.core.report import render_table


def audit_all_apps():
    return {app: audit_app(app) for app in catalog.APP_NAMES}


def test_audit_probe_economy(benchmark):
    results = benchmark.pedantic(audit_all_apps, rounds=1, iterations=1)

    rows = []
    for app, stats in sorted(results.items()):
        rows.append([app, stats.params_total, stats.wired, stats.unread,
                     stats.inert, stats.probe_executions,
                     stats.probe_cache_hits, stats.probes_collapsed,
                     "%.1f" % (stats.machine_time_s / 3600)])
    print("\n" + render_table(
        ["app", "params", "WIRED", "UNREAD", "INERT", "probes",
         "memo hits", "collapsed", "audit hours"], rows))

    for app, stats in results.items():
        spec = catalog.spec_for(app)
        reported = (set(spec.expected_unsafe)
                    | set(spec.expected_false_positives))
        flagged = {f.param for f in stats.flagged()}
        assert not (flagged & reported), (app, flagged & reported)
        # probe economy: the memo and baseline collapse save executions
        saved = stats.probe_cache_hits + stats.probes_collapsed
        assert saved >= stats.probe_executions // 2, (app, saved)

    # the planted fixtures are the living end-to-end proof
    assert results["hdfs"].verdict_for(
        "dfs.namenode.lock.detailed-metrics.enabled") == UNREAD
    assert results["hdfs"].verdict_for(
        "dfs.datanode.metrics.logger.period.seconds") == READ_BUT_INERT
    assert results["yarn"].verdict_for(
        "yarn.nodemanager.disk-health-checker.enable") == UNREAD
    assert results["yarn"].verdict_for(
        "yarn.nodemanager.container-metrics.period-ms") == READ_BUT_INERT
