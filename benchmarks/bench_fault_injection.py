"""Overhead and verdict accuracy of campaigns under fault injection.

The tentpole question for the chaos subsystem: how much extra work does a
realistic fault plan cost, and does it shake the verdicts?  A chaos
campaign re-runs more instances (injected hetero-only failures look
suspicious and must be dismissed by hypothesis testing, infra errors are
retried), so executions go up — but the reported parameters must not
change, or the robustness machinery would be trading correctness for
realism.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.common.faults import FaultPlan
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import render_table

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))
from test_faults import CHAOS_REGISTRY, chaos_test  # noqa: E402


def run_campaign(fault_plan=None, tests: int = 20):
    corpus = [chaos_test(name="TestChaos.testWindowAgreement%02d" % index)
              for index in range(tests)]
    config = CampaignConfig(
        fault_plan=fault_plan,
        only_params=frozenset(("chaos.window", "chaos.buffer")))
    return Campaign("chaos", CHAOS_REGISTRY, tests=corpus,
                    config=config).run()


def run_variants():
    clean = run_campaign()
    moderate = run_campaign(FaultPlan.moderate(seed=11))
    heavy = run_campaign(FaultPlan(seed=11, drop_prob=0.15, delay_prob=0.1,
                                   duplicate_prob=0.02, crash_prob=0.05,
                                   io_slowdown_prob=0.05, clock_jitter=0.02,
                                   infra_error_prob=0.02))
    return clean, moderate, heavy


def test_fault_injection_overhead(benchmark):
    clean, moderate, heavy = benchmark.pedantic(run_variants, rounds=1,
                                                iterations=1)

    rows = []
    for label, report in (("clean", clean), ("moderate chaos", moderate),
                          ("heavy chaos", heavy)):
        overhead = (report.executions / clean.executions - 1.0) * 100.0
        rows.append([label, report.executions, "%+.0f%%" % overhead,
                     sum(report.fault_counts.values()),
                     report.infra_retries_performed,
                     report.hypothesis_stats.filtered_as_flaky,
                     ",".join(sorted(v.param for v in report.verdicts))])
    print("\nFault-injection overhead — chaos mini-app campaign:")
    print(render_table(["Variant", "executions", "overhead", "faults",
                        "infra retries", "dismissed", "reported"], rows))

    # Verdict accuracy: chaos must not change what is reported.  The
    # planted unsafe parameter survives, the safe one stays unreported.
    for report in (clean, moderate, heavy):
        reported = {v.param for v in report.verdicts}
        assert "chaos.window" in reported
        assert "chaos.buffer" not in reported

    # Chaos costs executions (confirmation re-runs + infra retries) and
    # the clean campaign injects nothing.
    assert heavy.executions > clean.executions
    assert clean.fault_counts == {}
    assert sum(heavy.fault_counts.values()) > 0
