"""§7.1 case study: dfs.datanode.balance.max.concurrent.moves.

The paper measured the unit test's balancing time under three settings:
(DataNode:50, Balancer:50) = 14s, (1,1) = 16.7s, (1,50) = 154s — the
heterogeneous configuration is ~9.2x slower because every declined move
costs the Balancer dispatcher an 1100 ms congestion back-off.  The bench
regenerates the series and asserts the shape: both homogeneous settings
finish comparably, the heterogeneous one collapses by >=5x.
"""

from __future__ import annotations

from repro.apps.hdfs import Balancer, HdfsConfiguration, MiniDFSCluster
from repro.core.confagent import ConfAgent
from repro.core.report import render_table
from repro.core.testgen import HeteroAssignment, ParamAssignment

PAPER_SERIES = {(50, 50): 14.0, (1, 1): 16.7, (1, 50): 154.0}


def balancing_time(dn_limit: int, balancer_limit: int,
                   blocks: int = 100) -> float:
    agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param="dfs.datanode.balance.max.concurrent.moves", group="DataNode",
        group_values=(dn_limit,), other_value=balancer_limit),)))
    with agent:
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        try:
            moves = [{"block_id": cluster.place_block("/b/f%03d" % i,
                                                      ["dn0"]),
                      "source": "dn0", "target": "dn1"}
                     for i in range(blocks)]
            balancer = Balancer(conf, cluster)
            return balancer.run_balancing(moves,
                                          timeout_s=100000.0)["elapsed_s"]
        finally:
            cluster.shutdown()


def full_series():
    return {setting: balancing_time(*setting) for setting in PAPER_SERIES}


def test_concurrent_moves_case_study(benchmark):
    series = benchmark.pedantic(full_series, rounds=1, iterations=1)

    print("\n§7.1 case study — balancing time by "
          "(DataNode, Balancer) max.concurrent.moves:")
    print(render_table(
        ["(DataNode, Balancer)", "simulated seconds (ours)",
         "seconds (paper)"],
        [["(%d, %d)" % s, "%.1f" % series[s], "%.1f" % PAPER_SERIES[s]]
         for s in sorted(PAPER_SERIES)]))
    ratio = series[(1, 50)] / series[(1, 1)]
    paper_ratio = PAPER_SERIES[(1, 50)] / PAPER_SERIES[(1, 1)]
    print("heterogeneous collapse: %.1fx (paper: %.1fx)"
          % (ratio, paper_ratio))

    # the shape the paper reports
    assert series[(50, 50)] <= series[(1, 1)]
    assert ratio >= 5.0
    benchmark.extra_info["collapse_ratio"] = round(ratio, 2)
