"""Simulation-kernel microbenchmarks: the fast path versus the legacy path.

Every unit-test execution in the reproduction is pure scheduling work on
:class:`repro.common.simulation.Simulator`, so kernel overhead multiplies
through the runner, the pooled tester, and every parallel backend.  This
bench isolates the three kernel optimisations behind
``repro.perf.FAST_PATH`` and measures each against the legacy path on
identical workloads:

1. **cancel-heavy** — the heartbeat/timeout-reset pattern (ipc timeouts,
   node heartbeats, bandwidth throttling): a monitor cancels and
   re-arms a deadline timer on every tick.  Legacy lazily deletes
   cancelled entries only when popped, so the heap bloats and every
   push/pop pays ``log`` of the bloated size; the fast path compacts the
   heap once cancelled entries dominate.
2. **pending-scan** — ``Simulator.pending_events()``, O(1) live counter
   versus the legacy O(n) heap scan.
3. **wire-encode** — repeated identical layered frames (codec /
   encryption / ssl headers) served from the encode memo versus
   re-encoded from scratch.

Raw event throughput is also recorded (absolute, host-dependent — a
trajectory number, not a baselined one).  The measured rows land in
``BENCH_simkernel.json``; the committed speedup baselines under
``benchmarks/baselines/`` fail the bench on a >10% regression.
"""

from __future__ import annotations

import time

from _shared import check_against_baseline, write_bench_artifact
from repro import perf
from repro.common.simulation import PeriodicTask, Simulator
from repro.common.wire import clear_wire_memo, encode_payload
from repro.core.report import render_table

ARTIFACT = "BENCH_simkernel.json"


def _timed(fn, *args):
    started = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - started


def _ab(fn, *args):
    """Run ``fn`` with the fast path off then on; return (legacy, fast)."""
    previous = perf.set_fast_path(False)
    try:
        clear_wire_memo()
        _, legacy = _timed(fn, *args)
        perf.set_fast_path(True)
        clear_wire_memo()
        result, fast = _timed(fn, *args)
    finally:
        perf.set_fast_path(previous)
    return result, legacy, fast


def cancel_heavy(resets: int) -> int:
    """Heartbeat monitor: every tick cancels and re-arms its deadline."""
    sim = Simulator()
    state = {"deadline": None, "expired": 0}

    def expire() -> None:
        state["expired"] += 1

    def beat() -> None:
        if state["deadline"] is not None:
            state["deadline"].cancel()
        state["deadline"] = sim.schedule(600.0, expire)

    task = PeriodicTask(sim, lambda: 1.0, beat)
    sim.run_until(float(resets))
    task.stop()
    assert state["expired"] == 0  # the monitor always reset in time
    return sim.pending_events()


def pending_scan(live: int, calls: int) -> int:
    sim = Simulator()
    for _ in range(live):
        sim.schedule(1.0, int)
    total = 0
    for _ in range(calls):
        total += sim.pending_events()
    assert total == live * calls
    return total


def wire_encode(frames: int) -> int:
    payload = {"method": "sendHeartbeat", "node": "dn-0", "blocks": 128}
    total = 0
    for _ in range(frames):
        total += len(encode_payload(payload, codec="gzip",
                                    encryption_key=b"sasl-privacy-wrap"))
    return total


def wire_encode_large(frames: int) -> int:
    """Large repeated frames: the digest-keyed encode memo's home turf.

    A block manifest is kilobytes of JSON; with the memo keyed by a
    16-byte content digest instead of the full canonical text, thousands
    of distinct large frames fit in the memo without pinning their key
    strings, and repeated sends skip the compress+encrypt stack.
    """
    payload = {"method": "blockReport", "node": "dn-0",
               "blocks": [{"id": i, "gen": i % 7, "len": 134217728}
                          for i in range(256)]}
    total = 0
    for _ in range(frames):
        total += len(encode_payload(payload, codec="gzip",
                                    encryption_key=b"sasl-privacy-wrap"))
    return total


def conf_get(lookups: int) -> int:
    """Registry-backed ``Configuration.get`` outside any agent scope.

    Exercises the ``agent_getter`` fast path (a bound contextvar ``get``
    versus the ``current_agent()`` wrapper frame) on the hottest call in
    the harness.  The win is one Python frame per lookup — real but
    small, so this row is recorded for trajectory without a speedup
    assertion or committed baseline.
    """
    import sys
    sys.path.insert(0, "tests") if "tests" not in sys.path else None
    from synthetic_app import SynthConfiguration

    conf = SynthConfiguration()
    conf.set("synth.replication", 3)
    total = 0
    for _ in range(lookups):
        total += conf.get("synth.replication")
    return total


def conf_get_findings_identical() -> bool:
    """A full campaign must report identically with FAST_PATH off and on.

    The fast path must be a pure mechanism change: same agent, same
    interception, same findings.  Runs the synthetic corpus twice and
    compares the findings projection byte-for-byte.
    """
    import json
    import sys
    sys.path.insert(0, "tests") if "tests" not in sys.path else None
    from synthetic_app import (SYNTH_REGISTRY, client_vs_service_test,
                               safe_only_test, two_service_test)
    from repro.core.orchestrator import Campaign, CampaignConfig
    from repro.core.report import app_report_to_dict, findings_projection

    def run_once() -> str:
        tests = [two_service_test(), client_vs_service_test(),
                 safe_only_test()]
        report = Campaign("synth", SYNTH_REGISTRY, tests=tests,
                          config=CampaignConfig()).run()
        return json.dumps(findings_projection(app_report_to_dict(report)),
                          sort_keys=True)

    previous = perf.set_fast_path(False)
    try:
        legacy_findings = run_once()
        perf.set_fast_path(True)
        fast_findings = run_once()
    finally:
        perf.set_fast_path(previous)
    return legacy_findings == fast_findings


def event_throughput(events: int) -> float:
    sim = Simulator()
    for i in range(events):
        sim.schedule(float(i % 97), int)
    _, wall = _timed(sim.run)
    return events / wall if wall else float("inf")


def measure() -> dict:
    rows = {}

    _, legacy, fast = _ab(cancel_heavy, 20000)
    rows["cancel_heavy"] = {"resets": 20000, "wall_legacy_s": legacy,
                            "wall_fast_s": fast,
                            "speedup": legacy / fast}

    _, legacy, fast = _ab(pending_scan, 2000, 2000)
    rows["pending_scan"] = {"live_timers": 2000, "calls": 2000,
                            "wall_legacy_s": legacy, "wall_fast_s": fast,
                            "speedup": legacy / fast}

    _, legacy, fast = _ab(wire_encode, 20000)
    rows["wire_encode"] = {"frames": 20000, "wall_legacy_s": legacy,
                           "wall_fast_s": fast,
                           "speedup": legacy / fast}

    _, legacy, fast = _ab(wire_encode_large, 2000)
    rows["wire_encode_large"] = {"frames": 2000, "wall_legacy_s": legacy,
                                 "wall_fast_s": fast,
                                 "speedup": legacy / fast}

    # Trajectory row (no >1.0 assertion, no baseline: the win is a single
    # Python frame per lookup and too small to gate CI on).
    _, legacy, fast = _ab(conf_get, 200000)
    rows["conf_get"] = {"lookups": 200000, "wall_legacy_s": legacy,
                        "wall_fast_s": fast, "speedup": legacy / fast}

    rows["conf_get_findings_identical"] = {
        "identical": conf_get_findings_identical()}

    rows["event_throughput"] = {"events": 50000,
                                "events_per_s": event_throughput(50000)}
    return rows


def test_simkernel_fast_path(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\nSimulation-kernel fast path (FAST_PATH on vs off):")
    print(render_table(
        ["microbench", "legacy", "fast", "speedup"],
        [[name,
          "%.3fs" % row["wall_legacy_s"], "%.3fs" % row["wall_fast_s"],
          "%.2fx" % row["speedup"]]
         for name, row in rows.items() if "speedup" in row]))
    print("raw event throughput: %.0f events/s"
          % rows["event_throughput"]["events_per_s"])

    write_bench_artifact(ARTIFACT, rows)

    # The kernel win the tentpole promises: every fast-path mechanism
    # must beat the legacy path on its own workload.
    assert rows["cancel_heavy"]["speedup"] > 1.0
    assert rows["pending_scan"]["speedup"] > 1.0
    assert rows["wire_encode"]["speedup"] > 1.0
    assert rows["wire_encode_large"]["speedup"] > 1.0

    # The conf-get fast path must be behaviour-preserving: a campaign run
    # with FAST_PATH off and on reports byte-identical findings.
    assert rows["conf_get_findings_identical"]["identical"]

    regressions = check_against_baseline(ARTIFACT, rows)
    assert not regressions, "\n".join(regressions)
