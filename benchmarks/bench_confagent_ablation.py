"""Ablation: rule-based conf mapping vs the paper's failed attempts (§6.1).

The paper tried (and abandoned) attributing Configuration.get calls to
the node owning the *calling thread*.  Whole-system unit tests routinely
call node internals from the test thread, so that oracle misattributes
reads.  The ablation replays the HDFS pre-run under both agents and
counts disagreements.
"""

from __future__ import annotations

import random

from repro.core.confagent import ThreadOwnershipAgent
from repro.core.registry import TestContext, load_all_suites
from repro.core.report import render_table

PRERUN_SEED = 20210426


def misattribution_counts():
    corpus = load_all_suites()
    rows = []
    for test in corpus.for_app("hdfs"):
        agent = ThreadOwnershipAgent(record_usage=True)
        with agent:
            try:
                test.fn(TestContext(rng=random.Random(PRERUN_SEED)))
            except Exception:  # noqa: BLE001 - outcome irrelevant here
                pass
        if agent.node_table:
            rows.append((test.name, agent.misattributions))
    return rows


def test_thread_ownership_misattributes(benchmark):
    rows = benchmark.pedantic(misattribution_counts, rounds=1, iterations=1)

    affected = [(name, count) for name, count in rows if count > 0]
    print("\nAblation — thread-ownership oracle vs rule-based mapping on "
          "the HDFS corpus:")
    print(render_table(
        ["Unit test", "misattributed reads"],
        [[name, count] for name, count in sorted(
            affected, key=lambda r: -r[1])[:10]]))
    print("%d of %d node-starting tests have misattributed reads"
          % (len(affected), len(rows)))

    # the paper's observation: the thread-based oracle is wrong on most
    # whole-system unit tests, because tests call node internals directly
    assert len(affected) >= len(rows) * 0.5
    assert sum(count for _, count in rows) > 100
