"""Configuration sampling: the measured recall-vs-executions trade-off.

``--sample`` (repro/core/plan.py, docs/PLANNING.md) thins the exhaustive
(strategy, value-pair layer, parameter) enumeration inside each unit-test
profile.  A cell not run is a bug not catchable, so the only honest way
to advertise the feature is to measure what each strategy gives up: this
bench runs the full campaign on two real applications, takes its
reported parameters as the reference set, then re-runs with each
sampling strategy **at the pairwise budget** (``--sample-k`` defaults to
it, so the three strategies are comparable at equal cost) and records

* ``executions`` — total test executions burned,
* ``recall`` — the fraction of the full campaign's reported parameters
  the sampled campaign still reports,
* ``savings`` — full-campaign executions over sampled executions.

The shape the planning layer promises — pairwise covers every
(parameter, layer) exactly once and therefore dominates a same-budget
uniform draw — is asserted per run, and the committed floors under
``benchmarks/baselines/BENCH_sampling.json`` fail the bench when a code
change erodes pairwise recall or its execution savings.  CI uploads the
measured ``BENCH_sampling.json`` per commit.
"""

from __future__ import annotations

from _shared import check_against_baseline, write_bench_artifact
from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.plan import SAMPLE_MODES, SAMPLE_PAIRWISE, SAMPLE_RANDOM_K
from repro.core.report import render_table

ARTIFACT = "BENCH_sampling.json"

#: two real substrates with different corpus shapes: flink's corpus is
#: group-heavy (TaskManager fleets), hbase's is parameter-heavy.
APPS = ("flink", "hbase")
SAMPLE_SEED = 7


def run_app(app: str, sample=None):
    spec = catalog.spec_for(app)
    campaign = Campaign(app, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(sample=sample,
                                              sample_seed=SAMPLE_SEED))
    return campaign.run()


def reported_params(report):
    return {verdict.param for verdict in report.verdicts}


def measure() -> dict:
    rows = {}
    for app in APPS:
        full = run_app(app)
        reference = reported_params(full)
        rows[app] = {"full": {"executions": full.executions,
                              "reported": len(reference),
                              "recall": 1.0, "savings": 1.0}}
        for mode in SAMPLE_MODES:
            report = run_app(app, sample=mode)
            found = reported_params(report)
            recall = (len(found & reference) / len(reference)
                      if reference else 1.0)
            rows[app][mode] = {
                "executions": report.executions,
                "reported": len(found),
                "recall": recall,
                "savings": full.executions / report.executions,
            }
    return rows


def test_sampling_recall_curve(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\nSampling recall vs executions (seed %d, pairwise budget):"
          % SAMPLE_SEED)
    print(render_table(
        ["app", "strategy", "executions", "reported", "recall", "savings"],
        [[app, mode, row["executions"], row["reported"],
          "%.2f" % row["recall"], "%.2fx" % row["savings"]]
         for app in APPS
         for mode, row in rows[app].items()]))

    write_bench_artifact(ARTIFACT, rows)

    for app in APPS:
        # Only pairwise carries the never-costs-more guarantee: its
        # per-layer strategy choice thins pools without shattering them.
        # The uniform draw can (and on hbase does) scatter a pool's
        # parameters into singleton treatments and burn MORE than the
        # exhaustive walk at the same nominal budget — that overshoot is
        # recorded in the artifact, not asserted away.
        assert rows[app][SAMPLE_PAIRWISE]["executions"] \
            < rows[app]["full"]["executions"], \
            "%s/pairwise failed to beat the exhaustive walk" % app

    # The headline shape: structured coverage beats a same-budget uniform
    # draw on at least one substrate (on most seeds: on both).
    assert any(rows[app][SAMPLE_PAIRWISE]["recall"]
               >= rows[app][SAMPLE_RANDOM_K]["recall"] for app in APPS)

    regressions = check_against_baseline(ARTIFACT, rows)
    assert not regressions, "\n".join(regressions)
