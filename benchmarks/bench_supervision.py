"""Supervision overhead: supervised vs bare process backend.

The supervised pool (``repro/core/supervise.py``) adds pipes,
heartbeats, deadline bookkeeping, and parent-side polling on top of the
bare ``ProcessPoolExecutor``.  On a healthy campaign — no crashes, no
hangs — all of that should be nearly free: the design target is < 5%
wall-clock overhead on the HDFS campaign.

Measured here with profiles decoupled (``blacklist_threshold`` high so
no cross-profile state couples scheduling):

* the supervised and bare runs report **identical findings** (the
  supervisor may only change *how* workers run, never what they find);
* wall-clock overhead is printed and archived; the hard assertion is
  deliberately looser than the 5% target (shared CI runners jitter more
  than the supervisor costs) — it exists to catch order-of-magnitude
  regressions like a hot polling loop.

Rows are written as a JSON artifact (path from the
``SUPERVISION_BENCH_JSON`` environment variable, default
``bench_supervision.json``) so CI can archive the numbers per commit.
"""

from __future__ import annotations

import json
import os
import time

from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, render_table

APP = "hdfs"
WORKERS = 4
#: design target (documented, printed) vs CI gate (noise-tolerant).
TARGET_OVERHEAD = 0.05
MAX_OVERHEAD = 0.25


def _run(**config_kwargs):
    spec = catalog.spec_for(APP)
    campaign = Campaign(APP, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(workers=WORKERS,
                                              parallel_backend="process",
                                              blacklist_threshold=999,
                                              **config_kwargs))
    started = time.time()
    report = campaign.run()
    return report, time.time() - started


def _findings_view(report):
    """The report minus run-scoped bookkeeping: what supervision must
    never change."""
    record = app_report_to_dict(report)
    for volatile in ("executions", "machine_time_s", "exec_cache",
                     "supervision"):
        record.pop(volatile, None)
    return json.dumps(record, sort_keys=True)


def measure():
    bare, bare_wall = _run(supervise=False)
    supervised, supervised_wall = _run(supervise=True)
    overhead = supervised_wall / bare_wall - 1
    return {
        "app": APP,
        "workers": WORKERS,
        "wall_bare_s": bare_wall,
        "wall_supervised_s": supervised_wall,
        "overhead_fraction": overhead,
        "target_overhead_fraction": TARGET_OVERHEAD,
        "workers_spawned": supervised.supervision.workers_spawned,
        "crashes": supervised.supervision.crashes,
        "findings_identical":
            _findings_view(bare) == _findings_view(supervised),
    }


def test_supervision_overhead(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\nSupervision overhead (%s campaign, %d process workers):"
          % (rows["app"], rows["workers"]))
    print(render_table(
        ["metric", "value"],
        [["wall bare backend", "%.2fs" % rows["wall_bare_s"]],
         ["wall supervised", "%.2fs" % rows["wall_supervised_s"]],
         ["overhead", "%.1f%% (target < %.0f%%)"
          % (100 * rows["overhead_fraction"], 100 * TARGET_OVERHEAD)],
         ["workers spawned", rows["workers_spawned"]]]))

    artifact = os.environ.get("SUPERVISION_BENCH_JSON",
                              "bench_supervision.json")
    with open(artifact, "w") as sink:
        json.dump(rows, sink, indent=2, sort_keys=True)
    print("wrote %s" % artifact)

    # supervision may change how workers run, never what they find
    assert rows["findings_identical"]
    # a healthy campaign needs no crash machinery
    assert rows["crashes"] == 0
    # noise-tolerant gate; the 5% design target is tracked via the
    # archived artifact, not asserted on shared runners
    assert rows["overhead_fraction"] < MAX_OVERHEAD
