"""Table 2: the types of nodes investigated per application.

Regenerates the node-type roster from the substrate's registry and
checks it against the paper's Table 2 exactly.
"""

from __future__ import annotations

from repro.common.node import NODE_TYPES
from repro.core.registry import load_all_suites
from repro.core.report import render_table

PAPER_TABLE2 = {
    "flink": {"JobManager", "TaskManager"},
    "hbase": {"HMaster", "HRegionServer", "ThriftServer", "RESTServer"},
    "hdfs": {"NameNode", "DataNode", "SecondaryNameNode", "JournalNode",
             "Balancer", "Mover"},
    "mapreduce": {"MapTask", "ReduceTask", "JobHistoryServer"},
    "yarn": {"ResourceManager", "NodeManager", "ApplicationHistoryServer"},
}


def collect_node_types():
    load_all_suites()
    return {app: set(types) for app, types in NODE_TYPES.items()
            if app in PAPER_TABLE2}


def test_table2_node_types(benchmark):
    ours = benchmark(collect_node_types)

    print("\nTable 2 — types of nodes investigated:")
    print(render_table(
        ["Application", "Node types"],
        [[app, ", ".join(sorted(ours.get(app, set())))]
         for app in sorted(PAPER_TABLE2)]))

    assert ours == PAPER_TABLE2
