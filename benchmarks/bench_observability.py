"""Observability overhead: observed vs unobserved campaign.

The observability layer (``repro/core/observe.py``) hangs span and
metric hooks off the runner, pooler, and orchestrator.  Two costs
matter:

* **disabled path** — campaigns run without ``--trace-spans`` /
  ``--metrics-out`` pay only ``if obs is None`` checks; the design
  target is < 2% over a build with no hooks at all, which in practice
  means the unobserved wall time here must stay indistinguishable from
  the pre-observability seed (CI tracks this via the tier-1 suite and
  the archived artifact).
* **enabled path** — full span + metric collection should stay cheap
  relative to the simulated executions it wraps; measured here as the
  observed/unobserved wall-clock ratio.

The benchmark also asserts the two invariants that make the layer safe
to leave on: observation never changes findings, and the exported
metrics reconcile *exactly* with the report.

Rows are written as a JSON artifact (path from the
``OBSERVABILITY_BENCH_JSON`` environment variable, default
``bench_observability.json``) so CI can archive the numbers per commit.
"""

from __future__ import annotations

import json
import os
import time

from repro.apps import catalog
from repro.core.observe import (read_metrics_totals, reconcile_with_report,
                                write_metrics_text)
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, render_table

APP = "mapreduce"
#: design target (documented, printed) vs CI gate (noise-tolerant).
TARGET_OVERHEAD = 0.02
MAX_OVERHEAD = 0.25


def _run(observe):
    spec = catalog.spec_for(APP)
    campaign = Campaign(APP, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(observe=observe))
    started = time.time()
    report = campaign.run()
    return report, time.time() - started


def _findings_view(report):
    """The report minus run-scoped bookkeeping: what observation must
    never change."""
    record = app_report_to_dict(report)
    for volatile in ("executions", "machine_time_s", "exec_cache",
                     "supervision"):
        record.pop(volatile, None)
    return json.dumps(record, sort_keys=True)


def measure(tmp_dir="."):
    plain, plain_wall = _run(observe=False)
    observed, observed_wall = _run(observe=True)
    overhead = observed_wall / plain_wall - 1

    metrics_path = os.path.join(tmp_dir, "bench_observability_metrics.prom")
    write_metrics_text([(APP, observed.observation)], metrics_path)
    problems = reconcile_with_report(read_metrics_totals(metrics_path),
                                     app_report_to_dict(observed))
    os.unlink(metrics_path)

    return {
        "app": APP,
        "wall_unobserved_s": plain_wall,
        "wall_observed_s": observed_wall,
        "overhead_fraction": overhead,
        "target_overhead_fraction": TARGET_OVERHEAD,
        "spans": len(observed.observation.spans),
        "reconciliation_problems": problems,
        "findings_identical":
            _findings_view(plain) == _findings_view(observed),
    }


def test_observability_overhead(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\nObservability overhead (%s campaign, serial):" % rows["app"])
    print(render_table(
        ["metric", "value"],
        [["wall unobserved", "%.2fs" % rows["wall_unobserved_s"]],
         ["wall observed", "%.2fs" % rows["wall_observed_s"]],
         ["overhead", "%.1f%% (disabled-path target < %.0f%%)"
          % (100 * rows["overhead_fraction"], 100 * TARGET_OVERHEAD)],
         ["spans collected", format(rows["spans"], ",")]]))

    artifact = os.environ.get("OBSERVABILITY_BENCH_JSON",
                              "bench_observability.json")
    with open(artifact, "w") as sink:
        json.dump(rows, sink, indent=2, sort_keys=True)
    print("wrote %s" % artifact)

    # observation may change what we can see, never what we find
    assert rows["findings_identical"]
    # the books must balance exactly: metrics == report
    assert rows["reconciliation_problems"] == []
    # noise-tolerant gate; the 2% disabled-path target is tracked via
    # the archived artifact, not asserted on shared runners
    assert rows["overhead_fraction"] < MAX_OVERHEAD
