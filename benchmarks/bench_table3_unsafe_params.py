"""Table 3: the 41 true heterogeneous-unsafe configuration parameters.

Runs the full six-application campaign and checks that exactly the
paper's Table 3 parameters are reported as true problems — same total
(41), same per-section split, same parameter names — with the 16 false
positives triaged out (57 reported in total, §7.1).
"""

from __future__ import annotations

from collections import Counter

from _shared import full_report
from repro.apps import catalog
from repro.core.report import render_unsafe_params

PAPER_SECTION_COUNTS = {"Flink": 3, "Hadoop Common": 2, "HBase": 2,
                        "HDFS": 21, "MapReduce": 8, "Yarn": 5}


def test_table3_unsafe_parameters(benchmark):
    report = full_report()  # cached campaign (~20-30s on first use)
    table = benchmark(render_unsafe_params, report)

    print("\nTable 3 — true heterogeneous-unsafe parameters found:")
    print(table)

    true_problems = report.unique_true_problems()
    false_positives = report.unique_false_positives()
    sections = Counter(catalog.section_for_param(v.param)
                       for v in true_problems)
    print("\nfound %d true problems (paper: 41), %d false positives "
          "(paper: 16), %d reported (paper: 57)"
          % (len(true_problems), len(false_positives),
             len(true_problems) + len(false_positives)))
    print("per-section: %s" % dict(sections))

    assert len(true_problems) == 41
    assert len(false_positives) == 16
    assert dict(sections) == PAPER_SECTION_COUNTS

    expected = set()
    for app in catalog.APP_NAMES:
        expected |= set(catalog.spec_for(app).expected_unsafe)
    assert {v.param for v in true_problems} == expected

    # every found parameter has its Table-3 "why" on record, and the
    # observed failure mechanism matches the paper's description where a
    # keyword check is meaningful
    print("\nper-parameter mechanism (paper's 'why' column):")
    for verdict in true_problems:
        print("  %-58s %s" % (verdict.param, catalog.TABLE3_WHY[verdict.param]))
    assert set(catalog.TABLE3_WHY) == expected
