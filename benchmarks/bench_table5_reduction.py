"""Table 5: test-instance counts after each successively applied method,
plus the §4 machine-time accounting.

The paper's headline: pre-running + uncertainty removal + pooled testing
cut the instances to run by **two to four orders of magnitude** per
application, bringing the whole evaluation to 4,652 machine hours.  Our
corpus is smaller, so the bench asserts the *shape*: monotone reduction,
at least ~one order of magnitude end to end per application, small
uncertainty exclusions, and a bounded machine-time total.
"""

from __future__ import annotations

import math

from _shared import full_report
from repro.apps import catalog
from repro.core.report import render_stage_counts, render_table


def test_table5_instance_reduction(benchmark):
    report = full_report()  # cached campaign (~20-30s on first use)
    table = benchmark(render_stage_counts, report.apps)

    print("\nTable 5 — instances after successively applied methods (ours):")
    print(table)

    print("\npaper's Table 5:")
    stages = ("Original", "After pre-running unit tests",
              "After removing uncertainty", "After pooled testing")
    print(render_table(
        ["Stage"] + list(catalog.APP_NAMES),
        [[stage] + [format(catalog.PAPER_TABLE5[a][i], ",")
                    for a in catalog.APP_NAMES]
         for i, stage in enumerate(stages)]))

    print("\nreduction in orders of magnitude (ours vs paper):")
    for app_report in report.apps:
        paper = catalog.PAPER_TABLE5[app_report.app]
        paper_orders = math.log10(paper[0] / paper[3])
        print("  %-12s %.1f orders (paper: %.1f)"
              % (app_report.app, app_report.stage_counts.reduction_orders(),
                 paper_orders))

    for app_report in report.apps:
        counts = app_report.stage_counts
        # monotone: each technique only removes instances
        assert counts.original >= counts.after_prerun
        assert counts.after_prerun >= counts.after_uncertainty
        assert counts.after_uncertainty >= counts.after_pooling
        # substantial end-to-end reduction on every application
        assert counts.reduction_orders() >= 1.0
        # uncertainty exclusions are a small fraction (<10%, §6.2)
        if counts.after_prerun:
            excluded = counts.after_prerun - counts.after_uncertainty
            assert excluded / counts.after_prerun <= 0.10

    hours = report.total_machine_hours
    print("\nmodelled machine time: %.1f hours (paper: 4,652 machine hours "
          "on up to 100 machines)" % hours)
    print("projected wall time on the paper's 100x20-container testbed: "
          "%.2f hours (paper's equivalent: %.2f hours)"
          % (report.projected_wall_hours(), 4652 / 2000))
    assert hours > 0
    assert report.projected_wall_hours() < hours
