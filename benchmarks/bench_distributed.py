"""Distributed-fleet smoke bench: coordinator + two real worker
processes, one SIGKILLed mid-campaign.

This is the robustness headline measured end to end over real TCP:

* two ``repro worker`` subprocesses join the coordinator, fetch leases,
  and ship outcomes back over the length-prefixed frame protocol;
* one worker is SIGKILLed as soon as it has committed at least one
  profile, so its outstanding lease must be detected (heartbeat
  liveness), redelivered, and finished by the survivor;
* the report must come out **byte-identical** to the serial baseline —
  where a profile ran, how often it was redelivered, and which worker
  won a stolen copy can never change findings, because outcomes are
  folded in catalog order keyed by test.

Wall-clock numbers are archived (``BENCH_distributed.json``) for the
per-commit trajectory; the hard gates are report equivalence and the
fleet actually exercising the failure path (a worker joined, died, and
the campaign still finished remotely).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import repro
from _shared import write_bench_artifact
from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, render_table

APP = "mapreduce"
FLEET_SIZE = 2

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _free_port():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _fresh_campaign(**config_kwargs):
    spec = catalog.spec_for(APP)
    # blacklist_threshold high: decoupled profiles, the precondition for
    # profile-level distribution (mirrors bench_supervision.py)
    return Campaign(APP, spec.registry,
                    dependency_rules=spec.dependency_rules,
                    config=CampaignConfig(blacklist_threshold=999,
                                          **config_kwargs))


def _findings_view(report):
    """The report minus run-scoped bookkeeping: what distribution must
    never change."""
    record = app_report_to_dict(report)
    for volatile in ("supervision", "distribution"):
        record.pop(volatile, None)
    return record


def _run_fleet():
    port = _free_port()
    address = "127.0.0.1:%d" % port
    campaign = _fresh_campaign(distributed=address, dist_join_grace_s=60.0,
                               dist_fleet_grace_s=30.0)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", address, "--name", "w%d" % i, "--workers", "1"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for i in range(FLEET_SIZE)]

    def kill_first_busy_worker():
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if campaign.distribution.remote_profiles >= 1:
                workers[0].send_signal(signal.SIGKILL)
                return
            time.sleep(0.005)

    killer = threading.Thread(target=kill_first_busy_worker, daemon=True)
    killer.start()
    started = time.time()
    try:
        report = campaign.run()
    finally:
        for proc in workers:
            proc.kill()
            proc.wait(timeout=30)
    killer.join(timeout=5)
    return report, time.time() - started


def measure():
    serial_campaign = _fresh_campaign()
    started = time.time()
    serial = serial_campaign.run()
    serial_wall = time.time() - started

    fleet, fleet_wall = _run_fleet()
    stats = fleet.distribution
    return {
        "app": APP,
        "fleet_size": FLEET_SIZE,
        "wall_serial_s": serial_wall,
        "wall_fleet_s": fleet_wall,
        "workers_joined": stats.workers_joined,
        "workers_lost": stats.workers_lost,
        "leases_granted": stats.leases_granted,
        "redeliveries": stats.redeliveries,
        "duplicates_suppressed": stats.duplicates_suppressed,
        "remote_profiles": stats.remote_profiles,
        "local_profiles": stats.local_profiles,
        "degraded_to_local": stats.degraded_to_local,
        "findings_identical":
            _findings_view(serial) == _findings_view(fleet),
    }


def test_distributed_fleet_survives_worker_kill(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\nDistributed fleet (%s campaign, %d workers, one SIGKILL):"
          % (rows["app"], rows["fleet_size"]))
    print(render_table(
        ["metric", "value"],
        [["wall serial", "%.2fs" % rows["wall_serial_s"]],
         ["wall fleet", "%.2fs" % rows["wall_fleet_s"]],
         ["workers joined / lost", "%d / %d"
          % (rows["workers_joined"], rows["workers_lost"])],
         ["leases granted", rows["leases_granted"]],
         ["redeliveries", rows["redeliveries"]],
         ["remote / local profiles", "%d / %d"
          % (rows["remote_profiles"], rows["local_profiles"])]]))

    write_bench_artifact("BENCH_distributed.json", rows)

    # distribution may change where profiles run, never what they find
    assert rows["findings_identical"]
    # the failure path must actually have been exercised
    assert rows["workers_joined"] >= 2
    assert rows["workers_lost"] >= 1
    # the fleet (not the degradation ladder) finished the campaign
    assert rows["remote_profiles"] >= 1
    assert not rows["degraded_to_local"]
