"""§7.1 case study: dfs.datanode.balance.bandwidthPerSec.

"a DataNode with a high bandwidth limit may send many packets to a
DataNode with a low limit so that the latter may run out of its quota ...
such throttling may prevent the DataNode from sending progress reports to
the Balancer ... the Balancer times out eventually."

The bench streams the same 50 MB transfer under homogeneous and
heterogeneous bandwidth settings and asserts that only the fast->slow
heterogeneous setting starves the receiver's progress reports.
"""

from __future__ import annotations

from repro.apps.hdfs import Balancer, HdfsConfiguration, MiniDFSCluster
from repro.common.errors import BalancerTimeout
from repro.core.confagent import ConfAgent
from repro.core.report import render_table
from repro.core.testgen import HeteroAssignment, ParamAssignment

MB = 1024 * 1024
SCENARIOS = (
    ("homogeneous default (10 MB/s)", 10 * MB, 10 * MB),
    ("homogeneous high (1000 MB/s)", 1000 * MB, 1000 * MB),
    ("homogeneous low (100 KB/s)", 100 * 1024, 100 * 1024),
    ("HETERO fast sender -> slow receiver", 1000 * MB, 100 * 1024),
    ("hetero slow sender -> fast receiver", 100 * 1024, 1000 * MB),
)


def run_scenario(source_rate: int, target_rate: int):
    agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param="dfs.datanode.balance.bandwidthPerSec", group="DataNode",
        group_values=(source_rate, target_rate), other_value=target_rate),)))
    with agent:
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        try:
            balancer = Balancer(conf, cluster)
            try:
                result = balancer.run_throttled_transfer(
                    "dn0", "dn1", block_bytes=50 * MB,
                    progress_timeout_s=3.0)
                return ("completed", result["elapsed_s"],
                        cluster.datanodes[1].balance_throttler.deficit)
            except BalancerTimeout:
                return ("TIMEOUT", float("nan"),
                        cluster.datanodes[1].balance_throttler.deficit)
        finally:
            cluster.shutdown()


def full_series():
    return {label: run_scenario(src, dst) for label, src, dst in SCENARIOS}


def test_bandwidth_case_study(benchmark):
    series = benchmark.pedantic(full_series, rounds=1, iterations=1)

    print("\n§7.1 case study — 50 MB balancing transfer by bandwidth "
          "setting:")
    print(render_table(
        ["Scenario", "Outcome", "Elapsed (sim s)", "Receiver deficit (B)"],
        [[label, outcome, "%.1f" % elapsed, format(int(deficit), ",")]
         for label, (outcome, elapsed, deficit) in series.items()]))

    outcomes = {label: series[label][0] for label in series}
    assert outcomes["HETERO fast sender -> slow receiver"] == "TIMEOUT"
    assert all(outcome == "completed"
               for label, outcome in outcomes.items()
               if label != "HETERO fast sender -> slow receiver")
    # the starved receiver accumulated a deep bandwidth deficit
    assert series["HETERO fast sender -> slow receiver"][2] > 10 * MB
