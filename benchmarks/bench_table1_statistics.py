"""Table 1: statistics for each application (#unit tests, #parameters).

Regenerates the table from our corpus and registries and prints it next
to the paper's numbers.  Our corpus is a curated scale-down (see
DESIGN.md), so the assertions check structure, not absolute size: every
application contributes whole-system tests, Hadoop applications all see
the Hadoop Common parameters, and Hadoop Tools has no parameters of its
own.
"""

from __future__ import annotations

from repro.apps import catalog
from repro.apps.commonlib import COMMON_REGISTRY
from repro.core.registry import load_all_suites
from repro.core.report import render_table


def build_table1():
    corpus = load_all_suites()
    rows = []
    for app in catalog.APP_NAMES:
        spec = catalog.spec_for(app)
        paper = catalog.PAPER_STATISTICS[app]
        rows.append({
            "app": app,
            "tests_ours": len(corpus.for_app(app)),
            "tests_paper": paper["unit_tests"],
            "params_ours": len(spec.registry),
            "params_paper": paper["app_params"],
        })
    return rows


def test_table1_statistics(benchmark):
    rows = benchmark(build_table1)

    print("\nTable 1 — statistics for each application (ours vs paper):")
    print(render_table(
        ["App", "#tests (ours)", "#tests (paper)", "#params (ours)",
         "#params (paper)"],
        [[r["app"], r["tests_ours"], format(r["tests_paper"], ","),
          r["params_ours"], r["params_paper"]] for r in rows]))
    print("Hadoop Common library: %d params (ours) vs %d (paper)"
          % (len(COMMON_REGISTRY),
             catalog.PAPER_STATISTICS["hadoop-common"]["app_params"]))

    by_app = {r["app"]: r for r in rows}
    # every application has a corpus
    assert all(r["tests_ours"] >= 4 for r in rows)
    # Hadoop apps see Common's parameters on top of their own
    for app in ("hdfs", "mapreduce", "yarn", "hbase"):
        assert len(catalog.spec_for(app).registry) > len(COMMON_REGISTRY)
    # HDFS has the largest parameter registry among Hadoop apps, as in
    # the paper (579 of the per-app counts)
    assert by_app["hdfs"]["params_ours"] >= by_app["mapreduce"]["params_ours"]
    assert by_app["hdfs"]["params_ours"] >= by_app["yarn"]["params_ours"]
    # Hadoop Tools has no parameters of its own (it reuses HDFS+Common)
    assert catalog.PAPER_STATISTICS["hadooptools"]["app_params"] == 0
