"""Result-store benchmark: what a warm start is worth.

Runs the same real-application campaign twice against one ``--store``
directory.  The cold pass pays every execution and populates the store;
the warm pass must serve the repeated work from persisted entries,
execute strictly less, and report byte-identical findings — the central
acceptance criterion of the store.

Absolute wall-clock is a host property; the executions ratio travels,
but it is a function of the corpus (not of store implementation
quality), so the rows are recorded for trajectory without a committed
baseline.  The strict assertions are behavioural: fewer executions,
identical findings, zero store misses on the warm pass.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time

from _shared import write_bench_artifact
from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, findings_projection

ARTIFACT = "BENCH_store.json"
APP = "mapreduce"


def _run(store_dir):
    spec = catalog.spec_for(APP)
    config = CampaignConfig(store_path=store_dir)
    campaign = Campaign(APP, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=config)
    started = time.perf_counter()
    report = campaign.run()
    wall = time.perf_counter() - started
    return report, wall


def measure() -> dict:
    root = tempfile.mkdtemp(prefix="bench-store-")
    try:
        cold, cold_wall = _run(root)
        warm, warm_wall = _run(root)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    cold_findings = json.dumps(
        findings_projection(app_report_to_dict(cold)), sort_keys=True)
    warm_findings = json.dumps(
        findings_projection(app_report_to_dict(warm)), sort_keys=True)

    return {
        "warm_start": {
            "app": APP,
            "cold_executions": cold.executions,
            "warm_executions": warm.executions,
            "executions_saved": cold.executions - warm.executions,
            "execution_reduction": (cold.executions /
                                    max(warm.executions, 1)),
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "store_appends": cold.store.appends,
            "store_entries_loaded": warm.store.entries_loaded,
            "store_hits": warm.store.hits,
            "store_misses": warm.store.misses,
            "findings_identical": cold_findings == warm_findings,
        },
    }


def test_store_warm_start(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    row = rows["warm_start"]

    print("\nResult-store warm start (%s):" % row["app"])
    print("  cold: %d executions in %.1fs" % (row["cold_executions"],
                                              row["cold_wall_s"]))
    print("  warm: %d executions in %.1fs (%d served from the store, "
          "%.1fx fewer executions)"
          % (row["warm_executions"], row["warm_wall_s"],
             row["store_hits"], row["execution_reduction"]))

    write_bench_artifact(ARTIFACT, rows)

    # The store's contract, not a perf ratio: strictly fewer executions
    # warm, no warm misses, byte-identical findings.
    assert row["warm_executions"] < row["cold_executions"]
    assert row["store_hits"] > 0
    assert row["store_misses"] == 0
    assert row["findings_identical"]
