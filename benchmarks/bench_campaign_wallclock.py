"""End-to-end campaign wall-clock: optimised path versus the seed path.

The tentpole claim: the kernel fast path (``repro.perf.FAST_PATH``) plus
cost-model LPT dispatch (``CampaignConfig.schedule="lpt"``) cut the
HDFS campaign's wall clock — while every finding, verdict, execution
count, and modelled machine-hour stays **byte-identical** to the
unoptimised path.  Both optimisations are pure mechanics: the fast path
removes interpreter and heap overhead from identical event sequences,
and LPT only reorders *dispatch* (outcomes are folded back in catalog
order).

Two configuration pairs are measured, each seed-vs-optimised where
**seed** = ``FAST_PATH`` off + catalog dispatch (the pre-optimisation
code path, kept alive exactly so this bench can regress against it) and
**optimised** = ``FAST_PATH`` on + LPT dispatch (the defaults):

* **serial** — one worker, no pool.  Isolates the kernel fast path;
  the ratio is pure interpreter work and travels across hosts.
* **process x4** — the deployment configuration (process backend, 4
  workers): worker processes inherit the kernel fast path and the
  parent adds LPT packing.

Both pairs must clear the tentpole's >= 25% wall-clock-reduction bar.

Rows land in ``BENCH_campaign_wallclock.json``; the committed baseline
under ``benchmarks/baselines/`` fails the bench on a >10% regression of
the speedup ratios.
"""

from __future__ import annotations

import json
import os
import time

from _shared import check_against_baseline, write_bench_artifact
from repro import perf
from repro.apps import catalog
from repro.common.wire import clear_wire_memo
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, render_table

ARTIFACT = "BENCH_campaign_wallclock.json"
APP = "hdfs"


def _run(fast_path: bool, schedule: str, **config_kwargs):
    spec = catalog.spec_for(APP)
    campaign = Campaign(APP, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(schedule=schedule,
                                              **config_kwargs))
    previous = perf.set_fast_path(fast_path)
    clear_wire_memo()
    try:
        started = time.perf_counter()
        report = campaign.run()
        wall = time.perf_counter() - started
    finally:
        perf.set_fast_path(previous)
    return report, wall


def _findings_view(report) -> str:
    """Everything the optimisations must preserve: the full report minus
    host-measured supervision bookkeeping (worker respawn counts depend
    on pool mechanics, not findings)."""
    record = app_report_to_dict(report)
    record.pop("supervision", None)
    return json.dumps(record, sort_keys=True)


def _pair(rounds: int = 2, **config_kwargs) -> dict:
    """Seed-vs-optimised walls, best (min) of ``rounds`` runs each.

    The minimum is the standard noise estimator for a ratio bench: a
    background-load spike can only ever make a run *slower*, so the min
    of a few runs converges on the machine's true cost.
    """
    seed_report, seed_wall = _run(False, "catalog", **config_kwargs)
    fast_report, fast_wall = _run(True, "lpt", **config_kwargs)
    for _ in range(rounds - 1):
        _, wall = _run(False, "catalog", **config_kwargs)
        seed_wall = min(seed_wall, wall)
        _, wall = _run(True, "lpt", **config_kwargs)
        fast_wall = min(fast_wall, wall)
    return {
        "wall_seed_s": seed_wall,
        "wall_optimised_s": fast_wall,
        "speedup": seed_wall / fast_wall,
        "reduction": 1.0 - fast_wall / seed_wall,
        "findings_identical":
            _findings_view(seed_report) == _findings_view(fast_report),
    }


def measure() -> dict:
    return {
        "app": APP,
        "cpu_count": os.cpu_count() or 1,
        "serial": _pair(),
        "process4": _pair(workers=4, parallel_backend="process",
                          blacklist_threshold=999),
    }


def test_campaign_wallclock(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    serial, process4 = rows["serial"], rows["process4"]
    print("\nHDFS campaign, seed path vs optimised path (%d CPUs):"
          % rows["cpu_count"])
    print(render_table(
        ["configuration", "seed", "optimised", "reduction"],
        [["serial", "%.2fs" % serial["wall_seed_s"],
          "%.2fs" % serial["wall_optimised_s"],
          "%.1f%%" % (100 * serial["reduction"])],
         ["process x4", "%.2fs" % process4["wall_seed_s"],
          "%.2fs" % process4["wall_optimised_s"],
          "%.1f%%" % (100 * process4["reduction"])]]))

    write_bench_artifact(ARTIFACT, rows)

    # Soundness first: optimisation may only remove overhead, never
    # change what the campaign finds or how much work it models.
    assert serial["findings_identical"]
    assert process4["findings_identical"]

    # The tentpole's acceptance bar, on both pairs: the kernel carries
    # the serial win, and the worker processes inherit it (plus LPT
    # packing) on the deployment configuration.
    assert serial["reduction"] >= 0.25
    assert process4["reduction"] >= 0.25

    regressions = check_against_baseline(ARTIFACT, rows)
    assert not regressions, "\n".join(regressions)
