"""Shared helpers for the benchmark harness.

The full six-application campaign takes ~20-30s; several benches need its
results, so it is computed once per process and cached here.

This module also owns the *perf trajectory*: benches that measure a
speedup call :func:`write_bench_artifact` to persist a ``BENCH_*.json``
(CI uploads them per commit) and :func:`check_against_baseline` to fail
on a >10% regression versus the baselines committed under
``benchmarks/baselines/``.  Baselines store only *ratios* (speedups,
reduction factors) — absolute wall-clock numbers are host property, but
the fast-path / legacy-path ratio travels across machines.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache

from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig, run_full_campaign

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baselines")

#: A run regresses when a ratio drops more than this fraction below the
#: committed baseline.
REGRESSION_TOLERANCE = 0.10


def bench_artifact_path(name: str) -> str:
    """Where a ``BENCH_*.json`` artifact lands.

    ``BENCH_ARTIFACT_DIR`` (CI sets it to the upload directory) wins;
    the default is the current working directory, matching the other
    bench artifacts.
    """
    return os.path.join(os.environ.get("BENCH_ARTIFACT_DIR", "."), name)


def write_bench_artifact(name: str, rows: dict) -> str:
    """Persist one bench's measured rows as ``BENCH_<name>``; returns path."""
    path = bench_artifact_path(name)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as sink:
        json.dump(rows, sink, indent=2, sort_keys=True)
    print("wrote %s" % path)
    return path


def load_baseline(name: str) -> dict:
    """The committed baseline for artifact ``name`` ({} when absent)."""
    path = os.path.join(BASELINE_DIR, name)
    if not os.path.exists(path):
        return {}
    with open(path) as source:
        return json.load(source)


def check_against_baseline(name: str, rows: dict,
                           tolerance: float = REGRESSION_TOLERANCE) -> list:
    """Compare measured ratios against the committed baseline.

    Every key in the baseline file must exist in ``rows`` (dotted keys
    descend into nested dicts) and stay within ``tolerance`` of the
    committed ratio.  Returns the list of human-readable regression
    descriptions; asserting it empty is the caller's job so the bench
    can print its table first.
    """
    regressions = []
    for key, floor in load_baseline(name).items():
        value = rows
        for part in key.split("."):
            value = value[part]
        if value < floor * (1.0 - tolerance):
            regressions.append(
                "%s: measured %.3f is more than %d%% below the committed "
                "baseline %.3f" % (key, value, round(tolerance * 100), floor))
    return regressions


@lru_cache(maxsize=None)
def full_report():
    """One cached full campaign (all six applications)."""
    return run_full_campaign(CampaignConfig())


@lru_cache(maxsize=None)
def app_report(app: str, max_pool_size=None, blacklist_threshold: int = 3):
    """One cached single-application campaign with given knobs."""
    spec = catalog.spec_for(app)
    campaign = Campaign(app, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(
                            max_pool_size=max_pool_size,
                            blacklist_threshold=blacklist_threshold))
    return campaign.run()
