"""Shared helpers for the benchmark harness.

The full six-application campaign takes ~20-30s; several benches need its
results, so it is computed once per process and cached here.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps import catalog
from repro.core.orchestrator import Campaign, CampaignConfig, run_full_campaign


@lru_cache(maxsize=None)
def full_report():
    """One cached full campaign (all six applications)."""
    return run_full_campaign(CampaignConfig())


@lru_cache(maxsize=None)
def app_report(app: str, max_pool_size=None, blacklist_threshold: int = 3):
    """One cached single-application campaign with given knobs."""
    spec = catalog.spec_for(app)
    campaign = Campaign(app, spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(
                            max_pool_size=max_pool_size,
                            blacklist_threshold=blacklist_threshold))
    return campaign.run()
