"""§7.1: the 57 = 41 + 16 split and the causes of false positives,
including the shared-IPC fix experiment.

"After we modified one line of code in Hadoop to disable the sharing,
the false alarms disappeared" — the bench re-runs the MapReduce campaign
with IPC sharing disabled and checks that exactly the four
``ipc.client.*`` false positives vanish.
"""

from __future__ import annotations

from collections import Counter

from _shared import full_report
from repro.apps import catalog
from repro.common.ipc import IPC_SHARED_PARAMS
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import render_table
from repro.core.triage import FP_SHARED_IPC


def mapreduce_without_ipc_sharing():
    spec = catalog.spec_for("mapreduce")
    campaign = Campaign("mapreduce", spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig(disable_ipc_sharing=True))
    return campaign.run()


def test_triage_split_and_ipc_fix(benchmark):
    fixed = benchmark.pedantic(mapreduce_without_ipc_sharing, rounds=1,
                               iterations=1)
    report = full_report()

    causes = Counter(v.fp_reason for v in report.unique_false_positives())
    print("\n§7.1 — reported parameters: %d true problems, %d false "
          "positives (paper: 41 / 16)"
          % (len(report.unique_true_problems()),
             len(report.unique_false_positives())))
    print(render_table(["False-positive cause", "count"],
                       sorted(causes.items())))

    assert len(report.unique_true_problems()) == 41
    assert len(report.unique_false_positives()) == 16
    assert causes[FP_SHARED_IPC] == 4

    # the one-line fix: with sharing disabled, no IPC parameter reported
    reported_fixed = {v.param for v in fixed.verdicts}
    print("\nwith IPC sharing disabled (the paper's one-line fix), the "
          "MapReduce campaign reports: %s"
          % sorted(reported_fixed & set(IPC_SHARED_PARAMS)))
    assert not (reported_fixed & set(IPC_SHARED_PARAMS))
    # and the true findings are unchanged
    baseline_true = {v.param for v in full_report().app("mapreduce").true_problems}
    assert {v.param for v in fixed.true_problems} == baseline_true
