"""Microbenchmarks of the substrate primitives every campaign leans on.

Unlike the table benches (which assert the paper's shapes), these are
plain performance measurements: wire encode/decode, per-chunk checksums,
simulator event throughput, RPC round trips, and one whole unit-test
execution.  They bound the cost model behind "a full six-application
evaluation in ~25s".
"""

from __future__ import annotations

from repro.common.simulation import Simulator
from repro.common.wire import (compute_checksums, decode_payload,
                               encode_payload, verify_checksums)

PAYLOAD = {"op": "transfer", "block": 42, "data": "ab" * 512}


def test_wire_encode_decode_plain(benchmark):
    def round_trip():
        return decode_payload(encode_payload(PAYLOAD))

    assert benchmark(round_trip) == PAYLOAD


def test_wire_encode_decode_full_stack(benchmark):
    options = {"codec": "gzip", "encryption_key": b"key", "ssl": True}

    def round_trip():
        return decode_payload(encode_payload(PAYLOAD, **options), **options)

    assert benchmark(round_trip) == PAYLOAD


def test_checksum_block(benchmark):
    data = bytes(range(256)) * 64  # 16 KiB

    def checksum_and_verify():
        sums = compute_checksums(data, 512, "CRC32")
        verify_checksums(data, sums, 512, "CRC32")
        return len(sums)

    assert benchmark(checksum_and_verify) == 32


def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        state = {"count": 0}

        def tick():
            state["count"] += 1
            if state["count"] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return state["count"]

    assert benchmark(run_10k_events) == 10_000


def test_rpc_round_trip(benchmark):
    from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
    conf = HdfsConfiguration()
    cluster = MiniDFSCluster(conf, num_datanodes=1)
    cluster.start()
    client = DFSClient(conf, cluster)

    def stats_call():
        return client.get_stats()["live"]

    assert benchmark(stats_call) == 1
    cluster.shutdown()


def test_single_unit_test_execution(benchmark):
    """The campaign's unit of work: one corpus test under a ConfAgent."""
    import random

    from repro.core.confagent import ConfAgent
    from repro.core.registry import TestContext, load_all_suites

    corpus = load_all_suites()
    test = corpus.get("hdfs", "TestFileCreation.testWriteReadRoundTrip")

    def one_execution():
        with ConfAgent():
            test.fn(TestContext(rng=random.Random(1)))
        return True

    assert benchmark(one_execution)
