#!/usr/bin/env python
"""Docs/CLI cross-reference checker (the CI ``docs-check`` job).

Flags drift: a doc that still names a flag the CLI renamed, or a CLI
flag the README never documents.  Concretely, it enforces:

1. every ``--flag`` mentioned in README.md or docs/*.md exists in the
   real parser (``repro.cli.build_parser()``), modulo an allowlist of
   external tools' flags (pip, pytest) and ``--prefix-*`` family
   shorthands, which must match at least one real flag;
2. every flag of every ``repro`` subcommand appears somewhere in
   README.md (the flag table / subcommand notes);
3. every ``repro`` subcommand is mentioned in README.md;
4. every ``docs/NAME.md`` cross-reference points at a file that exists;
5. ``docs/README.md`` (the index) links every ``docs/*.md`` file.

Run it from the repository root (or pass the root as argv[1])::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 when clean, 1 with one line per problem otherwise.
tests/test_docs.py runs the same check in tier-1, so drift fails the
test suite before it ever reaches CI.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Set

#: flags that belong to other tools mentioned in the docs (pip, pytest).
EXTERNAL_FLAGS = {
    "--no-build-isolation",
    "--upgrade",
    "--benchmark-only",
}

#: ``--flag`` or ``--family-*`` tokens.  The trailing ``[a-z0-9]`` stops
#: matches at punctuation (``--store's`` -> ``--store``).
_FLAG_RE = re.compile(r"--[a-z][a-z0-9]*(?:-[a-z0-9]+)*(?:-?\*)?")

#: ``docs/NAME.md`` cross-references.
_DOCREF_RE = re.compile(r"docs/[A-Za-z0-9_.-]+\.md")


def collect_cli_surface() -> "tuple[Set[str], Set[str]]":
    """(all --flags, all subcommand names) from the real parser."""
    from repro.cli import build_parser
    parser = build_parser()
    flags: Set[str] = set()
    commands: Set[str] = set()

    def walk(p: argparse.ArgumentParser) -> None:
        for action in p._actions:  # noqa: SLF001 - argparse has no API
            flags.update(s for s in action.option_strings
                         if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                for name, child in action.choices.items():
                    commands.add(name)
                    walk(child)

    walk(parser)
    return flags, commands


def doc_files(root: str) -> List[str]:
    paths = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                paths.append(os.path.join(docs_dir, name))
    return [p for p in paths if os.path.isfile(p)]


def check(root: str) -> List[str]:
    """Run every cross-reference check; return a list of problems."""
    problems: List[str] = []
    known_flags, commands = collect_cli_surface()
    files = doc_files(root)
    readme_text = ""
    flag_mentions: Dict[str, Set[str]] = {}

    for path in files:
        rel = os.path.relpath(path, root)
        with open(path) as handle:
            text = handle.read()
        if rel == "README.md":
            readme_text = text
        for lineno, line in enumerate(text.splitlines(), 1):
            for token in _FLAG_RE.findall(line):
                flag_mentions.setdefault(token, set()).add(rel)
                if token in EXTERNAL_FLAGS:
                    continue
                if token.endswith("*"):
                    prefix = token.rstrip("*").rstrip("-")
                    if not any(f.startswith(prefix + "-")
                               for f in known_flags):
                        problems.append(
                            "%s:%d: flag family %s matches no CLI flag"
                            % (rel, lineno, token))
                elif token not in known_flags:
                    problems.append(
                        "%s:%d: %s is not a flag of any repro subcommand"
                        % (rel, lineno, token))
        for ref in _DOCREF_RE.findall(text):
            if not os.path.isfile(os.path.join(root, ref)):
                problems.append("%s: broken cross-reference %s"
                                % (rel, ref))

    # README must document every CLI flag and subcommand.
    for flag in sorted(known_flags):
        if flag == "--help":
            continue
        if flag not in readme_text:
            problems.append("README.md: CLI flag %s is undocumented"
                            % flag)
    for command in sorted(commands):
        if not re.search(r"\b%s\b" % re.escape(command), readme_text):
            problems.append("README.md: subcommand %r is undocumented"
                            % command)

    # the docs index must link every doc.
    index_path = os.path.join(root, "docs", "README.md")
    if not os.path.isfile(index_path):
        problems.append("docs/README.md: missing (the docs index)")
    else:
        with open(index_path) as handle:
            index_text = handle.read()
        for path in files:
            rel = os.path.relpath(path, root)
            name = os.path.basename(path)
            if not rel.startswith("docs") or name == "README.md":
                continue
            if name not in index_text:
                problems.append("docs/README.md: %s is not in the index"
                                % rel)
    return problems


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.getcwd()
    problems = check(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print("docs-check: %d problem(s)" % len(problems), file=sys.stderr)
        return 1
    print("docs-check: OK (%d files, every flag accounted for)"
          % len(doc_files(root)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
