"""Unit tests for pooled testing: bisection, blacklist, skip logic (§4)."""

from __future__ import annotations

import pytest

from repro.core.pooling import FrequentFailureTracker, PooledTester
from repro.core.runner import CONFIRMED_UNSAFE, TestRunner
from repro.core.testgen import CROSS, ROUND_ROBIN, TestGenerator
from synthetic_app import SYNTH_REGISTRY, two_service_test


def make_units(params, strategy=ROUND_ROBIN, group="Service"):
    generator = TestGenerator(SYNTH_REGISTRY)
    units = []
    for name in params:
        param = SYNTH_REGISTRY.get(name)
        pair = generator.value_pairs(param)[0]
        units.append(generator.assignment(param, group, strategy, pair))
    return units


ALL_PARAMS = ("synth.mode", "synth.level", "synth.safe-a", "synth.safe-b",
              "synth.safe-c")


class TestFrequentFailureTracker:
    def test_blacklists_after_threshold_distinct_tests(self):
        tracker = FrequentFailureTracker(threshold=2)
        tracker.record_unsafe("p", "test1")
        assert tracker.allowed("p")
        tracker.record_unsafe("p", "test1")  # same test, no double count
        assert tracker.allowed("p")
        tracker.record_unsafe("p", "test2")
        assert not tracker.allowed("p")
        assert tracker.failure_count("p") == 2


class TestPooledTester:
    def test_all_safe_pool_clears_in_one_run(self):
        tester = PooledTester(TestRunner())
        results = tester.run(two_service_test(), "Service", ROUND_ROBIN,
                             make_units(("synth.safe-a", "synth.safe-b",
                                         "synth.safe-c")))
        assert results == []
        assert tester.stats.pool_runs == 1
        assert tester.stats.pools_cleared == 1
        assert tester.stats.params_cleared_in_pools == 3
        assert tester.stats.bisection_runs == 0

    def test_bisection_isolates_unsafe_params(self):
        tester = PooledTester(TestRunner())
        results = tester.run(two_service_test(), "Service", ROUND_ROBIN,
                             make_units(ALL_PARAMS))
        confirmed = {r.instance.params[0] for r in results
                     if r.verdict == CONFIRMED_UNSAFE}
        assert confirmed == {"synth.mode", "synth.level"}
        assert tester.stats.bisection_runs > 0

    def test_safe_singletons_not_reported(self):
        tester = PooledTester(TestRunner())
        results = tester.run(two_service_test(), "Service", ROUND_ROBIN,
                             make_units(ALL_PARAMS))
        reported = {r.instance.params[0] for r in results}
        assert "synth.safe-a" not in {p for p in reported
                                      if p.startswith("synth.safe")} or \
            all(r.verdict != CONFIRMED_UNSAFE for r in results
                if r.instance.params[0].startswith("synth.safe"))

    def test_blacklisted_params_skipped(self):
        tracker = FrequentFailureTracker(threshold=1)
        tracker.record_unsafe("synth.mode", "earlier-test")
        tester = PooledTester(TestRunner(), tracker=tracker)
        tester.run(two_service_test(), "Service", ROUND_ROBIN,
                   make_units(ALL_PARAMS))
        assert tester.stats.blacklist_skips == 1
        assert not tracker.allowed("synth.mode")

    def test_confirmed_param_skipped_on_same_test(self):
        tester = PooledTester(TestRunner())
        test = two_service_test()
        tester.run(test, "Service", ROUND_ROBIN, make_units(("synth.mode",)))
        tester.run(test, "Service", "round-robin-swapped",
                   make_units(("synth.mode",), strategy="round-robin-swapped"))
        assert tester.stats.already_confirmed_skips >= 1

    def test_confirmation_feeds_tracker(self):
        tracker = FrequentFailureTracker(threshold=1)
        tester = PooledTester(TestRunner(), tracker=tracker)
        tester.run(two_service_test(), "Service", ROUND_ROBIN,
                   make_units(("synth.mode",)))
        assert not tracker.allowed("synth.mode")

    def test_max_pool_size_splits_pools(self):
        tester = PooledTester(TestRunner(), max_pool_size=2)
        tester.run(two_service_test(), "Service", ROUND_ROBIN,
                   make_units(("synth.safe-a", "synth.safe-b",
                               "synth.safe-c")))
        # a pool of 2 plus a size-1 remainder that goes straight to
        # singleton evaluation
        assert tester.stats.pool_runs == 1
        assert tester.stats.singleton_instances == 1

    def test_parameter_interaction_recorded_not_reported(self):
        """The §4 independence assumption: two params that only fail
        *jointly* slip through bisection — each half passes alone — and
        are recorded as an interference event rather than reported."""
        from repro.common.configuration import Configuration, ref_to_clone
        from repro.common.errors import TestFailure
        from repro.common.params import BOOL, ParamRegistry
        from repro.core.confagent import current_agent
        from repro.core.registry import UnitTest

        registry = ParamRegistry("interf")
        registry.define("i.a", BOOL, False)
        registry.define("i.b", BOOL, False)

        class InterfConfiguration(Configuration):
            pass

        InterfConfiguration.registry = registry

        class Peer:
            node_type = "Service"

            def __init__(self, conf):
                agent = current_agent()
                agent.start_init(self, self.node_type)
                try:
                    self.conf = ref_to_clone(conf)
                    self.conf.get_bool("i.a")
                    self.conf.get_bool("i.b")
                finally:
                    agent.stop_init()

            def exchange(self, peer):
                a_differs = (self.conf.get_bool("i.a")
                             != peer.conf.get_bool("i.a"))
                b_differs = (self.conf.get_bool("i.b")
                             != peer.conf.get_bool("i.b"))
                if a_differs and b_differs:  # only the combination fails
                    raise TestFailure("joint i.a/i.b mismatch")

        def body(ctx):
            conf = InterfConfiguration()
            first, second = Peer(conf), Peer(conf)
            first.exchange(second)

        test = UnitTest(app="interf", name="TestInterf.testJoint", fn=body)
        generator = TestGenerator(registry)
        tester = PooledTester(TestRunner())
        units = [generator.assignment(registry.get(name), "Service",
                                      ROUND_ROBIN,
                                      generator.value_pairs(
                                          registry.get(name))[0])
                 for name in ("i.a", "i.b")]
        results = tester.run(test, "Service", ROUND_ROBIN, units)
        assert all(r.verdict != CONFIRMED_UNSAFE for r in results)
        assert tester.stats.interference_events == 1

    def test_cross_strategy_pool_passes_for_symmetric_peers(self):
        tester = PooledTester(TestRunner())
        results = tester.run(two_service_test(), "Service", CROSS,
                             make_units(ALL_PARAMS, strategy=CROSS))
        assert all(r.verdict != CONFIRMED_UNSAFE for r in results)


class ScriptedRunner:
    """Stub runner whose pool executions follow a script; singleton
    evaluation is recorded so tests can assert bisection (not) happening."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.pool_executions = 0
        self.evaluated = []

    def canonical_form(self, assignment):
        from repro.core.execcache import canonical_assignment
        return canonical_assignment(assignment)

    def execute(self, test, assignment, seed, canonical=None):
        self.pool_executions += 1
        return self.outcomes.pop(0)

    def evaluate(self, instance):
        from repro.core.runner import PASS, InstanceResult
        self.evaluated.append(instance)
        return InstanceResult(instance=instance, verdict=PASS)


class TestPoolVoidRedraw:
    """Infra/timeout pool outcomes are voided and re-drawn, never handed
    to bisection as if they were oracle failures (the old behaviour
    wasted up to 2x|pool| executions per lost container)."""

    def units(self):
        return make_units(("synth.safe-a", "synth.safe-b", "synth.safe-c"))

    def outcome(self, *, ok=False, infra=False, timed_out=False):
        from repro.core.runner import RunOutcome
        return RunOutcome(ok=ok, infra=infra, timed_out=timed_out)

    def test_transient_infra_redraws_and_clears(self):
        runner = ScriptedRunner([self.outcome(infra=True),
                                 self.outcome(ok=True)])
        tester = PooledTester(runner)
        results = tester.run(two_service_test(), "Service", ROUND_ROBIN,
                             self.units())
        assert results == []
        assert runner.evaluated == []  # no bisection
        assert tester.stats.pool_voids == 1
        assert tester.stats.pool_infra_giveups == 0
        assert tester.stats.pools_cleared == 1
        assert tester.stats.params_cleared_in_pools == 3

    def test_persistent_infra_gives_up_without_bisection(self):
        runner = ScriptedRunner([self.outcome(infra=True)] * 3)
        tester = PooledTester(runner, max_pool_redraws=2)
        results = tester.run(two_service_test(), "Service", ROUND_ROBIN,
                             self.units())
        assert results == []
        assert runner.evaluated == []
        assert runner.pool_executions == 3  # first draw + two re-draws
        assert tester.stats.pool_voids == 2
        assert tester.stats.pool_infra_giveups == 1
        assert tester.stats.pools_cleared == 0

    def test_persistent_timeout_still_bisects(self):
        """A reproducible watchdog kill is real configuration evidence
        (a runaway retry loop, say) — after the re-draws it must fall
        through to bisection, unlike an infra giveup."""
        runner = ScriptedRunner([self.outcome(timed_out=True)] * 3
                                + [self.outcome(ok=True)])  # right sub-pool
        tester = PooledTester(runner, max_pool_redraws=2)
        tester.run(two_service_test(), "Service", ROUND_ROBIN, self.units())
        assert tester.stats.pool_voids == 2
        assert tester.stats.pool_infra_giveups == 0
        assert len(runner.evaluated) > 0  # bisection reached singletons

    def test_oracle_failure_never_voided(self):
        runner = ScriptedRunner([self.outcome(ok=False)] * 2)  # pool + right half
        tester = PooledTester(runner)
        tester.run(two_service_test(), "Service", ROUND_ROBIN, self.units())
        assert tester.stats.pool_voids == 0
        assert len(runner.evaluated) == 3  # every singleton bisected out

    def test_redraw_disabled_with_zero_budget(self):
        runner = ScriptedRunner([self.outcome(infra=True)])
        tester = PooledTester(runner, max_pool_redraws=0)
        results = tester.run(two_service_test(), "Service", ROUND_ROBIN,
                             self.units())
        assert results == []
        assert tester.stats.pool_voids == 0
        assert tester.stats.pool_infra_giveups == 1
