"""Tests for the §7.3 remediations: the paper's proposed fixes make the
corresponding parameters heterogeneous-safe."""

from __future__ import annotations

import pytest

from repro.apps.hdfs import Balancer, HdfsConfiguration, MiniDFSCluster
from repro.common.errors import BalancerTimeout
from repro.core.confagent import ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def dn_assignment(param, dn_values, other):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group="DataNode", group_values=tuple(dn_values),
        other_value=other),)))


def balancer_assignment(param, balancer_value, other):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group="Balancer", group_values=(balancer_value,),
        other_value=other),)))


class TestConcurrentMovesRemediation:
    def run(self, fetch_limits):
        with dn_assignment("dfs.datanode.balance.max.concurrent.moves",
                           (1, 1), 50):
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            try:
                moves = [{"block_id": cluster.place_block("/b/%d" % i,
                                                          ["dn0"]),
                          "source": "dn0", "target": "dn1"}
                         for i in range(100)]
                balancer = Balancer(conf, cluster)
                result = balancer.run_balancing(
                    moves, timeout_s=100.0,
                    fetch_datanode_limits=fetch_limits)
                return result, cluster.datanodes[0].declined_moves
            finally:
                cluster.shutdown()

    def test_without_fix_times_out(self):
        with pytest.raises(BalancerTimeout):
            self.run(fetch_limits=False)

    def test_with_fix_completes_without_declines(self):
        result, declines = self.run(fetch_limits=True)
        assert result["moves"] == 100
        assert declines == 0


class TestBandwidthRemediation:
    def run(self, reserve):
        with dn_assignment("dfs.datanode.balance.bandwidthPerSec",
                           (1000 * 1024 * 1024, 100 * 1024), 100 * 1024):
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            try:
                balancer = Balancer(conf, cluster)
                return balancer.run_throttled_transfer(
                    "dn0", "dn1", block_bytes=50 * 1024 * 1024,
                    progress_timeout_s=3.0,
                    critical_reserve_fraction=reserve)
            finally:
                cluster.shutdown()

    def test_without_reserve_times_out(self):
        with pytest.raises(BalancerTimeout):
            self.run(reserve=0.0)

    def test_with_reserved_critical_bandwidth_progresses(self):
        result = self.run(reserve=0.05)
        assert result["chunks"] == 800


class TestEmbeddedWireMetadataRemediation:
    """§7.3: "Embedding parameter values in the communication or in the
    file ... may be a good practice" — with writer checksum parameters
    travelling alongside the data, heterogeneous checksum settings stop
    mattering."""

    def write_read(self, param, dn_value, other_value, embed):
        with dn_assignment(param, (dn_value, dn_value), other_value):
            from repro.apps.hdfs import DFSClient
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2,
                                     embed_wire_metadata=embed)
            cluster.start()
            try:
                client = DFSClient(conf, cluster)
                payload = b"embedded-metadata" * 32
                client.write_file("/emb/file", payload, replication=2)
                assert client.read_file("/emb/file") == payload
            finally:
                cluster.shutdown()

    def test_checksum_type_mismatch_fails_stock(self):
        from repro.common.errors import ChecksumError
        with pytest.raises(ChecksumError):
            self.write_read("dfs.checksum.type", "CRC32C", "CRC32",
                            embed=False)

    def test_checksum_type_mismatch_safe_with_embedding(self):
        self.write_read("dfs.checksum.type", "CRC32C", "CRC32", embed=True)

    def test_bytes_per_checksum_mismatch_fails_stock(self):
        from repro.common.errors import ChecksumError
        with pytest.raises(ChecksumError):
            self.write_read("dfs.bytes-per-checksum", 16, 512, embed=False)

    def test_bytes_per_checksum_mismatch_safe_with_embedding(self):
        self.write_read("dfs.bytes-per-checksum", 16, 512, embed=True)

    def test_homogeneous_still_fine_with_embedding(self):
        self.write_read("dfs.checksum.type", "CRC32", "CRC32", embed=True)


class TestUpgradeDomainRemediation:
    def run(self, use_namenode_factor):
        with balancer_assignment("dfs.namenode.upgrade.domain.factor", 1, 3):
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(
                conf, num_datanodes=5,
                upgrade_domains=["ud0", "ud1", "ud2", "ud0", "ud3"])
            cluster.start()
            try:
                block_id = cluster.place_block("/ud/b", ["dn0", "dn1", "dn2"])
                balancer = Balancer(conf, cluster)
                domains = balancer.rpc_client.call(cluster.namenode.rpc,
                                                   "get_upgrade_domains")
                target = balancer.pick_target(
                    ["dn0", "dn1", "dn2"], source_dn="dn2",
                    candidates=["dn3", "dn4"], domains=domains,
                    use_namenode_factor=use_namenode_factor)
                return balancer.run_balancing(
                    [{"block_id": block_id, "source": "dn2",
                      "target": target}], timeout_s=30.0)
            finally:
                cluster.shutdown()

    def test_without_fix_never_finishes(self):
        with pytest.raises(BalancerTimeout):
            self.run(use_namenode_factor=False)

    def test_fetching_factor_from_namenode_completes(self):
        result = self.run(use_namenode_factor=True)
        assert result["moves"] == 1
