"""Integration tests: Campaign end-to-end on the synthetic application."""

from __future__ import annotations

import pytest

from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import render_stage_counts, render_table
from repro.core.triage import TRUE_PROBLEM
from synthetic_app import (SYNTH_REGISTRY, broken_baseline_test,
                           client_vs_service_test, make_corpus, no_node_test,
                           safe_only_test, two_service_test,
                           uncertain_conf_test)


def synthetic_campaign(tests=None, config=None):
    tests = tests if tests is not None else [
        two_service_test(),
        client_vs_service_test(),
        safe_only_test(),
        no_node_test(),
        broken_baseline_test(),
        uncertain_conf_test(),
        two_service_test(name="TestSynth.testFlakyExchange", flaky_rate=0.3,
                         flaky=True),
    ]
    return Campaign("synth", SYNTH_REGISTRY, tests=tests,
                    config=config or CampaignConfig())


class TestSyntheticCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return synthetic_campaign().run()

    def test_finds_exactly_the_planted_unsafe_params(self, report):
        found = {v.param for v in report.verdicts if v.is_true_problem}
        assert found == {"synth.mode", "synth.level"}

    def test_no_safe_param_reported(self, report):
        reported = {v.param for v in report.verdicts}
        assert not reported & {"synth.safe-a", "synth.safe-b", "synth.safe-c",
                               "synth.never-read"}

    def test_stage_counts_monotonically_decrease(self, report):
        counts = [count for _, count in report.stage_counts.rows()]
        assert counts[0] >= counts[1] >= counts[2]
        assert counts[3] <= counts[2]
        assert counts[0] > 0

    def test_prerun_summary(self, report):
        assert report.prerun_summary.total_tests == 7
        assert report.prerun_summary.tests_without_nodes == 1
        assert report.prerun_summary.tests_broken_at_baseline == 1
        assert report.prerun_summary.tests_with_uncertain_confs == 1

    def test_machine_time_positive(self, report):
        assert report.machine_time_s > 0
        assert report.executions > 0

    def test_never_read_param_generates_no_instances(self, report):
        for results in report.results_by_param.values():
            for result in results:
                assert "synth.never-read" not in result.instance.params


class TestCampaignConfigurations:
    def test_workers_do_not_change_findings(self):
        serial = synthetic_campaign().run()
        parallel = synthetic_campaign(
            config=CampaignConfig(workers=4)).run()
        serial_found = {v.param for v in serial.verdicts if v.is_true_problem}
        parallel_found = {v.param for v in parallel.verdicts
                          if v.is_true_problem}
        assert serial_found == parallel_found

    def test_pool_size_one_disables_pooling(self):
        pooled = synthetic_campaign().run()
        unpooled = synthetic_campaign(
            config=CampaignConfig(max_pool_size=1)).run()
        assert ({v.param for v in pooled.verdicts if v.is_true_problem}
                == {v.param for v in unpooled.verdicts if v.is_true_problem})
        # pooling must save executed instances
        assert (pooled.stage_counts.after_pooling
                < unpooled.stage_counts.after_pooling)

    def test_blacklist_threshold_one_skips_aggressively(self):
        report = synthetic_campaign(
            config=CampaignConfig(blacklist_threshold=1)).run()
        assert set(report.blacklisted) >= {"synth.mode", "synth.level"}
        found = {v.param for v in report.verdicts if v.is_true_problem}
        assert found == {"synth.mode", "synth.level"}


class TestDeterminism:
    def test_identical_campaigns_produce_identical_reports(self):
        first = synthetic_campaign().run()
        second = synthetic_campaign().run()
        assert ([(v.param, v.verdict) for v in first.verdicts]
                == [(v.param, v.verdict) for v in second.verdicts])
        assert first.stage_counts.rows() == second.stage_counts.rows()
        assert first.executions == second.executions


class TestScale:
    def test_pooling_scales_to_hundreds_of_parameters(self):
        """300 safe parameters + the 2 planted unsafe ones: pooled testing
        must stay near-linear in runs, nowhere near one run per param per
        strategy."""
        from repro.common.params import INT
        registry = ParamRegistry("synth-scale")
        for param in SYNTH_REGISTRY:
            registry.register(param)
        for index in range(300):
            registry.define("synth.filler-%03d" % index, INT, index,
                            candidates=(index, index + 10000))

        from repro.common.configuration import Configuration, ref_to_clone
        from repro.common.errors import TestFailure
        from repro.core.confagent import current_agent

        class ScaleConfiguration(Configuration):
            pass

        ScaleConfiguration.registry = registry
        filler_names = [n for n in registry.names()
                        if n.startswith("synth.filler-")]

        class WideService:
            node_type = "Service"

            def __init__(self, conf):
                agent = current_agent()
                agent.start_init(self, self.node_type)
                try:
                    self.conf = ref_to_clone(conf)
                    # nodes read every filler param, so all are testable
                    for name in filler_names:
                        self.conf.get_int(name)
                finally:
                    agent.stop_init()

            def exchange(self, peer):
                for name in ("synth.mode", "synth.level"):
                    if self.conf.get(name) != peer.conf.get(name):
                        raise TestFailure("%s mismatch" % name)

        def body(ctx):
            conf = ScaleConfiguration()
            first, second = WideService(conf), WideService(conf)
            first.exchange(second)

        from repro.core.registry import UnitTest
        test = UnitTest(app="synth-scale", name="TestScale.testWide", fn=body)
        campaign = Campaign("synth-scale", registry, tests=[test],
                            config=CampaignConfig())
        report = campaign.run()
        found = {v.param for v in report.verdicts if v.is_true_problem}
        assert found == {"synth.mode", "synth.level"}
        # ~302 params x 4 strategies would be ~1200 singleton instances;
        # pooling must run far fewer
        assert report.stage_counts.after_pooling < 200


from repro.common.params import ParamRegistry  # noqa: E402


class TestDegradedProfileAccounting:
    def test_partial_profile_work_is_counted(self, monkeypatch):
        """A profile that crashes mid-way degrades, but the executions it
        already burned (and the results it already produced) must survive
        into the report — the old behaviour dropped them entirely."""
        from repro.core.pooling import PooledTester
        original_run = PooledTester.run

        def exploding_after(n):
            calls = {"count": 0}

            def run(self, test, group, strategy, units):
                calls["count"] += 1
                if calls["count"] > n:
                    raise RuntimeError("harness bug mid-profile")
                return original_run(self, test, group, strategy, units)
            return run

        monkeypatch.setattr(PooledTester, "run", exploding_after(0))
        immediate = synthetic_campaign(tests=[two_service_test()]).run()
        monkeypatch.setattr(PooledTester, "run", exploding_after(2))
        partial = synthetic_campaign(tests=[two_service_test()]).run()
        name = two_service_test().full_name
        assert name in immediate.degraded_tests
        assert name in partial.degraded_tests
        # the two completed pool batches before the crash stay accounted
        assert partial.pool_stats.pool_runs > immediate.pool_stats.pool_runs
        assert partial.executions > immediate.executions


class TestCheckpointRestoreScaling:
    def test_restore_shares_one_tests_by_name_mapping(self, tmp_path,
                                                      monkeypatch):
        """The test-name index is built once per run and shared by every
        restored profile; rebuilding it per profile made large resumes
        quadratic in corpus size."""
        path = str(tmp_path / "journal.jsonl")
        config = CampaignConfig(checkpoint_path=path)
        synthetic_campaign(config=config).run()

        seen = []
        original = Campaign._restore_profile

        def spy(self, checkpoint, name, tests_by_name):
            seen.append(tests_by_name)
            return original(self, checkpoint, name, tests_by_name)

        monkeypatch.setattr(Campaign, "_restore_profile", spy)
        synthetic_campaign(
            config=CampaignConfig(checkpoint_path=path)).run()
        assert len(seen) >= 2  # several profiles restored
        assert all(mapping is seen[0] for mapping in seen)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["col", "n"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_render_stage_counts(self):
        report = synthetic_campaign(tests=[two_service_test()]).run()
        text = render_stage_counts([report])
        assert "Original" in text
        assert "After pooled testing" in text
        assert "synth" in text
