"""Shared fixtures: corpora loaded once, full campaign cached per session."""

from __future__ import annotations

import pytest

from repro.core.orchestrator import CampaignConfig, run_full_campaign
from repro.core.registry import CORPUS, load_all_suites


@pytest.fixture(scope="session")
def corpus():
    """The full unit-test corpus with every app suite registered."""
    return load_all_suites()


@pytest.fixture(scope="session")
def full_report(corpus):
    """One full six-application campaign, shared by all evaluation tests.

    Takes ~20s; every test asserting campaign-level facts reuses it.
    """
    return run_full_campaign(CampaignConfig())
