"""Supervised worker pool: crash containment, reaping, quarantine.

Every poison body here is conditioned on *heterogeneous* configuration,
because pre-run baselines execute in the parent process — only the
supervised workers may be sacrificed.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.common.faults import FaultPlan
from repro.core.checkpoint import CampaignCheckpoint
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict
from repro.core.reportmd import app_report_markdown
from synthetic_app import (SYNTH_REGISTRY, SynthConfiguration, Service,
                           client_vs_service_test, hanging_test,
                           hard_crash_test, safe_only_test, spinning_test,
                           two_service_test)
from repro.core.registry import UnitTest

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="supervision needs fork")


def campaign(tests, **config_kwargs):
    config_kwargs.setdefault("workers", 2)
    config_kwargs.setdefault("parallel_backend", "process")
    config_kwargs.setdefault("blacklist_threshold", 999)  # decouple profiles
    return Campaign("synth", SYNTH_REGISTRY, tests=tests,
                    config=CampaignConfig(**config_kwargs))


def verdicts_view(report):
    return json.dumps(
        sorted((v.param, v.verdict, v.category, v.fp_reason)
               for v in report.verdicts))


def sigkill_self_test(name="TestSynth.testSigkillSelf"):
    """Simulates an external `kill -9` landing on the worker."""
    def body(ctx):
        conf = SynthConfiguration()
        first, second = Service(conf), Service(conf)
        if first.mode != second.mode or first.level != second.level:
            os.kill(os.getpid(), signal.SIGKILL)

    return UnitTest(app="synth", name=name, fn=body)


def sigstop_self_test(name="TestSynth.testFreeze"):
    """Freezes the whole worker process: even the heartbeat thread stops,
    which is exactly what distinguishes frozen from merely busy."""
    def body(ctx):
        conf = SynthConfiguration()
        first, second = Service(conf), Service(conf)
        if first.mode != second.mode or first.level != second.level:
            os.kill(os.getpid(), signal.SIGSTOP)

    return UnitTest(app="synth", name=name, fn=body)


# ---------------------------------------------------------------------------
# crash containment + quarantine
# ---------------------------------------------------------------------------
class TestCrashContainment:
    def test_hard_crash_is_quarantined_not_fatal(self):
        poison = hard_crash_test()
        report = campaign([poison, two_service_test(), safe_only_test()],
                          worker_redelivery=1).run()
        assert poison.full_name in report.quarantined_tests
        assert poison.full_name in report.degraded_tests
        error = report.degraded_errors[poison.full_name]
        assert "exit status 1" in error and "quarantined" in error
        # healthy profiles were unaffected
        found = {v.param for v in report.verdicts if v.is_true_problem}
        assert found == {"synth.mode", "synth.level"}
        stats = report.supervision
        assert stats.enabled
        assert stats.crashes >= 2  # first delivery + one redelivery
        assert stats.redeliveries == 1
        assert stats.respawns >= 1
        assert stats.quarantined == 1
        assert not stats.circuit_breaker_tripped

    def test_sigkilled_worker_reports_the_signal(self):
        poison = sigkill_self_test()
        report = campaign([poison, safe_only_test()],
                          worker_redelivery=0).run()
        assert poison.full_name in report.quarantined_tests
        assert "SIGKILL" in report.degraded_errors[poison.full_name]

    def test_unpoisoned_verdicts_identical_to_unsupervised_run(self):
        healthy = lambda: [two_service_test(), client_vs_service_test(),  # noqa: E731
                           safe_only_test()]
        supervised = campaign([hard_crash_test()] + healthy(),
                              worker_redelivery=0).run()
        sequential = campaign(healthy(), workers=1).run()
        assert verdicts_view(supervised) == verdicts_view(sequential)

    def test_markdown_renders_supervision_and_quarantine(self):
        poison = hard_crash_test()
        report = campaign([poison, safe_only_test()],
                          worker_redelivery=0).run()
        markdown = app_report_markdown(report)
        assert "## Worker supervision" in markdown
        assert "## Infrastructure failures" in markdown
        assert "worker crash (profile quarantined)" in markdown
        assert poison.full_name in markdown

    def test_injected_worker_crash_recovers_by_redelivery(self):
        plan = FaultPlan(seed=7, worker_crash_prob=0.5)
        report = campaign([two_service_test(), client_vs_service_test(),
                           safe_only_test()],
                          fault_plan=plan, worker_redelivery=6,
                          crash_loop_threshold=999).run()
        stats = report.supervision
        assert stats.crashes > 0 and stats.redeliveries > 0
        assert stats.quarantined == 0
        assert not report.degraded_tests
        found = {v.param for v in report.verdicts if v.is_true_problem}
        assert found == {"synth.mode", "synth.level"}

    def test_circuit_breaker_halts_with_salvaged_report(self):
        poisons = [hard_crash_test(name="TestSynth.testCrash%d" % i)
                   for i in range(3)]
        report = campaign(poisons, worker_redelivery=0,
                          crash_loop_threshold=2).run()
        stats = report.supervision
        assert stats.circuit_breaker_tripped
        assert set(report.quarantined_tests) == {p.full_name for p in poisons}
        assert any("circuit breaker" in report.degraded_errors[name]
                   for name in report.quarantined_tests)
        assert not report.verdicts  # nothing completed, nothing reported


# ---------------------------------------------------------------------------
# incremental journaling + resume
# ---------------------------------------------------------------------------
class TestIncrementalJournaling:
    def test_bare_backend_journals_completed_profiles_before_dying(
            self, tmp_path):
        """--no-supervise keeps the bare executor: a dead child still
        aborts the campaign, but everything journaled up to that point
        survives, and a *supervised* resume finishes the job."""
        path = str(tmp_path / "ck.jsonl")
        tests = lambda: [two_service_test(), safe_only_test(),  # noqa: E731
                         hard_crash_test()]
        # catalog schedule: the crasher must be *dispatched* last so some
        # work finishes (and journals) before the bare pool breaks; LPT
        # dispatch order depends on measured pre-run weights.
        with pytest.raises(Exception):
            campaign(tests(), supervise=False, checkpoint_path=path,
                     schedule="catalog").run()
        salvage = CampaignCheckpoint(path)
        assert salvage.load() >= 1  # incremental: finished work survived

        resumed = campaign(tests(), checkpoint_path=path,
                           worker_redelivery=0).run()
        assert "synth::TestSynth.testWorkerCrash" in resumed.quarantined_tests
        after = CampaignCheckpoint(path)
        assert after.load() == 3  # every profile now journaled

    def test_quarantined_profile_is_journaled_and_not_retried(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        tests = lambda: [hard_crash_test(), safe_only_test()]  # noqa: E731
        first = campaign(tests(), checkpoint_path=path,
                         worker_redelivery=0).run()
        assert first.supervision.quarantined == 1
        resumed = campaign(tests(), checkpoint_path=path,
                           worker_redelivery=0).run()
        # fully restored: the supervisor never even started
        assert not resumed.supervision.enabled
        assert resumed.quarantined_tests == first.quarantined_tests
        record = app_report_to_dict(resumed)
        record_first = app_report_to_dict(first)
        record.pop("supervision"), record_first.pop("supervision")
        assert record == record_first

    def test_thread_backend_shares_the_incremental_contract(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        tests = lambda: [two_service_test(), client_vs_service_test(),  # noqa: E731
                         safe_only_test()]
        first = campaign(tests(), parallel_backend="thread",
                         checkpoint_path=path).run()
        assert not first.supervision.enabled  # threads can't be killed
        journal = CampaignCheckpoint(path)
        assert journal.load() == 3
        resumed = campaign(tests(), parallel_backend="thread",
                           checkpoint_path=path).run()
        assert (app_report_to_dict(resumed)
                == app_report_to_dict(first))


# ---------------------------------------------------------------------------
# degraded (in-process) error rendering
# ---------------------------------------------------------------------------
class TestDegradedTraceback:
    def test_full_traceback_reaches_the_markdown_report(self, monkeypatch):
        from repro.core.pooling import PooledTester
        broken = two_service_test(name="TestSynth.testExplodes")
        original_run = PooledTester.run

        def exploding_run(self, test, group, strategy, units):
            if test.full_name == broken.full_name:
                raise RuntimeError("harness bug for the report")
            return original_run(self, test, group, strategy, units)

        monkeypatch.setattr(PooledTester, "run", exploding_run)
        report = campaign([broken, safe_only_test()], workers=1).run()
        assert broken.full_name in report.degraded_tests
        assert broken.full_name not in report.quarantined_tests
        error = report.degraded_errors[broken.full_name]
        assert "RuntimeError: harness bug for the report" in error
        assert "Traceback" in error
        markdown = app_report_markdown(report)
        assert "harness error (profile degraded)" in markdown
        assert "RuntimeError: harness bug for the report" in markdown

    def test_worker_traceback_crosses_the_pipe(self, monkeypatch):
        from repro.core.pooling import PooledTester
        broken = two_service_test(name="TestSynth.testExplodesInWorker")
        original_run = PooledTester.run

        def exploding_run(self, test, group, strategy, units):
            if test.full_name == broken.full_name:
                raise RuntimeError("harness bug in the worker")
            return original_run(self, test, group, strategy, units)

        monkeypatch.setattr(PooledTester, "run", exploding_run)
        report = campaign([broken, safe_only_test()]).run()
        assert broken.full_name in report.degraded_tests
        assert broken.full_name not in report.quarantined_tests  # contained
        assert ("RuntimeError: harness bug in the worker"
                in report.degraded_errors[broken.full_name])


# ---------------------------------------------------------------------------
# hung workers: deadlines, frozen processes, rlimits (slow -> chaos)
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestHungWorkers:
    def test_deadline_kills_realtime_hang(self):
        hung = hanging_test()
        report = campaign([hung, two_service_test()],
                          profile_deadline_s=1.0).run()
        assert hung.full_name in report.quarantined_tests
        assert "deadline" in report.degraded_errors[hung.full_name]
        assert report.supervision.deadline_kills == 1
        # redelivering a deterministic hang would just hang again
        assert report.supervision.redeliveries == 0
        found = {v.param for v in report.verdicts if v.is_true_problem}
        assert found == {"synth.mode", "synth.level"}

    def test_frozen_worker_is_killed_on_heartbeat_silence(self):
        frozen = sigstop_self_test()
        report = campaign([frozen, safe_only_test()],
                          heartbeat_timeout_s=1.0, worker_redelivery=0).run()
        assert frozen.full_name in report.quarantined_tests
        assert "heartbeat" in report.degraded_errors[frozen.full_name]
        assert report.supervision.heartbeat_kills >= 1

    def test_rlimit_cpu_kills_spinning_worker(self):
        spin = spinning_test()
        report = campaign([spin, safe_only_test()],
                          worker_rlimit_cpu_s=1, worker_redelivery=0).run()
        assert spin.full_name in report.quarantined_tests
        assert "SIGXCPU" in report.degraded_errors[spin.full_name]
        # completed profiles trigger a recycle so every profile gets a
        # fresh CPU budget
        assert report.supervision.recycles >= 1
