"""Tests for automatic parameter-dependency inference (§4 future work)."""

from __future__ import annotations

import pytest

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.params import BOOL, ENUM, INT, ParamRegistry
from repro.core.confagent import current_agent
from repro.core.depinfer import (InferredDependency, infer_dependencies,
                                 infer_rules_for_corpus)
from repro.core.registry import UnitTest


def make_synthetic():
    registry = ParamRegistry("dep-app")
    registry.define("dep.feature.enabled", BOOL, False)
    registry.define("dep.feature.mode", ENUM, "a", values=("a", "b"))
    registry.define("dep.always-read", INT, 1)

    class DepConfiguration(Configuration):
        pass

    DepConfiguration.registry = registry

    class Service:
        node_type = "Service"

        def __init__(self, conf):
            agent = current_agent()
            agent.start_init(self, self.node_type)
            try:
                self.conf = ref_to_clone(conf)
                self.conf.get_int("dep.always-read")
                if self.conf.get_bool("dep.feature.enabled"):
                    # the conditional read: mode matters only when the
                    # feature is on
                    self.conf.get_enum("dep.feature.mode")
            finally:
                agent.stop_init()

    def body(ctx):
        Service(DepConfiguration())

    test = UnitTest(app="dep-app", name="TestDep.testService", fn=body)
    return registry, test


class TestSyntheticInference:
    def test_conditional_read_detected(self):
        registry, test = make_synthetic()
        findings = infer_dependencies(test, registry,
                                      drivers=["dep.feature.enabled"])
        assert InferredDependency(driver="dep.feature.enabled",
                                  enabling_value=True,
                                  dependent="dep.feature.mode") in findings

    def test_unconditional_read_not_reported(self):
        registry, test = make_synthetic()
        findings = infer_dependencies(test, registry,
                                      drivers=["dep.feature.enabled"])
        dependents = {f.dependent for f in findings}
        assert "dep.always-read" not in dependents

    def test_driver_never_its_own_dependent(self):
        registry, test = make_synthetic()
        findings = infer_dependencies(test, registry,
                                      drivers=["dep.feature.enabled"])
        assert all(f.dependent != f.driver for f in findings)

    def test_rules_pin_the_enabling_value(self):
        registry, test = make_synthetic()
        rules = infer_rules_for_corpus([test], registry,
                                       drivers=["dep.feature.enabled"])
        mode_rules = [r for r in rules if r.param == "dep.feature.mode"]
        assert mode_rules, "expected rules for the dependent parameter"
        assert all(r.companion == "dep.feature.enabled"
                   and r.companion_value is True for r in mode_rules)
        # one rule per candidate value of the dependent
        assert {r.value for r in mode_rules} == {"a", "b"}

    def test_unknown_driver_ignored(self):
        registry, test = make_synthetic()
        assert infer_dependencies(test, registry, drivers=["nope"]) == []

    def test_default_drivers_are_bools_and_enums(self):
        from repro.core.depinfer import default_drivers
        registry, test = make_synthetic()
        assert set(default_drivers(registry)) == {"dep.feature.enabled",
                                                  "dep.feature.mode"}

    def test_inference_without_explicit_drivers(self):
        registry, test = make_synthetic()
        findings = infer_dependencies(test, registry)  # default drivers
        assert any(f.dependent == "dep.feature.mode"
                   and f.driver == "dep.feature.enabled" for f in findings)


class TestOnRealCorpus:
    def test_https_address_depends_on_http_policy(self, corpus):
        """The exact §4 example: 'in HDFS there is a parameter to
        configure whether to use the http or https protocol, and two
        parameters to set the http and https addresses' — inference must
        discover that the https address is only read under HTTPS_ONLY."""
        from repro.apps.hdfs import HDFS_FULL_REGISTRY
        test = corpus.get("hdfs", "TestFsck.testFsckHealthy")
        findings = infer_dependencies(test, HDFS_FULL_REGISTRY,
                                      drivers=["dfs.http.policy"])
        assert InferredDependency(
            driver="dfs.http.policy", enabling_value="HTTPS_ONLY",
            dependent="dfs.namenode.https-address") in findings

    def test_inferred_rules_pin_the_enabling_policy(self, corpus):
        """Testing the https address is only meaningful with the policy
        pinned to HTTPS_ONLY — the inferred rule states exactly that
        (the §4 manual rule, derived automatically)."""
        from repro.apps.hdfs import HDFS_FULL_REGISTRY
        test = corpus.get("hdfs", "TestFsck.testFsckHealthy")
        rules = infer_rules_for_corpus([test], HDFS_FULL_REGISTRY,
                                       drivers=["dfs.http.policy"])
        address_rules = [r for r in rules
                         if r.param == "dfs.namenode.https-address"]
        assert address_rules
        assert all(r.companion == "dfs.http.policy"
                   and r.companion_value == "HTTPS_ONLY"
                   for r in address_rules)
