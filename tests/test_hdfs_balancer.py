"""Integration tests for the Balancer/Mover case studies (§7.1)."""

from __future__ import annotations

import pytest

from repro.apps.hdfs import Balancer, HdfsConfiguration, MiniDFSCluster, Mover
from repro.common.errors import BalancerTimeout, PlacementPolicyError
from repro.core.confagent import ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def agent_for(param, per_group):
    """per_group: {group: value}; everyone else keeps the first value."""
    assignments = []
    values = list(per_group.items())
    (group, group_value), other_value = values[0], values[-1][1]
    assignments.append(ParamAssignment(param=param, group=group,
                                       group_values=(group_value,),
                                       other_value=other_value))
    return ConfAgent(assignment=HeteroAssignment(tuple(assignments)))


def balancing_time(dn_moves, balancer_moves, blocks=100):
    agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param="dfs.datanode.balance.max.concurrent.moves", group="DataNode",
        group_values=(dn_moves,), other_value=balancer_moves),)))
    with agent:
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        try:
            moves = [{"block_id": cluster.place_block("/b/f%d" % i, ["dn0"]),
                      "source": "dn0", "target": "dn1"}
                     for i in range(blocks)]
            balancer = Balancer(conf, cluster)
            result = balancer.run_balancing(moves, timeout_s=100000.0)
            return result["elapsed_s"]
        finally:
            cluster.shutdown()


class TestConcurrentMovesCaseStudy:
    """The paper measured (50,50)=14s, (1,1)=16.7s, (1,50)=154s; absolute
    numbers differ here (our transfers are faster) but the *shape* — the
    heterogeneous setting collapsing ~10x versus both homogeneous ones —
    must hold."""

    def test_homogeneous_settings_are_comparable(self):
        fast = balancing_time(50, 50)
        serial = balancing_time(1, 1)
        assert fast <= serial

    def test_heterogeneous_collapse_factor(self):
        serial = balancing_time(1, 1)
        congested = balancing_time(1, 50)
        assert congested / serial >= 5.0  # paper's ratio is ~9.2x

    def test_reverse_heterogeneous_is_fine(self):
        # (DataNode:50, Balancer:1) just serializes; no collapse
        assert balancing_time(50, 1) <= balancing_time(1, 1) * 1.5

    def test_congestion_declines_counted(self):
        agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
            param="dfs.datanode.balance.max.concurrent.moves",
            group="DataNode", group_values=(1,), other_value=50),)))
        with agent:
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            moves = [{"block_id": cluster.place_block("/b/f%d" % i, ["dn0"]),
                      "source": "dn0", "target": "dn1"} for i in range(20)]
            Balancer(conf, cluster).run_balancing(moves, timeout_s=100000.0)
            assert cluster.datanodes[0].declined_moves > 0
            cluster.shutdown()


class TestBandwidthCaseStudy:
    def run_transfer(self, dn0_rate, dn1_rate, progress_timeout_s=3.0):
        agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
            param="dfs.datanode.balance.bandwidthPerSec", group="DataNode",
            group_values=(dn0_rate, dn1_rate), other_value=dn1_rate),)))
        with agent:
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            try:
                balancer = Balancer(conf, cluster)
                return balancer.run_throttled_transfer(
                    "dn0", "dn1", block_bytes=50 * 1024 * 1024,
                    progress_timeout_s=progress_timeout_s)
            finally:
                cluster.shutdown()

    def test_fast_sender_starves_slow_receiver_progress(self):
        with pytest.raises(BalancerTimeout, match="progress"):
            self.run_transfer(1000 * 1024 * 1024, 100 * 1024)

    def test_homogeneous_slow_is_slow_but_progresses(self):
        result = self.run_transfer(100 * 1024, 100 * 1024)
        assert result["chunks"] == 800
        assert result["elapsed_s"] > 100  # genuinely throttled

    def test_homogeneous_fast_finishes_quickly(self):
        result = self.run_transfer(1000 * 1024 * 1024, 1000 * 1024 * 1024)
        assert result["elapsed_s"] < 5.0

    def test_slow_sender_fast_receiver_is_fine(self):
        result = self.run_transfer(100 * 1024, 1000 * 1024 * 1024)
        assert result["chunks"] == 800


class TestUpgradeDomainCaseStudy:
    def run_with_factors(self, balancer_factor, namenode_factor,
                         timeout_s=30.0):
        agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
            param="dfs.namenode.upgrade.domain.factor", group="Balancer",
            group_values=(balancer_factor,), other_value=namenode_factor),)))
        with agent:
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(
                conf, num_datanodes=5,
                upgrade_domains=["ud0", "ud1", "ud2", "ud0", "ud3"])
            cluster.start()
            try:
                block_id = cluster.place_block("/ud/b", ["dn0", "dn1", "dn2"])
                balancer = Balancer(conf, cluster)
                domains = balancer.rpc_client.call(cluster.namenode.rpc,
                                                   "get_upgrade_domains")
                target = balancer.pick_target(
                    ["dn0", "dn1", "dn2"], source_dn="dn2",
                    candidates=["dn3", "dn4"], domains=domains)
                result = balancer.run_balancing(
                    [{"block_id": block_id, "source": "dn2",
                      "target": target}], timeout_s=timeout_s)
                return result, balancer
            finally:
                cluster.shutdown()

    def test_lax_balancer_strict_namenode_never_finishes(self):
        with pytest.raises(BalancerTimeout):
            self.run_with_factors(balancer_factor=1, namenode_factor=3)

    def test_strict_balancer_lax_namenode_completes(self):
        result, _ = self.run_with_factors(balancer_factor=3,
                                          namenode_factor=1)
        assert result["moves"] == 1

    def test_homogeneous_factors_complete(self):
        for factor in (1, 3):
            result, _ = self.run_with_factors(factor, factor)
            assert result["moves"] == 1

    def test_policy_rejections_counted(self):
        try:
            self.run_with_factors(1, 3, timeout_s=10.0)
        except BalancerTimeout as exc:
            assert "policy rejections" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected a BalancerTimeout")


class TestMover:
    def test_mover_shares_dispatch_machinery(self):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        moves = [{"block_id": cluster.place_block("/m/f%d" % i, ["dn0"]),
                  "source": "dn0", "target": "dn1"} for i in range(5)]
        mover = Mover(conf, cluster)
        assert mover.node_type == "Mover"
        result = mover.run_balancing(moves, timeout_s=60.0)
        assert result["moves"] == 5
        cluster.shutdown()

    def test_pick_target_raises_when_no_candidate_fits(self):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=4,
                                 upgrade_domains=["ud0", "ud1", "ud0", "ud1"])
        cluster.start()
        balancer = Balancer(conf, cluster)
        with pytest.raises(PlacementPolicyError):
            balancer.pick_target(["dn0", "dn1"], source_dn="dn1",
                                 candidates=["dn2"],
                                 domains={"dn0": "ud0", "dn1": "ud1",
                                          "dn2": "ud0"})
        cluster.shutdown()
