"""Tests for DFSAdmin online reconfiguration and targeted campaigns."""

from __future__ import annotations

import pytest

from repro.apps import catalog
from repro.apps.hdfs import (DFSAdmin, HdfsConfiguration, MiniDFSCluster,
                             ReconfigurationError)
from repro.core.confagent import ConfAgent
from repro.core.orchestrator import Campaign, CampaignConfig


@pytest.fixture()
def live_cluster():
    # a ConfAgent session gives each node its own conf clone, so
    # reconfiguration is genuinely per-node (see §6.1).
    session = ConfAgent()
    with session:
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
    yield conf, cluster
    cluster.shutdown()


class TestDFSAdminReconfig:
    def test_set_balancer_bandwidth_hits_every_datanode(self, live_cluster):
        conf, cluster = live_cluster
        admin = DFSAdmin(conf, cluster)
        assert admin.set_balancer_bandwidth(123456) == 2
        for datanode in cluster.datanodes:
            assert datanode.conf.get_int(
                "dfs.datanode.balance.bandwidthPerSec") == 123456

    def test_bandwidth_reconfiguration_takes_effect_live(self, live_cluster):
        conf, cluster = live_cluster
        datanode = cluster.datanodes[0]
        DFSAdmin(conf, cluster).reconfig_datanode(
            "dn0", "dfs.datanode.balance.bandwidthPerSec", 1000)
        # the throttler re-reads the cap on every acquisition (HDFS-2202)
        assert datanode.balance_throttler.rate_fn() == 1000

    def test_heartbeat_reconfig_on_namenode(self, live_cluster):
        conf, cluster = live_cluster
        admin = DFSAdmin(conf, cluster)
        before = cluster.namenode._heartbeat_expiry_s()
        admin.reconfig_namenode("dfs.heartbeat.interval", 3000)
        assert cluster.namenode._heartbeat_expiry_s() > before

    def test_non_reconfigurable_param_refused(self, live_cluster):
        conf, cluster = live_cluster
        admin = DFSAdmin(conf, cluster)
        with pytest.raises(ReconfigurationError):
            admin.reconfig_namenode("dfs.namenode.fs-limits.max-directory-items",
                                    5)
        with pytest.raises(ReconfigurationError):
            admin.reconfig_datanode("dn0", "dfs.checksum.type", "CRC32C")

    def test_unknown_datanode_refused(self, live_cluster):
        conf, cluster = live_cluster
        with pytest.raises(ReconfigurationError):
            DFSAdmin(conf, cluster).reconfig_datanode("dn9", "x", 1)

    def test_stopped_node_refused(self, live_cluster):
        conf, cluster = live_cluster
        cluster.datanodes[1].stop()
        with pytest.raises(Exception):
            DFSAdmin(conf, cluster).reconfig_datanode(
                "dn1", "dfs.heartbeat.interval", 30)

    def test_list_reconfigurable(self, live_cluster):
        conf, cluster = live_cluster
        admin = DFSAdmin(conf, cluster)
        assert "dfs.heartbeat.interval" in admin.list_reconfigurable("NameNode")
        assert admin.list_reconfigurable("Balancer") == []

    def test_report_is_the_stats_call(self, live_cluster):
        conf, cluster = live_cluster
        report = DFSAdmin(conf, cluster).report()
        assert report["live"] == 2


class TestTargetedCampaign:
    def test_only_params_restricts_findings_and_cost(self):
        spec = catalog.spec_for("hdfs")
        targeted = Campaign(
            "hdfs", spec.registry, dependency_rules=spec.dependency_rules,
            config=CampaignConfig(
                only_params=frozenset({"dfs.heartbeat.interval"}))).run()
        reported = {v.param for v in targeted.verdicts}
        assert reported == {"dfs.heartbeat.interval"}
        # restricting the scope must shrink the run drastically
        assert targeted.stage_counts.after_prerun < 200
        assert targeted.executions < 600

    def test_only_params_on_safe_param_reports_nothing(self):
        spec = catalog.spec_for("flink")
        report = Campaign(
            "flink", spec.registry,
            config=CampaignConfig(
                only_params=frozenset({"rest.port"}))).run()
        assert report.verdicts == []
