"""Property-based tests of the detection pipeline itself.

The central soundness/completeness property: for a randomly generated
application with a randomly chosen set of heterogeneous-unsafe
parameters, pooled testing with bisection must report **exactly** that
set — no misses, no extras — and must never be more expensive than
testing every parameter individually.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.errors import TestFailure
from repro.common.params import INT, ParamRegistry
from repro.core.confagent import current_agent
from repro.core.pooling import PooledTester
from repro.core.registry import UnitTest
from repro.core.runner import CONFIRMED_UNSAFE, TestRunner
from repro.core.testgen import ROUND_ROBIN, TestGenerator


def build_app(num_params: int, unsafe_indexes: frozenset):
    """A synthetic app: two peers compare exactly the 'unsafe' params."""
    registry = ParamRegistry("prop-app")
    names = []
    for index in range(num_params):
        name = "prop.p%02d" % index
        registry.define(name, INT, 10 + index,
                        candidates=(10 + index, 9000 + index))
        names.append(name)
    unsafe = {names[i] for i in unsafe_indexes if i < num_params}

    class PropConfiguration(Configuration):
        pass

    PropConfiguration.registry = registry

    class Service:
        node_type = "Service"

        def __init__(self, conf):
            agent = current_agent()
            agent.start_init(self, self.node_type)
            try:
                self.conf = ref_to_clone(conf)
                for name in names:  # every param is read -> all testable
                    self.conf.get_int(name)
            finally:
                agent.stop_init()

        def exchange(self, peer):
            for name in unsafe:
                if self.conf.get_int(name) != peer.conf.get_int(name):
                    raise TestFailure("%s mismatch" % name)

    def body(ctx):
        conf = PropConfiguration()
        first, second = Service(conf), Service(conf)
        first.exchange(second)

    test = UnitTest(app="prop-app", name="TestProp.testExchange", fn=body)
    return registry, test, unsafe, names


def run_detection(registry, test, names, max_pool_size=None):
    generator = TestGenerator(registry)
    runner = TestRunner()
    tester = PooledTester(runner, max_pool_size=max_pool_size)
    units = [generator.assignment(registry.get(name), "Service",
                                  ROUND_ROBIN,
                                  generator.value_pairs(registry.get(name))[0])
             for name in names]
    results = tester.run(test, "Service", ROUND_ROBIN, units)
    confirmed = {r.instance.params[0] for r in results
                 if r.verdict == CONFIRMED_UNSAFE}
    return confirmed, runner.executions


@given(num_params=st.integers(min_value=1, max_value=8),
       unsafe_indexes=st.frozensets(st.integers(min_value=0, max_value=7),
                                    max_size=4))
@settings(max_examples=30, deadline=None)
def test_pooled_detection_is_exact(num_params, unsafe_indexes):
    registry, test, unsafe, names = build_app(num_params, unsafe_indexes)
    confirmed, _ = run_detection(registry, test, names)
    assert confirmed == unsafe


@given(num_params=st.integers(min_value=2, max_value=8),
       unsafe_indexes=st.frozensets(st.integers(min_value=0, max_value=7),
                                    max_size=2))
@settings(max_examples=20, deadline=None)
def test_pooling_agrees_with_individual_testing(num_params, unsafe_indexes):
    registry, test, unsafe, names = build_app(num_params, unsafe_indexes)
    pooled, pooled_cost = run_detection(registry, test, names)
    individual, individual_cost = run_detection(registry, test, names,
                                                max_pool_size=1)
    assert pooled == individual == unsafe
    # Pooling's overhead over individual testing is bounded by the
    # bisection tree: at most ~2*|unsafe|*log2(n)+1 extra runs.  When
    # everything is safe it is strictly cheaper (see the next property).
    bisection_bound = 2 * max(len(unsafe), 1) * max(num_params.bit_length(),
                                                    1) + 1
    assert pooled_cost <= individual_cost + bisection_bound
    if not unsafe:
        assert pooled_cost < individual_cost


@given(num_params=st.integers(min_value=2, max_value=6))
@settings(max_examples=10, deadline=None)
def test_all_safe_pool_costs_one_hetero_run(num_params):
    registry, test, unsafe, names = build_app(num_params, frozenset())
    generator = TestGenerator(registry)
    runner = TestRunner()
    tester = PooledTester(runner)
    units = [generator.assignment(registry.get(name), "Service",
                                  ROUND_ROBIN,
                                  generator.value_pairs(registry.get(name))[0])
             for name in names]
    tester.run(test, "Service", ROUND_ROBIN, units)
    assert tester.stats.pool_runs == 1
    assert tester.stats.bisection_runs == 0
    assert runner.executions == 1
