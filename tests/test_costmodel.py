"""Cost model + LPT scheduling: predictions, ordering, and the invariant
that scheduling (and the kernel fast path) never changes findings.

Dispatch order is a pure makespan concern: profiles are handed to the
worker pool longest-predicted-first, but outcomes are folded back in
catalog order, so the AppReport, every verdict, and the deterministic
metrics snapshot must be byte-identical between ``schedule="lpt"`` and
``schedule="catalog"`` — on every backend, under chaos, and across a
checkpoint resume.
"""

from __future__ import annotations

import json

import pytest

import repro.perf as perf
from repro.common.faults import FaultPlan
from repro.core.costmodel import (CACHE_HIT_PCT, EWMA_ALPHA, SINGLETON_COST,
                                  UNSAFE_PRIOR_PCT, CostBook, CostModel)
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.prerun import prerun_test
from repro.core.report import app_report_to_dict
from repro.core.reportmd import app_report_markdown
from synthetic_app import (SYNTH_REGISTRY, client_vs_service_test,
                           safe_only_test, two_service_test)


def campaign(**config_kwargs):
    config_kwargs.setdefault("blacklist_threshold", 999)  # decouple profiles
    tests = [two_service_test(), client_vs_service_test(), safe_only_test()]
    return Campaign("synth", SYNTH_REGISTRY, tests=tests,
                    config=CampaignConfig(**config_kwargs))


def usable_profiles(camp):
    return [profile for profile in (prerun_test(test) for test in camp.tests)
            if profile.usable]


class TestCostModel:
    def test_predictions_are_deterministic(self):
        camp = campaign()
        profiles = usable_profiles(camp)
        first = [CostModel(camp).predict(p) for p in profiles]
        second = [CostModel(camp).predict(p) for p in profiles]
        assert first == second

    def test_prediction_integer_math(self):
        camp = campaign()
        for profile in usable_profiles(camp):
            prediction = CostModel(camp).predict(profile)
            surcharge = (prediction.units * UNSAFE_PRIOR_PCT
                         * SINGLETON_COST) // 100
            assert prediction.predicted_executions \
                == prediction.pool_runs + surcharge
            assert prediction.predicted_cache_hits == 0  # cache off
            assert prediction.effective_executions \
                == prediction.predicted_executions

    def test_cache_discount_prices_hits(self):
        cached = campaign(exec_cache=True)
        for profile in usable_profiles(cached):
            prediction = CostModel(cached).predict(profile)
            surcharge = (prediction.units * UNSAFE_PRIOR_PCT
                         * SINGLETON_COST) // 100
            assert prediction.predicted_cache_hits \
                == (surcharge * CACHE_HIT_PCT) // 100
            assert prediction.effective_executions \
                <= prediction.predicted_executions

    def test_lpt_orders_heaviest_first(self):
        camp = campaign()
        profiles = usable_profiles(camp)
        model = CostModel(camp)
        for weight, profile in enumerate(profiles, start=1):
            profile.prerun_wall_s = float(weight)
        ordered = model.lpt_order(profiles)
        costs = [model.predict(p).predicted_wall_s for p in ordered]
        assert costs == sorted(costs, reverse=True)
        assert sorted(p.test.full_name for p in ordered) \
            == sorted(p.test.full_name for p in profiles)

    def test_lpt_ties_break_on_test_name(self):
        camp = Campaign(
            "synth", SYNTH_REGISTRY,
            tests=[two_service_test(name="TestSynth.testZzz"),
                   two_service_test(name="TestSynth.testAaa")],
            config=CampaignConfig(blacklist_threshold=999))
        profiles = usable_profiles(camp)
        for profile in profiles:
            profile.prerun_wall_s = 1.0  # identical weights and bodies
        ordered = CostModel(camp).lpt_order(profiles)
        assert [p.test.full_name for p in ordered] \
            == ["synth::TestSynth.testAaa", "synth::TestSynth.testZzz"]

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            campaign(schedule="fifo").run()


class TestPredictionsInReport:
    def test_cost_centers_carry_predictions(self):
        report = campaign().run()
        assert report.cost_centers
        record = app_report_to_dict(report)
        for center in record["cost_centers"]:
            assert center["predicted_executions"] >= 0
        assert "Predicted" in app_report_markdown(report)

    def test_sched_metrics_are_deterministic(self):
        lpt = campaign(observe=True, workers=2, schedule="lpt").run()
        catalog = campaign(observe=True, workers=2, schedule="catalog").run()
        snapshot = lpt.observation.metrics.render_prometheus()
        assert "zc_sched_predicted_executions_total" in snapshot
        assert "zc_sched_prediction_error_executions_total" in snapshot
        # prediction totals are analytic integers: dispatch order and
        # backend cannot move them
        assert snapshot == catalog.observation.metrics.render_prometheus()


class TestSchedulingNeverChangesFindings:
    def test_lpt_vs_catalog_reports_identical(self):
        lpt = campaign(workers=3, schedule="lpt").run()
        catalog = campaign(workers=3, schedule="catalog").run()
        assert app_report_to_dict(lpt) == app_report_to_dict(catalog)

    def test_serial_vs_lpt_workers_reports_identical(self):
        serial = campaign().run()
        fanned = campaign(workers=3, schedule="lpt").run()
        assert app_report_to_dict(serial) == app_report_to_dict(fanned)

    def test_fast_path_off_report_identical(self):
        previous = perf.set_fast_path(True)
        try:
            fast = campaign().run()
            perf.set_fast_path(False)
            legacy = campaign().run()
        finally:
            perf.set_fast_path(previous)
        assert app_report_to_dict(fast) == app_report_to_dict(legacy)

    def test_checkpoint_resume_with_lpt(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        full = campaign(workers=2, schedule="lpt").run()
        campaign(workers=2, schedule="lpt", checkpoint_path=path).run()
        # cut the journal back to one finished test and resume
        kept, done = [], 0
        for line in open(path):
            record = json.loads(line)
            if record["kind"] == "test-done":
                done += 1
                if done > 1:
                    continue
            kept.append(line)
        assert done == 3
        with open(path, "w") as handle:
            handle.writelines(kept)
        resumed = campaign(workers=2, schedule="lpt",
                           checkpoint_path=path).run()
        assert app_report_to_dict(resumed) == app_report_to_dict(full)


@pytest.mark.chaos
class TestChaosScheduling:
    PLAN = FaultPlan(seed=23, drop_prob=0.1, delay_prob=0.1,
                     duplicate_prob=0.02, crash_prob=0.03,
                     io_slowdown_prob=0.05, clock_jitter=0.02,
                     infra_error_prob=0.01)

    def test_chaos_lpt_vs_catalog_reports_identical(self):
        lpt = campaign(workers=2, schedule="lpt",
                       fault_plan=self.PLAN).run()
        catalog = campaign(workers=2, schedule="catalog",
                           fault_plan=self.PLAN).run()
        assert app_report_to_dict(lpt) == app_report_to_dict(catalog)


class TestCostBook:
    def test_first_sample_is_stored_raw(self, tmp_path):
        book = CostBook(str(tmp_path / "w.json"))
        book.observe("synth::T.a", 40, wall_s=2.0)
        entry = book.measured("synth::T.a")
        assert entry == {"executions": 40.0, "wall_s": 2.0, "samples": 1.0}

    def test_later_samples_are_ewma_smoothed(self, tmp_path):
        book = CostBook(str(tmp_path / "w.json"))
        book.observe("synth::T.a", 10, wall_s=1.0)
        book.observe("synth::T.a", 20, wall_s=2.0)
        entry = book.measured("synth::T.a")
        assert entry["executions"] == pytest.approx(10 + EWMA_ALPHA * 10)
        assert entry["wall_s"] == pytest.approx(1.0 + EWMA_ALPHA * 1.0)
        assert entry["samples"] == 2.0
        # an anomalous wall-clock spike moves the estimate only 30%
        book.observe("synth::T.a", 13, wall_s=100.0)
        assert book.measured("synth::T.a")["wall_s"] < 31.0

    def test_zero_wall_never_clobbers_a_measurement(self, tmp_path):
        book = CostBook(str(tmp_path / "w.json"))
        book.observe("synth::T.a", 10, wall_s=1.5)
        book.observe("synth::T.a", 10, wall_s=None)
        book.observe("synth::T.a", 10, wall_s=0.0)
        assert book.measured("synth::T.a")["wall_s"] == pytest.approx(1.5)

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.jsonl.weights.json")
        book = CostBook(path)
        book.observe("synth::T.a", 10, wall_s=1.0)
        book.observe("synth::T.b", 5)
        book.save()
        fresh = CostBook(path)
        fresh.load()
        assert fresh.measured("synth::T.a") == book.measured("synth::T.a")
        assert fresh.measured("synth::T.b") == book.measured("synth::T.b")
        assert fresh.measured("synth::T.c") is None

    def test_missing_and_corrupt_files_are_tolerated(self, tmp_path):
        missing = CostBook(str(tmp_path / "nope.json"))
        missing.load()
        assert missing.measured("synth::T.a") is None
        path = tmp_path / "bad.json"
        path.write_text("{corrupt json")
        corrupt = CostBook(str(path))
        corrupt.load()
        assert corrupt.measured("synth::T.a") is None
        path.write_text('["not", "an", "object"]')
        shaped_wrong = CostBook(str(path))
        shaped_wrong.load()
        assert shaped_wrong.measured("synth::T.a") is None

    def test_beside_checkpoint_naming(self):
        assert CostBook.beside_checkpoint("/x/ck.jsonl") \
            == "/x/ck.jsonl.weights.json"

    def test_measured_wall_beats_analytic_forecast(self, tmp_path):
        camp = campaign()
        profiles = usable_profiles(camp)
        model = CostModel(camp)
        target = profiles[0]
        assert model.scheduling_wall_s(target) \
            == model.predict(target).predicted_wall_s  # no book: analytic
        book = CostBook(str(tmp_path / "w.json"))
        book.observe(target.test.full_name, 3, wall_s=123.5)
        camp.cost_book = book
        assert model.scheduling_wall_s(target) == pytest.approx(123.5)

    def test_measured_executions_priced_at_prerun_weight(self, tmp_path):
        camp = campaign()
        profiles = usable_profiles(camp)
        model = CostModel(camp)
        target = profiles[0]
        target.prerun_wall_s = 0.5
        book = CostBook(str(tmp_path / "w.json"))
        book.observe(target.test.full_name, 40)  # executions, no wall
        camp.cost_book = book
        assert model.scheduling_wall_s(target) == pytest.approx(40 * 0.5)

    def test_lpt_order_prefers_measured_history(self, tmp_path):
        camp = campaign()
        profiles = usable_profiles(camp)
        for profile in profiles:
            profile.prerun_wall_s = 1.0
        book = CostBook(str(tmp_path / "w.json"))
        lightest = CostModel(camp).lpt_order(profiles)[-1]
        book.observe(lightest.test.full_name, 1, wall_s=9999.0)
        camp.cost_book = book
        assert CostModel(camp).lpt_order(profiles)[0] is lightest

    def test_checkpointed_campaign_persists_weights(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        report = campaign(checkpoint_path=path).run()
        book = CostBook(CostBook.beside_checkpoint(path))
        book.load()
        assert report.cost_centers
        for center in report.cost_centers:
            entry = book.measured(center.test)
            assert entry is not None
            assert entry["executions"] > 0.0
            assert entry["samples"] == 1.0

    def test_resume_reschedules_without_changing_findings(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        baseline = campaign(workers=2).run()
        campaign(workers=2, checkpoint_path=path).run()
        # wipe the journal but keep the weights: the rerun schedules
        # purely from measured history and must report identically
        with open(path) as handle:
            header = handle.readline()
        with open(path, "w") as handle:
            handle.write(header)
        resumed = campaign(workers=2, checkpoint_path=path).run()
        assert app_report_to_dict(resumed) == app_report_to_dict(baseline)
