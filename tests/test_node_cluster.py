"""Unit tests for the Node/MiniCluster base classes and node registry."""

from __future__ import annotations

import pytest

from repro.common.cluster import MiniCluster
from repro.common.errors import NodeStateError
from repro.common.node import NODE_TYPES, Node, node_init, register_node_type
from repro.common.simulation import PeriodicTask


class Widget(Node):
    node_type = "Widget"

    def __init__(self, conf, cluster):
        with node_init(self):
            super().__init__(conf, cluster)


class FakeConf:
    """Duck-typed conf; ref_to_clone is a no-op outside agent sessions."""


class TestNodeLifecycle:
    def make(self):
        cluster = MiniCluster()
        return cluster, cluster.add_node(Widget(FakeConf(), cluster))

    def test_start_stop(self):
        _, node = self.make()
        assert not node.running
        node.start()
        assert node.running
        node.stop()
        assert not node.running

    def test_double_start_rejected(self):
        _, node = self.make()
        node.start()
        with pytest.raises(NodeStateError):
            node.start()

    def test_stop_idempotent(self):
        _, node = self.make()
        node.start()
        node.stop()
        node.stop()

    def test_ensure_running(self):
        _, node = self.make()
        with pytest.raises(NodeStateError):
            node.ensure_running()
        node.start()
        node.ensure_running()

    def test_stop_cancels_periodic_tasks(self):
        cluster, node = self.make()
        node.start()
        ticks = []
        node.add_periodic(PeriodicTask(cluster.sim, lambda: 1.0,
                                       lambda: ticks.append(cluster.sim.now)))
        cluster.run_for(2.5)
        node.stop()
        cluster.run_for(10.0)
        assert ticks == [1.0, 2.0]


class TestMiniCluster:
    def test_roster_queries(self):
        cluster = MiniCluster()
        first = cluster.add_node(Widget(FakeConf(), cluster))
        second = cluster.add_node(Widget(FakeConf(), cluster))
        first.start()
        assert cluster.nodes_of(Widget) == [first, second]
        assert cluster.running_nodes() == [first]

    def test_shutdown_stops_everything(self):
        cluster = MiniCluster()
        node = cluster.add_node(Widget(FakeConf(), cluster))
        node.start()
        cluster.shutdown()
        assert not node.running
        cluster.shutdown()  # idempotent

    def test_context_manager(self):
        with MiniCluster() as cluster:
            node = cluster.add_node(Widget(FakeConf(), cluster))
            node.start()
        assert not node.running

    def test_run_for_surfaces_background_crashes(self):
        cluster = MiniCluster()

        def crash():
            yield 1.0
            raise RuntimeError("daemon died")

        cluster.sim.spawn(crash())
        with pytest.raises(RuntimeError):
            cluster.run_for(5.0)

    def test_ensure_ipc_is_singleton(self):
        from repro.apps.hdfs.conf import HdfsConfiguration
        cluster = MiniCluster()
        first = cluster.ensure_ipc(HdfsConfiguration)
        second = cluster.ensure_ipc(HdfsConfiguration)
        assert first is second


class TestNodeTypeRegistry:
    def test_registration_deduplicates(self):
        register_node_type("testapp-registry", "Alpha")
        register_node_type("testapp-registry", "Alpha")
        register_node_type("testapp-registry", "Beta")
        assert NODE_TYPES["testapp-registry"] == ["Alpha", "Beta"]

    def test_paper_apps_registered_on_import(self, corpus):
        assert "NameNode" in NODE_TYPES["hdfs"]
        assert "TaskManager" in NODE_TYPES["flink"]
        assert "ThriftServer" in NODE_TYPES["hbase"]
