"""Checkpoint/resume: journal round-trips and campaign equivalence."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import (CampaignCheckpoint, CheckpointError,
                                   result_from_dict, result_to_dict)
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.pooling import PoolStats
from repro.core.registry import UnitTest
from repro.core.report import app_report_to_dict
from repro.core.runner import CONFIRMED_UNSAFE, TestRunner
from repro.core.testgen import HeteroAssignment, ParamAssignment, TestInstance
from synthetic_app import SYNTH_REGISTRY, two_service_test


def counting_tests(counters, count=5):
    """Synthetic corpus whose bodies count their own executions, so a
    resumed campaign can prove it did not re-run journaled tests."""
    tests = []
    for index in range(count):
        name = "TestCk.testExchange%02d" % index
        base = two_service_test(name=name)

        def body(ctx, _name=name, _fn=base.fn):
            counters[_name] = counters.get(_name, 0) + 1
            _fn(ctx)

        tests.append(UnitTest(app="synth", name=name, fn=body))
    return tests


def campaign(tests, **config_kwargs):
    return Campaign("synth", SYNTH_REGISTRY, tests=tests,
                    config=CampaignConfig(**config_kwargs))


def evaluated_result():
    assignment = HeteroAssignment((ParamAssignment(
        param="synth.mode", group="Service", group_values=(True, False),
        other_value=False, pinned=(("synth.safe-a", 1),)),))
    instance = TestInstance(test=two_service_test(), group="Service",
                            strategy="round-robin", assignment=assignment)
    return TestRunner().evaluate(instance)


class TestResultRoundTrip:
    def test_round_trip_preserves_everything(self):
        result = evaluated_result()
        assert result.verdict == CONFIRMED_UNSAFE
        record = json.loads(json.dumps(result_to_dict(result)))
        tests = {result.instance.test.full_name: result.instance.test}
        restored = result_from_dict(record, tests)
        assert restored.verdict == result.verdict
        assert restored.hetero_error == result.hetero_error
        assert restored.executions == result.executions
        assert restored.instance.group == result.instance.group
        assert restored.instance.strategy == result.instance.strategy
        assert restored.instance.assignment == result.instance.assignment
        assert restored.instance.test is result.instance.test
        assert restored.tally is not None
        assert restored.tally.p_value() == result.tally.p_value()

    def test_unknown_test_is_refused(self):
        record = result_to_dict(evaluated_result())
        with pytest.raises(CheckpointError):
            result_from_dict(record, {})


class TestJournal:
    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        result = evaluated_result()
        first = CampaignCheckpoint(path)
        first.load()
        first.record_instance(result)
        first.record_test_done(result.instance.test.full_name, [result],
                               PoolStats(), executions=9,
                               fault_counts={"drop": 2}, retries=1)
        second = CampaignCheckpoint(path)
        assert second.load() == 1
        name = result.instance.test.full_name
        assert second.has_test(name)
        tests = {name: result.instance.test}
        results, stats, executions, faults, retries, error, error_kind = \
            second.restore_test(name, tests)
        assert len(results) == 1 and results[0].verdict == result.verdict
        assert executions == 9 and faults == {"drop": 2} and retries == 1
        assert error == "" and error_kind == ""

    def test_torn_tail_line_is_discarded(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        checkpoint = CampaignCheckpoint(path)
        result = evaluated_result()
        checkpoint.record_test_done("synth::a", [result], PoolStats(), 1)
        with open(path, "a") as handle:
            handle.write('{"kind": "test-done", "test": "synth::b", "tru')
        fresh = CampaignCheckpoint(path)
        assert fresh.load() == 1
        assert fresh.has_test("synth::a") and not fresh.has_test("synth::b")

    def test_torn_tail_with_binary_garbage_is_discarded(self, tmp_path):
        """A crash mid-append can leave more than a truncated JSON line:
        preallocated blocks and torn sector writes surface as raw garbage
        bytes after the partial record.  Load must salvage every complete
        record and stop at the tear instead of blowing up."""
        path = str(tmp_path / "ck.jsonl")
        checkpoint = CampaignCheckpoint(path)
        result = evaluated_result()
        checkpoint.record_test_done("synth::a", [result], PoolStats(), 1)
        checkpoint.record_test_done("synth::b", [result], PoolStats(), 2)
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "test-done", "test": "synth::c", "tru')
            handle.write(b"\x00\xff\xfe\x00garbage\xffgarbage")
        fresh = CampaignCheckpoint(path)
        assert fresh.load() == 2
        assert fresh.has_test("synth::a") and fresh.has_test("synth::b")
        assert not fresh.has_test("synth::c")

    def test_partial_instances_do_not_count_as_done(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.record_instance(evaluated_result())
        fresh = CampaignCheckpoint(path)
        assert fresh.load() == 0
        assert "synth::TestSynth.testExchange" in fresh.partial_tests

    def test_header_mismatch_is_refused(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.load()
        checkpoint.check_header("synth", {"alpha": 1e-4})
        resumed = CampaignCheckpoint(path)
        resumed.load()
        resumed.check_header("synth", {"alpha": 1e-4})  # same: fine
        with pytest.raises(CheckpointError):
            resumed.check_header("synth", {"alpha": 0.05})


class TestCampaignResume:
    def run_interrupted_then_resume(self, tmp_path, keep_done):
        """Full run -> cut the journal after ``keep_done`` tests -> resume."""
        path = str(tmp_path / "campaign.jsonl")
        baseline_counters = {}
        full = campaign(counting_tests(baseline_counters),
                        checkpoint_path=path).run()

        kept, done = [], 0
        for line in open(path):
            record = json.loads(line)
            if record["kind"] == "test-done":
                done += 1
                if done > keep_done:
                    continue
            kept.append(line)
        assert done == 5
        with open(path, "w") as handle:
            handle.writelines(kept)

        resume_counters = {}
        resumed = campaign(counting_tests(resume_counters),
                           checkpoint_path=path).run()
        return full, resumed, resume_counters

    def test_resume_reproduces_the_uninterrupted_report(self, tmp_path):
        full, resumed, _ = self.run_interrupted_then_resume(tmp_path, 2)
        assert app_report_to_dict(resumed) == app_report_to_dict(full)

    def test_resume_skips_journaled_tests(self, tmp_path):
        _, _, counters = self.run_interrupted_then_resume(tmp_path, 3)
        # every test executes once in the pre-run; only non-journaled
        # tests execute beyond that on resume.
        skipped = [n for n, c in sorted(counters.items()) if c == 1]
        assert len(skipped) == 3

    def test_resume_after_torn_append_is_byte_identical(self, tmp_path):
        """Crash *during* an append: the journal ends in half a test-done
        record followed by garbage bytes.  Resume must salvage the complete
        records, redo the torn test, and report byte-identically."""
        path = str(tmp_path / "campaign.jsonl")
        full = campaign(counting_tests({}), checkpoint_path=path).run()

        raw = open(path, "rb").read()
        lines = raw.splitlines(keepends=True)
        done_seen = 0
        kept = b""
        torn = None
        for line in lines:
            if b'"kind": "test-done"' in line:
                done_seen += 1
                if done_seen == 3:
                    torn = line
                    break
            kept += line
        assert torn is not None
        with open(path, "wb") as handle:
            handle.write(kept)
            handle.write(torn[: len(torn) // 2])  # the append that tore
            handle.write(b"\x00\xff\xfejournal sector garbage\xff")

        resumed = campaign(counting_tests({}), checkpoint_path=path).run()
        assert app_report_to_dict(resumed) == app_report_to_dict(full)

    def test_checkpointing_does_not_change_results(self, tmp_path):
        plain = campaign(counting_tests({})).run()
        journaled = campaign(counting_tests({}),
                             checkpoint_path=str(tmp_path / "ck.jsonl")).run()
        assert app_report_to_dict(journaled) == app_report_to_dict(plain)

    def test_config_change_between_runs_is_refused(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        campaign(counting_tests({}), checkpoint_path=path).run()
        with pytest.raises(CheckpointError):
            campaign(counting_tests({}), checkpoint_path=path,
                     max_trials=13).run()

    def test_fully_journaled_campaign_resumes_without_running(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first = campaign(counting_tests({}), checkpoint_path=path).run()
        counters = {}
        second = campaign(counting_tests(counters),
                          checkpoint_path=path).run()
        assert app_report_to_dict(second) == app_report_to_dict(first)
        assert all(count == 1 for count in counters.values())  # pre-run only


class TestJournalDurability:
    def test_directory_synced_when_journal_is_created(self, tmp_path,
                                                      monkeypatch):
        """A crash right after the first append must not lose the journal
        *name*: the containing directory is fsynced when the JSONL file
        comes into existence — and only then, later appends ride on the
        file's own fsync."""
        import repro.core.checkpoint as ck
        synced = []
        monkeypatch.setattr(ck, "fsync_directory",
                            lambda path: synced.append(path))
        path = str(tmp_path / "ck.jsonl")
        checkpoint = CampaignCheckpoint(path)
        result = evaluated_result()
        checkpoint.record_test_done("synth::a", [result], PoolStats(), 1)
        assert synced == [path]
        checkpoint.record_test_done("synth::b", [result], PoolStats(), 1)
        assert synced == [path]  # directory entry already durable

    def test_recreated_journal_syncs_again(self, tmp_path, monkeypatch):
        import os

        import repro.core.checkpoint as ck
        synced = []
        monkeypatch.setattr(ck, "fsync_directory",
                            lambda path: synced.append(path))
        path = str(tmp_path / "ck.jsonl")
        result = evaluated_result()
        checkpoint = CampaignCheckpoint(path)
        checkpoint.record_test_done("synth::a", [result], PoolStats(), 1)
        os.unlink(path)  # rotation/cleanup between campaigns
        checkpoint.record_test_done("synth::b", [result], PoolStats(), 1)
        assert synced == [path, path]

    def test_fsync_directory_is_harmless_on_real_paths(self, tmp_path):
        from repro.core.checkpoint import fsync_directory
        target = tmp_path / "ck.jsonl"
        target.write_text("")
        fsync_directory(str(target))  # must simply not raise
