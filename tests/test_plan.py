"""Incremental planning and configuration sampling (repro/core/plan.py).

The headline contracts:

1. **Plans are deterministic.**  The same store contents, registry diff
   and seed produce the same plan and the same findings — across
   serial/thread/process backends and across interruption + resume.
2. **Incremental equals cold.**  Whatever the plan folds back from the
   store, the findings stay byte-identical to a full cold campaign over
   the same corpus and registry.
3. **Sampling is a pure function** of (seed, test, group, structure),
   and pairwise never costs more than the exhaustive walk.

The corpus lives under its own app name (``plansynth``) with its own
node types so the extra registrations cannot shift stage counts for the
other synth-based suites.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import threading

import pytest

from repro.cli import main as cli_main
from repro.common.configuration import ref_to_clone
from repro.common.errors import TestFailure
from repro.common.node import register_node_type
from repro.common.params import ParamRegistry
from repro.core.checkpoint import CheckpointError
from repro.core.confagent import current_agent
from repro.core.jobqueue import JobSpecError, canonical_spec
from repro.core.orchestrator import (Campaign, CampaignCancelled,
                                     CampaignConfig)
from repro.core.plan import (PLAN_NEW, PLAN_RERUN, PLAN_REUSE,
                             SAMPLE_DISSIMILARITY, SAMPLE_PAIRWISE,
                             SAMPLE_RANDOM_K, profile_key, sample_cells)
from repro.core.prerun import prerun_test
from repro.core.registry import UnitTest
from repro.core.report import app_report_to_dict, findings_projection
from repro.core.reportmd import app_report_markdown
from repro.core.store import ResultStore
from synthetic_app import SYNTH_REGISTRY, Service, SynthConfiguration

APP = "plansynth"
register_node_type(APP, "Service")
register_node_type(APP, "LeanService")
register_node_type(APP, "LeanMode")


class LeanService:
    """Reads only the safe parameters, so its profile key survives a
    synth.level mutation — true REUSE next to the Service tests, whose
    init reads every parameter."""

    node_type = "LeanService"

    def __init__(self, conf):
        agent = current_agent()
        agent.start_init(self, self.node_type)
        try:
            self.conf = ref_to_clone(conf)
            self.safe_a = self.conf.get_int("synth.safe-a")
            self.safe_b = self.conf.get_bool("synth.safe-b")
        finally:
            agent.stop_init()


class LeanMode:
    """Reads a safe parameter plus synth.mode: REUSE-keyed after a
    synth.level mutation, but coupled to the rerunning profiles through
    synth.mode's confirmation — the closure must demote it."""

    node_type = "LeanMode"

    def __init__(self, conf):
        agent = current_agent()
        agent.start_init(self, self.node_type)
        try:
            self.conf = ref_to_clone(conf)
            self.safe_a = self.conf.get_int("synth.safe-a")
            self.mode = self.conf.get_bool("synth.mode")
        finally:
            agent.stop_init()


def exchange_test(name="TestPlan.testExchange"):
    def body(ctx):
        conf = SynthConfiguration()
        first = Service(conf)
        second = Service(conf)
        first.exchange(second)
        second.exchange(first)

    return UnitTest(app=APP, name=name, fn=body)


def level_view_test(name="TestPlan.testLevelView"):
    def body(ctx):
        conf = SynthConfiguration()
        service = Service(conf)
        if conf.get_int("synth.level") != service.level:
            raise TestFailure("client and service disagree on synth.level")

    return UnitTest(app=APP, name=name, fn=body)


def lean_safe_test(name="TestPlan.testLeanSafe"):
    def body(ctx):
        node = LeanService(SynthConfiguration())
        if node.safe_a < 0:
            raise TestFailure("impossible")

    return UnitTest(app=APP, name=name, fn=body)


def lean_mode_test(name="TestPlan.testLeanMode"):
    def body(ctx):
        node = LeanMode(SynthConfiguration())
        if node.safe_a < 0:
            raise TestFailure("impossible")

    return UnitTest(app=APP, name=name, fn=body)


LEVEL_MUTATION = {"synth.level": {"candidates": (10, 2000)}}


def mutated_registry(**overrides):
    """A fresh registry with some parameter definitions replaced — the
    'operator edited one parameter' scenario.  Names are unchanged, so
    the store's corpus digest (names only) keeps serving."""
    registry = ParamRegistry("synth")
    for param in SYNTH_REGISTRY:
        fields = overrides.get(param.name)
        if fields:
            param = dataclasses.replace(param, **fields)
        registry.register(param)
    return registry


def findings(report):
    return json.dumps(findings_projection(app_report_to_dict(report)),
                      sort_keys=True)


def plan_dict(report):
    assert report.plan is not None
    return report.plan.to_dict()


def decisions_of(report):
    return {p["test"]: p["decision"] for p in plan_dict(report)["profiles"]}


def campaign(tests, store=None, registry=None, **kw):
    if store is not None:
        kw.setdefault("store_path", str(store))
    return Campaign(APP, registry if registry is not None else SYNTH_REGISTRY,
                    tests=tests, config=CampaignConfig(**kw))


# ---------------------------------------------------------------------------
# sample_cells: the pure sampling function
# ---------------------------------------------------------------------------
STRATEGIES = ("cross", "cross-swapped", "round-robin")
LAYERS = {"p.a": 2, "p.b": 3, "p.c": 1}


def cells_of(mode, seed=0, k=None, layers=LAYERS):
    return sample_cells(mode, seed, k, "t::x", "Service", STRATEGIES, layers)


class TestSampleCells:
    def test_exhaustive_mode_keeps_everything(self):
        assert cells_of(None) is None

    def test_deterministic_across_calls(self):
        for mode in (SAMPLE_PAIRWISE, SAMPLE_RANDOM_K, SAMPLE_DISSIMILARITY):
            assert cells_of(mode, seed=3, k=4) == cells_of(mode, seed=3, k=4)

    def test_seed_changes_the_draw(self):
        draws = {frozenset(cells_of(SAMPLE_RANDOM_K, seed=seed, k=3))
                 for seed in range(8)}
        assert len(draws) > 1

    def test_subset_of_the_exhaustive_walk(self):
        full = {(strategy, layer, param) for strategy in STRATEGIES
                for param in LAYERS for layer in range(LAYERS[param])}
        for mode in (SAMPLE_PAIRWISE, SAMPLE_RANDOM_K, SAMPLE_DISSIMILARITY):
            assert cells_of(mode, k=5) <= full

    def test_pairwise_covers_every_param_layer_exactly_once(self):
        covered = [(param, layer)
                   for (_, layer, param) in cells_of(SAMPLE_PAIRWISE)]
        assert sorted(covered) == sorted(
            (param, layer) for param in LAYERS
            for layer in range(LAYERS[param]))

    def test_pairwise_keeps_each_layer_in_one_strategy(self):
        # Scattering a layer's params across strategies would shatter
        # pools into singleton treatments and cost MORE than exhaustive.
        for seed in range(6):
            by_layer = {}
            for strategy, layer, _ in cells_of(SAMPLE_PAIRWISE, seed=seed):
                by_layer.setdefault(layer, set()).add(strategy)
            assert all(len(used) == 1 for used in by_layer.values())

    def test_budget_defaults_to_pairwise_and_clamps(self):
        pairwise_budget = sum(LAYERS.values())
        assert len(cells_of(SAMPLE_RANDOM_K)) == pairwise_budget
        assert len(cells_of(SAMPLE_RANDOM_K, k=10_000)) == \
            len(STRATEGIES) * pairwise_budget
        assert len(cells_of(SAMPLE_DISSIMILARITY, k=4)) == 4

    def test_dissimilarity_spreads_across_strategies(self):
        chosen = cells_of(SAMPLE_DISSIMILARITY, k=6)
        assert len({strategy for strategy, _, _ in chosen}) >= 2

    def test_empty_structure_is_empty(self):
        assert sample_cells(SAMPLE_PAIRWISE, 0, None, "t", "g",
                            STRATEGIES, {}) == set()

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            cells_of("bogus")


# ---------------------------------------------------------------------------
# profile keys: what invalidates a stored profile
# ---------------------------------------------------------------------------
class TestProfileKey:
    def test_stable_across_identical_campaigns(self):
        profile = prerun_test(exchange_test())
        assert profile_key(campaign([]), profile) == \
            profile_key(campaign([]), profile)

    def test_changes_when_a_tested_param_changes(self):
        profile = prerun_test(exchange_test())
        base = campaign([])
        mutated = campaign([], registry=mutated_registry(**LEVEL_MUTATION))
        assert profile_key(base, profile) != profile_key(mutated, profile)

    def test_ignores_changes_to_untested_params(self):
        profile = prerun_test(lean_safe_test())
        base = campaign([])
        mutated = campaign([], registry=mutated_registry(**LEVEL_MUTATION))
        assert profile_key(base, profile) == profile_key(mutated, profile)

    def test_findings_neutral_settings_do_not_shift_the_key(self):
        profile = prerun_test(exchange_test())
        plain = campaign([])
        flipped = campaign([], store="unused", exec_cache=True,
                           incremental=True)
        assert profile_key(plain, profile) == profile_key(flipped, profile)

    def test_behaviour_shaping_settings_shift_the_key(self):
        profile = prerun_test(exchange_test())
        plain = campaign([])
        assert profile_key(plain, profile) != \
            profile_key(campaign([], blacklist_threshold=4), profile)
        assert profile_key(plain, profile) != \
            profile_key(campaign([], sample=SAMPLE_PAIRWISE), profile)


# ---------------------------------------------------------------------------
# incremental campaigns
# ---------------------------------------------------------------------------
class TestIncrementalCampaign:
    def corpus(self):
        return [exchange_test(), lean_safe_test()]

    def test_incremental_requires_store(self):
        with pytest.raises(ValueError):
            campaign(self.corpus(), incremental=True).run()

    def test_warm_noop_reuses_everything(self, tmp_path):
        cold = campaign(self.corpus(), store=tmp_path / "store").run()
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        incremental=True).run()
        plan = plan_dict(warm)
        assert plan["reused"] == 2 and plan["rerun"] == 0
        assert plan["new"] == 0 and plan["demoted"] == 0
        assert plan["executions_saved"] > 0
        assert warm.executions == len(self.corpus())  # just the pre-runs
        assert warm.executions < cold.executions
        assert findings(warm) == findings(cold)

    def test_registry_mutation_splits_rerun_and_reuse(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        mutated = mutated_registry(**LEVEL_MUTATION)
        reference = campaign(self.corpus(), registry=mutated).run()
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        registry=mutated, incremental=True).run()
        decisions = decisions_of(warm)
        assert decisions["plansynth::TestPlan.testExchange"] == PLAN_RERUN
        assert decisions["plansynth::TestPlan.testLeanSafe"] == PLAN_REUSE
        assert warm.executions < reference.executions
        assert findings(warm) == findings(reference)

    def test_unseen_test_is_new_and_runs(self, tmp_path):
        campaign([exchange_test()], store=tmp_path / "store").run()
        reference = campaign(self.corpus()).run()
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        incremental=True).run()
        decisions = decisions_of(warm)
        assert decisions["plansynth::TestPlan.testExchange"] == PLAN_REUSE
        assert decisions["plansynth::TestPlan.testLeanSafe"] == PLAN_NEW
        assert warm.executions < reference.executions
        assert findings(warm) == findings(reference)

    def test_blacklist_coupling_demotes_reuse_candidates(self, tmp_path):
        corpus = lambda: [exchange_test(), lean_mode_test()]
        campaign(corpus(), store=tmp_path / "store").run()
        mutated = mutated_registry(**LEVEL_MUTATION)
        reference = campaign(corpus(), registry=mutated).run()
        warm = campaign(corpus(), store=tmp_path / "store",
                        registry=mutated, incremental=True).run()
        plan = plan_dict(warm)
        assert plan["demoted"] == 1
        decisions = decisions_of(warm)
        assert decisions["plansynth::TestPlan.testLeanMode"] == PLAN_RERUN
        reasons = {p["test"]: p["reason"]
                   for p in plan["profiles"]}
        assert "blacklist coupling" in \
            reasons["plansynth::TestPlan.testLeanMode"]
        assert findings(warm) == findings(reference)

    def test_reused_profiles_priced_zero(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        incremental=True).run()
        assert warm.cost_centers  # every profile reused: all centers zero
        for center in warm.cost_centers:
            assert center.executions == 0
            assert center.predicted_executions == 0

    def test_plan_metrics_emitted(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        incremental=True, observe=True).run()
        metrics = warm.observation.metrics
        assert metrics.total("zc_plan_profiles_total") == len(self.corpus())
        assert metrics.total("zc_plan_executions_saved_total") > 0

    def test_markdown_renders_the_plan(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        incremental=True).run()
        rendered = app_report_markdown(warm)
        assert "Campaign plan" in rendered
        assert "REUSE" in rendered
        cold = campaign(self.corpus()).run()
        assert "Campaign plan" not in app_report_markdown(cold)

    def test_plan_invariant_across_backends(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        mutated = mutated_registry(**LEVEL_MUTATION)
        backends = {
            "serial": {},
            "thread": {"workers": 2, "parallel_backend": "thread"},
            "process": {"workers": 2, "parallel_backend": "process"},
        }
        results = {}
        for name, kw in backends.items():
            dest = tmp_path / ("store-" + name)
            shutil.copytree(tmp_path / "store", dest)
            report = campaign(self.corpus(), store=dest, registry=mutated,
                              incremental=True, **kw).run()
            results[name] = (findings(report),
                             json.dumps(plan_dict(report), sort_keys=True))
        assert results["thread"] == results["serial"]
        assert results["process"] == results["serial"]


class TestInterruptionAndResume:
    def corpus(self):
        return [exchange_test(), level_view_test(), lean_safe_test()]

    def test_interrupted_campaign_resumes_the_frozen_plan(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        mutated = mutated_registry(**LEVEL_MUTATION)

        shutil.copytree(tmp_path / "store", tmp_path / "store-ref")
        reference = campaign(self.corpus(), store=tmp_path / "store-ref",
                             registry=mutated, incremental=True).run()
        assert plan_dict(reference)["rerun"] == 2  # both Service profiles

        # Interrupt after the REUSE fold and the first fresh profile have
        # committed: the store now holds a fresh record for that profile,
        # so a *replan* on resume would reclassify it REUSE — only the
        # journaled plan keeps the report identical to `reference`.
        shutil.copytree(tmp_path / "store", tmp_path / "store-int")
        checkpoint = str(tmp_path / "ck.jsonl")
        cancel = threading.Event()
        commits = []

        def hook(snapshot):
            commits.append(snapshot)
            if len(commits) >= 2:
                cancel.set()

        with pytest.raises(CampaignCancelled):
            campaign(self.corpus(), store=tmp_path / "store-int",
                     registry=mutated, incremental=True,
                     checkpoint_path=checkpoint, cancel_event=cancel,
                     progress_hook=hook).run()

        resumed = campaign(self.corpus(), store=tmp_path / "store-int",
                           registry=mutated, incremental=True,
                           checkpoint_path=checkpoint).run()
        assert plan_dict(resumed) == plan_dict(reference)
        assert findings(resumed) == findings(reference)

        # After the resumed run completes, the store is fully warm: a
        # fresh plan (new journal) reuses everything.
        warm = campaign(self.corpus(), store=tmp_path / "store-int",
                        registry=mutated, incremental=True).run()
        assert plan_dict(warm)["reused"] == len(self.corpus())

    def test_resume_refuses_changed_plan_settings(self, tmp_path):
        campaign(self.corpus(), store=tmp_path / "store").run()
        checkpoint = str(tmp_path / "ck.jsonl")
        campaign(self.corpus(), store=tmp_path / "store",
                 incremental=True, checkpoint_path=checkpoint).run()
        with pytest.raises(CheckpointError):
            campaign(self.corpus(), store=tmp_path / "store",
                     incremental=True, sample=SAMPLE_PAIRWISE,
                     checkpoint_path=checkpoint).run()


# ---------------------------------------------------------------------------
# sampled campaigns
# ---------------------------------------------------------------------------
class TestSampledCampaigns:
    def corpus(self):
        return [exchange_test(), level_view_test(), lean_safe_test()]

    def test_unknown_mode_refused(self):
        with pytest.raises(ValueError):
            campaign(self.corpus(), sample="bogus").run()

    def test_pairwise_never_costs_more_and_keeps_the_findings(self):
        full = campaign(self.corpus()).run()
        sampled = campaign(self.corpus(), sample=SAMPLE_PAIRWISE).run()
        assert sampled.executions <= full.executions
        assert {v.param for v in sampled.verdicts} == \
            {v.param for v in full.verdicts}

    def test_sampled_campaigns_are_deterministic(self):
        first = campaign(self.corpus(), sample=SAMPLE_RANDOM_K,
                         sample_k=3, sample_seed=5).run()
        second = campaign(self.corpus(), sample=SAMPLE_RANDOM_K,
                          sample_k=3, sample_seed=5).run()
        assert findings(first) == findings(second)

    def test_small_budget_reduces_executions(self):
        full = campaign(self.corpus()).run()
        thinned = campaign(self.corpus(), sample=SAMPLE_RANDOM_K,
                           sample_k=1).run()
        assert thinned.executions < full.executions

    def test_sampling_settings_partition_the_store(self, tmp_path):
        # A profile stored by an exhaustive campaign is never reused by a
        # sampled one: the sampling settings are in the plan digest.
        campaign(self.corpus(), store=tmp_path / "store").run()
        sampled = campaign(self.corpus(), store=tmp_path / "store",
                           sample=SAMPLE_PAIRWISE, incremental=True).run()
        plan = plan_dict(sampled)
        assert plan["reused"] == 0
        assert plan["rerun"] == len(self.corpus())
        # ... but a second identically-sampled campaign reuses fully.
        warm = campaign(self.corpus(), store=tmp_path / "store",
                        sample=SAMPLE_PAIRWISE, incremental=True).run()
        assert plan_dict(warm)["reused"] == len(self.corpus())
        assert findings(warm) == findings(sampled)


# ---------------------------------------------------------------------------
# store profile records
# ---------------------------------------------------------------------------
class TestStoreProfileRecords:
    def test_round_trip_newest_wins_and_gc(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        store.open(APP, 7)
        assert store.append_profile("k1", "t::a", {"executions": 9},
                                    confirmed=("p.x",))
        assert store.append_profile("k1", "t::a", {"executions": 11},
                                    confirmed=("p.y",))
        assert store.append_profile("k2", "t::b", {"executions": 3})
        store.close()

        fresh = ResultStore(str(tmp_path / "store"))
        fresh.open(APP, 7)
        assert fresh.stats.profiles_loaded == 3
        assert fresh.lookup_profile("k1")["record"]["executions"] == 11
        assert fresh.profile_for_test("t::a")["confirmed"] == ["p.y"]
        assert fresh.confirmed_params() == {"p.y"}
        assert fresh.lookup_profile("missing") is None
        assert fresh.profile_for_test("t::missing") is None
        fresh.close()

        result = ResultStore(str(tmp_path / "store")).gc()
        assert result["profiles"] == 2  # newest k1 + k2; duplicate dropped

        compacted = ResultStore(str(tmp_path / "store"))
        compacted.open(APP, 7)
        assert compacted.stats.profiles_loaded == 2
        assert compacted.lookup_profile("k1")["record"]["executions"] == 11
        compacted.close()


# ---------------------------------------------------------------------------
# CLI / service wiring
# ---------------------------------------------------------------------------
class TestWiring:
    def test_cli_incremental_requires_store(self, capsys):
        assert cli_main(["campaign", "hdfs", "--incremental"]) == 2
        assert "--incremental requires --store" in capsys.readouterr().err

    def test_jobspec_incremental_requires_store(self):
        with pytest.raises(JobSpecError):
            canonical_spec({"app": "flink", "incremental": True,
                            "store": False})

    def test_jobspec_sample_choice_is_nullable(self):
        assert canonical_spec({"app": "flink"})["sample"] is None
        assert canonical_spec({"app": "flink", "sample": None})["sample"] \
            is None
        spec = canonical_spec({"app": "flink", "sample": "pairwise",
                               "sample_k": 4, "sample_seed": 9})
        assert spec["sample"] == "pairwise"
        assert spec["sample_k"] == 4 and spec["sample_seed"] == 9
        with pytest.raises(JobSpecError):
            canonical_spec({"app": "flink", "sample": "bogus"})
