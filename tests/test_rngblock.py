"""Batched RNG draws must consume the seed stream bit-for-bit like the
per-call loop — seeds are part of the findings contract."""

from __future__ import annotations

import random

import pytest

import repro.perf as perf
from repro.common.rngblock import randrange_block
from repro.core.runner import _TrackedRandom

BOUNDS = (1, 2, 3, 30, 40, 100, 120, 128, 256, 1000, 7919)


class TestStreamEquality:
    @pytest.mark.parametrize("bound", BOUNDS)
    def test_per_seed_stream_identical_fast_vs_legacy(self, bound):
        for seed in range(12):
            previous = perf.set_fast_path(False)
            try:
                legacy = randrange_block(random.Random(seed), bound, 257)
                perf.set_fast_path(True)
                fast = randrange_block(random.Random(seed), bound, 257)
            finally:
                perf.set_fast_path(previous)
            assert fast == legacy

    @pytest.mark.parametrize("bound", (256, 1000))
    def test_generator_position_identical_after_block(self, bound):
        """Draws *after* a block must match too: the block consumed
        exactly the same amount of the underlying stream."""
        previous = perf.set_fast_path(False)
        try:
            rng = random.Random(42)
            randrange_block(rng, bound, 100)
            legacy_tail = [rng.randrange(bound) for _ in range(20)]
            perf.set_fast_path(True)
            rng = random.Random(42)
            randrange_block(rng, bound, 100)
            fast_tail = [rng.randrange(bound) for _ in range(20)]
        finally:
            perf.set_fast_path(previous)
        assert fast_tail == legacy_tail

    def test_matches_plain_randrange_loop(self):
        rng = random.Random(7)
        expected = [rng.randrange(100) for _ in range(500)]
        assert randrange_block(random.Random(7), 100, 500) == expected

    def test_tracked_random_marks_used(self):
        rng = _TrackedRandom(3)
        assert not rng.used
        randrange_block(rng, 256, 16)
        assert rng.used

    def test_tracked_random_stream_identical(self):
        rng = random.Random(9)
        expected = [rng.randrange(256) for _ in range(200)]
        assert randrange_block(_TrackedRandom(9), 256, 200) == expected

    def test_empty_and_invalid(self):
        assert randrange_block(random.Random(1), 10, 0) == []
        with pytest.raises(ValueError):
            randrange_block(random.Random(1), 0, 4)
