"""Unit tests for the WebHDFS REST surface."""

from __future__ import annotations

import pytest

from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.apps.hdfs.webhdfs import WebHdfsClient
from repro.common.errors import ConnectError
from repro.core.confagent import ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


@pytest.fixture()
def cluster():
    conf = HdfsConfiguration()
    mini = MiniDFSCluster(conf, num_datanodes=1)
    mini.start()
    yield conf, mini
    mini.shutdown()


class TestOperations:
    def test_mkdirs_and_list(self, cluster):
        conf, mini = cluster
        web = WebHdfsClient(conf, mini.namenode)
        assert web.mkdirs("/api/a")
        assert web.mkdirs("/api/b")
        assert web.list_status("/api") == ["a", "b"]

    def test_exists(self, cluster):
        conf, mini = cluster
        web = WebHdfsClient(conf, mini.namenode)
        web.mkdirs("/api/present")
        assert web.exists("/api/present")
        assert not web.exists("/api/absent")

    def test_sees_files_created_through_rpc(self, cluster):
        conf, mini = cluster
        DFSClient(conf, mini).write_file("/mixed/file", b"z" * 16,
                                         replication=1)
        web = WebHdfsClient(conf, mini.namenode)
        assert web.list_status("/mixed") == ["file"]

    def test_namenode_side_limits_apply(self, cluster):
        conf, mini = cluster
        from repro.common.errors import LimitExceededError
        web = WebHdfsClient(conf, mini.namenode)
        mini.namenode.conf.set("dfs.namenode.fs-limits.max-component-length",
                               4)
        with pytest.raises(LimitExceededError):
            web.mkdirs("/toolongname")


class TestPolicyMismatch:
    def test_https_only_namenode_refuses_http_client(self):
        assignment = HeteroAssignment((ParamAssignment(
            param="dfs.http.policy", group="NameNode",
            group_values=("HTTPS_ONLY",), other_value="HTTP_ONLY"),))
        with ConfAgent(assignment=assignment):
            conf = HdfsConfiguration()
            mini = MiniDFSCluster(conf, num_datanodes=1)
            mini.start()
            web = WebHdfsClient(conf, mini.namenode)
            with pytest.raises(ConnectError):
                web.mkdirs("/never")
            mini.shutdown()

    def test_homogeneous_https_works(self):
        assignment = HeteroAssignment((ParamAssignment(
            param="dfs.http.policy", group="NameNode",
            group_values=("HTTPS_ONLY",), other_value="HTTPS_ONLY"),))
        with ConfAgent(assignment=assignment):
            conf = HdfsConfiguration()
            mini = MiniDFSCluster(conf, num_datanodes=1)
            mini.start()
            web = WebHdfsClient(conf, mini.namenode)
            assert web.mkdirs("/secure")
            mini.shutdown()
