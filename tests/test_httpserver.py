"""Unit tests for http/https policy endpoints."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, ConnectError
from repro.common.httpserver import (HTTP_POLICIES, HttpServer, client_scheme,
                                     http_get, schemes_served)


class TestPolicyTables:
    def test_http_only(self):
        assert schemes_served("HTTP_ONLY") == ("http",)
        assert client_scheme("HTTP_ONLY") == "http"

    def test_https_only(self):
        assert schemes_served("HTTPS_ONLY") == ("https",)
        assert client_scheme("HTTPS_ONLY") == "https"

    def test_both(self):
        assert schemes_served("HTTP_AND_HTTPS") == ("http", "https")
        assert client_scheme("HTTP_AND_HTTPS") == "http"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            schemes_served("FTP_ONLY")
        with pytest.raises(ConfigurationError):
            client_scheme("FTP_ONLY")


class TestServer:
    def make(self, policy):
        server = HttpServer("TestDaemon", policy)
        server.route("/status", lambda: {"ok": True})
        return server

    def test_served_scheme_works(self):
        server = self.make("HTTP_ONLY")
        assert server.handle("http", "/status") == {"ok": True}
        assert server.requests_served == [("http", "/status")]

    def test_unserved_scheme_refused(self):
        server = self.make("HTTPS_ONLY")
        with pytest.raises(ConnectError):
            server.handle("http", "/status")

    def test_unknown_route_404(self):
        server = self.make("HTTP_ONLY")
        with pytest.raises(ConnectError):
            server.handle("http", "/nope")

    def test_handler_arguments_forwarded(self):
        server = HttpServer("D", "HTTP_ONLY")
        server.route("/echo", lambda x, y=0: (x, y))
        assert server.handle("http", "/echo", 1, y=2) == (1, 2)

    @given(st.sampled_from(HTTP_POLICIES), st.sampled_from(HTTP_POLICIES))
    @settings(max_examples=20, deadline=None)
    def test_client_server_policy_matrix(self, client_policy, server_policy):
        """The Table-3 dfs.http.policy / yarn.http.policy failure matrix:
        a client fails exactly when the scheme its policy picks is not
        among the schemes the server's policy binds."""
        server = self.make(server_policy)
        should_work = client_scheme(client_policy) in schemes_served(server_policy)
        if should_work:
            assert http_get(server, client_policy, "/status") == {"ok": True}
        else:
            with pytest.raises(ConnectError):
                http_get(server, client_policy, "/status")

    def test_homogeneous_policies_always_work(self):
        for policy in HTTP_POLICIES:
            assert http_get(self.make(policy), policy, "/status") == {"ok": True}
