"""Integration tests for the Hadoop Tools substrate (DistCp, Archive)."""

from __future__ import annotations

import pytest

from repro.apps.hadooptools import DistCp, HadoopArchive
from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.common import errors
from repro.core.confagent import UNIT_TEST, ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def agent(param, group, group_value, other_value):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group=group, group_values=(group_value,),
        other_value=other_value),)))


def seeded_cluster(conf, files=3):
    cluster = MiniDFSCluster(conf, num_datanodes=2)
    cluster.start()
    dfs = DFSClient(conf, cluster)
    payloads = {}
    for index in range(files):
        name = "f%02d" % index
        payloads[name] = ("payload-%d " % index).encode() * 10
        dfs.write_file("/src/%s" % name, payloads[name], replication=1)
    return cluster, dfs, payloads


class TestDistCp:
    def test_copy_round_trip(self):
        conf = HdfsConfiguration()
        cluster, dfs, payloads = seeded_cluster(conf)
        copied = DistCp(conf, cluster).run("/src", "/dst")
        assert len(copied) == 3
        for name, payload in payloads.items():
            assert dfs.read_file("/dst/%s" % name) == payload
        cluster.shutdown()

    def test_short_tool_timeout_vs_default_server(self):
        """The Table-3 ipc.client.rpc-timeout.ms failure: the tool's 1s
        deadline elapses while the NameNode paces keepalives at 60s."""
        with agent("ipc.client.rpc-timeout.ms", UNIT_TEST, 1000, 0):
            conf = HdfsConfiguration()
            cluster, _, _ = seeded_cluster(conf)
            with pytest.raises(errors.SocketTimeout):
                DistCp(conf, cluster).run("/src", "/dst")
            cluster.shutdown()

    def test_matching_short_timeouts_pass(self):
        with agent("ipc.client.rpc-timeout.ms", UNIT_TEST, 1000, 1000):
            conf = HdfsConfiguration()
            cluster, _, _ = seeded_cluster(conf)
            assert len(DistCp(conf, cluster).run("/src", "/dst")) == 3
            cluster.shutdown()


class TestHadoopArchive:
    def test_archive_round_trip(self):
        conf = HdfsConfiguration()
        cluster, _, payloads = seeded_cluster(conf, files=4)
        tool = HadoopArchive(conf, cluster)
        index = tool.archive("/src", "/out.har")
        assert set(index) == set(payloads)
        for name, payload in payloads.items():
            assert tool.extract("/out.har", index, name) == payload
        cluster.shutdown()

    def test_corrupted_index_detected(self):
        conf = HdfsConfiguration()
        cluster, _, _ = seeded_cluster(conf, files=2)
        tool = HadoopArchive(conf, cluster)
        index = tool.archive("/src", "/out.har")
        index["f00"] = dict(index["f00"], crc=0xDEADBEEF)
        with pytest.raises(errors.ChecksumError):
            tool.extract("/out.har", index, "f00")
        cluster.shutdown()
