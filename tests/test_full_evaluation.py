"""End-to-end evaluation tests: the paper's §7 results must reproduce.

These all share one cached full campaign (the ``full_report`` session
fixture, ~20s) and assert the evaluation's headline numbers and shapes.
"""

from __future__ import annotations

import pytest

from repro.apps import catalog
from repro.core.report import (render_stage_counts, render_summary,
                               render_unsafe_params)
from repro.core.triage import (FP_PRIVATE_ONLY, FP_SHARED_IPC,
                               FP_STRICT_ASSERTION, FP_UNREALISTIC)


class TestHeadlineNumbers:
    def test_41_true_problems(self, full_report):
        assert len(full_report.unique_true_problems()) == 41

    def test_16_false_positives(self, full_report):
        assert len(full_report.unique_false_positives()) == 16

    def test_57_reported(self, full_report):
        assert len(full_report.unique_verdicts()) == 57

    def test_table3_section_split(self, full_report):
        sections = {}
        for verdict in full_report.unique_true_problems():
            section = catalog.section_for_param(verdict.param)
            sections[section] = sections.get(section, 0) + 1
        assert sections == {"Flink": 3, "Hadoop Common": 2, "HBase": 2,
                            "HDFS": 21, "MapReduce": 8, "Yarn": 5}

    def test_exact_table3_parameters(self, full_report):
        found = {v.param for v in full_report.unique_true_problems()}
        expected = set()
        for app in catalog.APP_NAMES:
            expected |= set(catalog.spec_for(app).expected_unsafe)
        assert found == expected

    def test_seven_user_visible_inconsistency_true_problems(self, full_report):
        """§7.1: of the 16 parameters exposing config/behaviour
        inconsistencies, 'this principle separates them into 7 true
        problems and 9 false positives' — the 7 observable through
        public APIs."""
        inconsistency = [v for v in full_report.unique_true_problems()
                         if v.category == "user-visible inconsistency"]
        assert len(inconsistency) == 7

    def test_category_families_present(self, full_report):
        """§7.1's discussion groups: wire formats, heartbeats, max
        limits, task counts, and the 'others' grab bag all appear."""
        categories = {v.category for v in full_report.unique_true_problems()}
        assert categories == {
            "compression/encryption/authentication/transport",
            "heartbeat-related", "max-limit-related", "counts of tasks",
            "user-visible inconsistency", "others"}


class TestFalsePositiveCauses:
    def test_every_fp_cause_from_the_paper_appears(self, full_report):
        reasons = {v.fp_reason for v in full_report.unique_false_positives()}
        assert reasons == {FP_UNREALISTIC, FP_SHARED_IPC,
                           FP_STRICT_ASSERTION, FP_PRIVATE_ONLY}

    def test_four_shared_ipc_false_positives(self, full_report):
        ipc = [v for v in full_report.unique_false_positives()
               if v.fp_reason == FP_SHARED_IPC]
        assert len(ipc) == 4

    def test_nine_private_only_false_positives(self, full_report):
        """§7.1: of the 16 inconsistency-flavoured parameters, 9 are only
        observable through private functions and are false positives."""
        private = [v for v in full_report.unique_false_positives()
                   if v.fp_reason == FP_PRIVATE_ONLY]
        assert len(private) == 9

    def test_no_expected_fp_classified_as_true(self, full_report):
        expected_fp = set()
        for app in catalog.APP_NAMES:
            expected_fp |= set(catalog.spec_for(app).expected_false_positives)
        found_true = {v.param for v in full_report.unique_true_problems()}
        assert not (expected_fp & found_true)


class TestPerAppCampaigns:
    @pytest.mark.parametrize("app", catalog.APP_NAMES)
    def test_app_finds_its_expected_unsafe_params(self, full_report, app):
        report = full_report.app(app)
        found = {v.param for v in report.true_problems}
        assert set(catalog.spec_for(app).expected_unsafe) <= found

    @pytest.mark.parametrize("app", catalog.APP_NAMES)
    def test_reduction_per_app(self, full_report, app):
        counts = full_report.app(app).stage_counts
        assert counts.original > counts.after_prerun
        assert counts.after_prerun >= counts.after_uncertainty
        assert counts.after_uncertainty > counts.after_pooling
        # the paper reports 2-4 orders of magnitude end to end
        assert counts.reduction_orders() >= 1.0

    def test_hdfs_uncertainty_exclusions_exist(self, full_report):
        counts = full_report.app("hdfs").stage_counts
        assert counts.after_uncertainty < counts.after_prerun

    def test_blacklist_catches_wide_failures(self, full_report):
        assert "hadoop.rpc.protection" in full_report.app("hdfs").blacklisted


class TestHypothesisTestingEffects:
    def test_flaky_instances_filtered(self, full_report):
        filtered = sum(a.hypothesis_stats.filtered_as_flaky
                       for a in full_report.apps)
        suspicious = sum(a.hypothesis_stats.suspicious_first_trial
                         for a in full_report.apps)
        assert filtered > 0
        assert suspicious > filtered

    def test_no_flaky_test_yields_a_true_problem(self, full_report):
        for app_report in full_report.apps:
            for verdict in app_report.true_problems:
                results = app_report.results_by_param.get(verdict.param, [])
                realistic = [r for r in results
                             if r.instance.test.realistic
                             and not r.instance.test.strict_assertion
                             and r.instance.test.observability == "public"]
                assert all(r.tally.significant() for r in realistic
                           if r.tally is not None)


class TestMachineTimeAndRendering:
    def test_machine_time_reported(self, full_report):
        assert full_report.total_machine_hours > 0

    def test_render_unsafe_params_lists_41(self, full_report):
        text = render_unsafe_params(full_report)
        assert "dfs.heartbeat.interval" in text
        assert "akka.ssl.enabled" in text

    def test_render_summary(self, full_report):
        text = render_summary(full_report)
        assert "true problems            : 41" in text
        assert "false positives          : 16" in text

    def test_render_stage_counts_has_all_apps(self, full_report):
        text = render_stage_counts(full_report.apps)
        for app in catalog.APP_NAMES:
            assert app in text
