"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf as perf
from repro.common.simulation import (COMPACT_MIN_CANCELLED, Event,
                                     PeriodicTask, Process, SimulationError,
                                     Simulator, kernel_stats_snapshot)


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callback_runs_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_arguments_are_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        sim.run()
        assert seen == ["x"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        seen = []
        for index in range(10):
            sim.schedule(3.0, seen.append, index)
        sim.run()
        assert seen == list(range(10))

    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(1.0, seen.append, "no")
        timer.cancel()
        sim.run()
        assert seen == []
        assert timer.cancelled

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, seen.append, "late")
        sim.run_until(5.0)
        assert seen == []
        assert sim.now == 5.0
        sim.run_until(10.0)
        assert seen == ["late"]

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.run_for(2.0)
        sim.run_for(3.0)
        assert sim.now == 5.0

    def test_pending_events_counts_uncancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events() == 1
        assert not keep.cancelled

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestEvents:
    def test_succeed_carries_value(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(42)
        assert event.triggered and event.ok
        assert event.value == 42

    def test_fail_carries_exception(self):
        sim = Simulator()
        event = sim.event()
        event.fail(RuntimeError("boom"))
        assert event.triggered and not event.ok
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_timeout_event_fires_after_delay(self):
        sim = Simulator()
        event = sim.timeout(7.0, value="done")
        sim.run()
        assert event.value == "done"
        assert sim.now == 7.0


class TestProcesses:
    def test_process_sleeps_on_numeric_yield(self):
        sim = Simulator()

        def body():
            yield 3.0
            return sim.now

        assert sim.run_process(body()) == 3.0

    def test_process_waits_on_event(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(4.0, event.succeed, "payload")

        def body():
            value = yield event
            return (sim.now, value)

        assert sim.run_process(body()) == (4.0, "payload")

    def test_process_joins_another_process(self):
        sim = Simulator()

        def child():
            yield 2.0
            return "child-result"

        def parent():
            value = yield sim.spawn(child())
            return value

        assert sim.run_process(parent()) == "child-result"

    def test_failed_event_raises_inside_process(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(1.0, event.fail, ValueError("nope"))

        def body():
            yield event

        with pytest.raises(ValueError):
            sim.run_process(body())

    def test_child_exception_propagates_to_joiner(self):
        sim = Simulator()

        def child():
            yield 1.0
            raise KeyError("lost")

        def parent():
            yield sim.spawn(child())

        with pytest.raises(KeyError):
            sim.run_process(parent())

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def body():
            yield "not a valid target"

        with pytest.raises(SimulationError):
            sim.run_process(body())

    def test_unobserved_crash_recorded_and_reraised(self):
        sim = Simulator()

        def body():
            yield 1.0
            raise RuntimeError("background failure")

        sim.spawn(body())
        sim.run()
        assert len(sim.crashed_processes) == 1
        with pytest.raises(RuntimeError):
            sim.raise_crashes()

    def test_result_before_done_rejected(self):
        sim = Simulator()

        def body():
            yield 5.0

        process = sim.spawn(body())
        with pytest.raises(SimulationError):
            _ = process.result

    def test_run_process_respects_max_time(self):
        sim = Simulator()

        def body():
            yield 100.0

        with pytest.raises(SimulationError):
            sim.run_process(body(), max_time=10.0)

    def test_many_processes_interleave_deterministically(self):
        sim = Simulator()
        log = []

        def worker(name, period):
            for _ in range(3):
                yield period
                log.append((sim.now, name))

        sim.spawn(worker("a", 1.0))
        sim.spawn(worker("b", 1.5))
        sim.run()
        # at t=3.0 both are due; b's timer was armed earlier (at t=1.5)
        # so it fires first — same-time ties resolve by scheduling order.
        assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"),
                       (3.0, "a"), (4.5, "b")]


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, interval_fn=lambda: 2.0,
                     callback=lambda: ticks.append(sim.now))
        sim.run_until(7.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_interval_reread_at_rearm(self):
        """The interval function is re-read when each tick re-arms the
        timer, like a daemon that sleeps ``conf.get(...)`` per loop —
        a reconfiguration takes effect after the already-armed tick."""
        sim = Simulator()
        ticks = []
        interval = {"value": 1.0}
        PeriodicTask(sim, interval_fn=lambda: interval["value"],
                     callback=lambda: ticks.append(sim.now))
        sim.run_until(2.0)
        interval["value"] = 5.0  # the t=3.0 tick is already armed
        sim.run_until(12.0)
        assert ticks == [1.0, 2.0, 3.0, 8.0]

    def test_stop_prevents_future_ticks(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, interval_fn=lambda: 1.0,
                            callback=lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        task.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_start_delay_overrides_first_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, interval_fn=lambda: 10.0,
                     callback=lambda: ticks.append(sim.now), start_delay=1.0)
        sim.run_until(12.0)
        assert ticks == [1.0, 11.0]

    def test_callback_may_stop_its_own_task(self):
        sim = Simulator()
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                holder["task"].stop()

        holder["task"] = PeriodicTask(sim, interval_fn=lambda: 1.0,
                                      callback=tick)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]


# ---------------------------------------------------------------------------
# fast-path kernel: heap compaction, O(1) accounting, teardown safety
# ---------------------------------------------------------------------------
class TestHeapCompaction:
    def test_cancel_storm_compacts_the_heap(self):
        sim = Simulator()
        victims = [sim.schedule(100.0, int)
                   for _ in range(COMPACT_MIN_CANCELLED * 2)]
        for _ in range(3):
            sim.schedule(50.0, int)
        _, compactions_before, _ = kernel_stats_snapshot()
        for timer in victims:
            timer.cancel()
        _, compactions_after, _ = kernel_stats_snapshot()
        assert compactions_after > compactions_before
        # the sweep physically removed dead entries
        assert len(sim._heap) < len(victims)
        assert sim.pending_events() == 3

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        timers = [sim.schedule(10.0, int) for _ in range(10)]
        _, compactions_before, _ = kernel_stats_snapshot()
        for timer in timers:
            timer.cancel()
        _, compactions_after, _ = kernel_stats_snapshot()
        assert compactions_after == compactions_before
        assert len(sim._heap) == 10  # lazy deletion still applies
        assert sim.pending_events() == 0

    def test_compaction_mid_run_preserves_event_order(self):
        """A callback's cancel storm compacts the heap while run() /
        run_until() hold a local reference to it; remaining events must
        still fire, in order."""
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(2.0 + i, order.append, i)
        victims = [sim.schedule(100.0, int) for _ in range(200)]

        def slaughter():
            for timer in victims:
                timer.cancel()

        sim.schedule(1.0, slaughter)
        _, compactions_before, _ = kernel_stats_snapshot()
        sim.run_until(1.5)  # compaction races the bounded run
        _, compactions_after, _ = kernel_stats_snapshot()
        assert compactions_after > compactions_before
        assert sim.pending_events() == 5
        sim.run()
        assert order == [0, 1, 2, 3, 4]
        assert sim.pending_events() == 0

    def test_event_order_identical_fast_and_legacy(self):
        def workload():
            sim = Simulator()
            log = []
            timers = {}
            for i in range(300):
                timers[i] = sim.schedule(float(i % 11), log.append, i)

            def kill():
                for i in range(0, 300, 2):
                    timers[i].cancel()

            sim.schedule(0.5, kill)
            sim.run()
            return log

        previous = perf.set_fast_path(True)
        try:
            fast = workload()
            perf.set_fast_path(False)
            legacy = workload()
        finally:
            perf.set_fast_path(previous)
        assert fast == legacy


class TestCancelAccounting:
    def test_double_cancel_counts_once(self):
        sim = Simulator()
        timer = sim.schedule(5.0, int)
        sim.schedule(6.0, int)
        cancelled_before, _, _ = kernel_stats_snapshot()
        timer.cancel()
        timer.cancel()
        cancelled_after, _, _ = kernel_stats_snapshot()
        assert cancelled_after - cancelled_before == 1
        assert sim.pending_events() == 1

    def test_cancel_after_fire_is_inert(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run_until(1.5)
        assert fired == [1]
        timer.cancel()  # handle kept across the firing
        timer.cancel()
        assert sim.pending_events() == 1  # live count not corrupted
        sim.run()
        assert fired == [1, 2]
        assert sim.pending_events() == 0

    def test_cancel_after_simulator_teardown(self):
        sim = Simulator()
        fired_handle = sim.schedule(1.0, int)
        pending_handle = sim.schedule(50.0, int)
        sim.run_until(2.0)
        del sim
        fired_handle.cancel()    # popped: detached, pure flag write
        pending_handle.cancel()  # un-popped: safe accounting, no error
        assert fired_handle.cancelled
        assert pending_handle.cancelled

    def test_pending_events_matches_legacy_scan(self):
        sim = Simulator()
        timers = [sim.schedule(float(i), int) for i in range(40)]
        for timer in timers[::4]:
            timer.cancel()
        scan = sum(1 for _, _, t in sim._heap if not t.cancelled)
        assert sim.pending_events() == scan
        previous = perf.set_fast_path(False)
        try:
            assert sim.pending_events() == scan
        finally:
            perf.set_fast_path(previous)
        sim.run_until(10.5)
        scan = sum(1 for _, _, t in sim._heap if not t.cancelled)
        assert sim.pending_events() == scan
