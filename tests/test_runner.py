"""Unit tests for TestRunner: Definition 3.1 + multi-trial confirmation."""

from __future__ import annotations

import pytest

from repro.core.runner import (BASELINE_FAIL, CONFIRMED_UNSAFE,
                               FLAKY_DISMISSED, PASS, TestRunner, stable_seed)
from repro.core.testgen import (CROSS, HeteroAssignment, TestGenerator,
                                TestInstance)
from synthetic_app import (SYNTH_REGISTRY, broken_baseline_test,
                           safe_only_test, two_service_test)


def make_instance(test, param_name, pair=None, strategy=CROSS,
                  group="Service"):
    generator = TestGenerator(SYNTH_REGISTRY)
    param = SYNTH_REGISTRY.get(param_name)
    pair = pair or generator.value_pairs(param)[0]
    assignment = HeteroAssignment(
        (generator.assignment(param, group, strategy, pair),))
    return TestInstance(test=test, group=group, strategy=strategy,
                        assignment=assignment)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, "x") == stable_seed("a", 1, "x")

    def test_distinct_inputs_differ(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)


class TestVerdicts:
    def test_safe_param_passes(self):
        runner = TestRunner()
        result = runner.evaluate(make_instance(two_service_test(),
                                               "synth.safe-a"))
        assert result.verdict == PASS
        assert result.executions == 3  # hetero + two homo sides

    def test_unsafe_param_confirmed(self):
        runner = TestRunner()
        result = runner.evaluate(make_instance(two_service_test(),
                                               "synth.mode",
                                               strategy="round-robin"))
        assert result.verdict == CONFIRMED_UNSAFE
        assert result.tally is not None
        assert result.tally.significant(runner.alpha)
        assert "mismatch" in result.hetero_error

    def test_cross_strategy_on_symmetric_peers_passes(self):
        # both Services get the same value under CROSS; only the unit test
        # differs, and the synthetic exchange only compares the two peers.
        runner = TestRunner()
        result = runner.evaluate(make_instance(two_service_test(),
                                               "synth.mode", strategy=CROSS))
        assert result.verdict == PASS

    def test_broken_baseline_not_reported(self):
        runner = TestRunner()
        result = runner.evaluate(make_instance(broken_baseline_test(),
                                               "synth.mode",
                                               strategy="round-robin"))
        assert result.verdict == BASELINE_FAIL

    def test_flaky_test_eventually_dismissed_or_passes(self):
        """A 60%-flaky test cannot produce a significant hetero-vs-homo
        separation; whatever the first trial shows, the verdict must not
        be CONFIRMED_UNSAFE for a safe parameter."""
        runner = TestRunner()
        verdicts = set()
        for index in range(6):
            test = two_service_test(name="TestSynth.testFlaky%d" % index,
                                    flaky_rate=0.6, flaky=True)
            result = runner.evaluate(make_instance(test, "synth.safe-a"))
            verdicts.add(result.verdict)
        assert CONFIRMED_UNSAFE not in verdicts
        assert verdicts <= {PASS, BASELINE_FAIL, FLAKY_DISMISSED}

    def test_unsafe_param_on_flaky_test_still_confirmed(self):
        """Mild flakiness must not hide a deterministic hetero failure:
        homo trials flake occasionally but the Fisher tally separates."""
        runner = TestRunner(max_trials=60)
        test = two_service_test(name="TestSynth.testFlakyUnsafe",
                                flaky_rate=0.15, flaky=True)
        result = runner.evaluate(make_instance(test, "synth.mode",
                                               strategy="round-robin"))
        # the hetero side always fails (mode mismatch precedes the coin
        # flip), so significance is reachable despite homo noise
        assert result.verdict in (CONFIRMED_UNSAFE, BASELINE_FAIL)

    def test_machine_time_accounting(self):
        runner = TestRunner(run_cost_s=60.0)
        runner.evaluate(make_instance(two_service_test(), "synth.safe-a"))
        assert runner.machine_time_s == runner.executions * 60.0
        assert runner.executions >= 3


class TestFirstTrial:
    def test_first_trial_runs_all_homo_sides(self):
        runner = TestRunner()
        instance = make_instance(two_service_test(), "synth.level")
        hetero, homos = runner.first_trial(instance.test, instance.assignment)
        assert len(homos) == instance.assignment.sides() == 2
        assert all(h.ok for h in homos)
