"""Tests for the Hadoop Common registry and its consumers."""

from __future__ import annotations

import pytest

from repro.apps.commonlib import COMMON_REGISTRY, common_ground_truth
from repro.common.ipc import IPC_SHARED_PARAMS


class TestCommonRegistry:
    def test_table3_params_present(self):
        assert "hadoop.rpc.protection" in COMMON_REGISTRY
        assert "ipc.client.rpc-timeout.ms" in COMMON_REGISTRY

    def test_ipc_fp_params_registered(self):
        for name in IPC_SHARED_PARAMS:
            assert name in COMMON_REGISTRY, name

    def test_protection_enum_matches_sasl_levels(self):
        from repro.common.wire import SASL_LEVELS
        param = COMMON_REGISTRY.get("hadoop.rpc.protection")
        assert param.values == SASL_LEVELS

    def test_rpc_timeout_candidates_include_disabled(self):
        param = COMMON_REGISTRY.get("ipc.client.rpc-timeout.ms")
        assert 0 in param.candidate_values()

    def test_every_param_has_description(self):
        for param in COMMON_REGISTRY:
            assert param.description, param.name

    def test_ground_truth_covers_both_lists(self):
        truth = common_ground_truth()
        assert set(truth["unsafe"]) == {"hadoop.rpc.protection",
                                        "ipc.client.rpc-timeout.ms"}
        assert set(truth["false_positives"]) == set(IPC_SHARED_PARAMS)


class TestHadoopAppsSeeCommonParams:
    @pytest.mark.parametrize("module,attr", [
        ("repro.apps.hdfs.params", "HDFS_FULL_REGISTRY"),
        ("repro.apps.mapreduce.params", "MAPREDUCE_FULL_REGISTRY"),
        ("repro.apps.yarn.params", "YARN_FULL_REGISTRY"),
        ("repro.apps.hbase.params", "HBASE_FULL_REGISTRY"),
    ])
    def test_merged_registry_contains_common(self, module, attr):
        import importlib
        registry = getattr(importlib.import_module(module), attr)
        for param in COMMON_REGISTRY:
            assert param.name in registry

    def test_flink_does_not_see_common(self):
        from repro.apps.flink import FLINK_REGISTRY
        assert "hadoop.rpc.protection" not in FLINK_REGISTRY
