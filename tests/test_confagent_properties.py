"""Property-based tests of ConfAgent's mapping rules.

A random interleaving of the operations real unit tests perform —
creating confs before/after nodes, initializing nodes (optionally with
the shared conf), cloning mapped and unmapped confs — must leave the
agent in a consistent state: every conf owned by exactly one entity (or
uncertain), clones co-located with their sources, and injection never
reaching uncertain objects.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.params import INT, ParamRegistry
from repro.core.confagent import (NO_OVERRIDE, UNCERTAIN, UNIT_TEST,
                                  ConfAgent, current_agent)
from repro.core.testgen import HeteroAssignment, ParamAssignment

REGISTRY = ParamRegistry("prop-agent")
REGISTRY.define("pa.value", INT, 5)


class PropConfiguration(Configuration):
    registry = REGISTRY


class PropNode:
    node_type = "Service"

    def __init__(self, conf):
        agent = current_agent()
        agent.start_init(self, self.node_type)
        try:
            self.conf = ref_to_clone(conf)
        finally:
            agent.stop_init()


#: operation alphabet for the random interleavings
OPERATIONS = st.lists(
    st.sampled_from(["new_conf", "new_node", "clone_first", "clone_last"]),
    min_size=1, max_size=12)


def run_operations(operations):
    agent = ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param="pa.value", group="Service", group_values=(100,),
        other_value=200),)))
    confs = []
    nodes = []
    with agent:
        shared = PropConfiguration()
        confs.append(shared)
        for operation in operations:
            if operation == "new_conf":
                confs.append(PropConfiguration())
            elif operation == "new_node":
                nodes.append(PropNode(shared))
                confs.append(nodes[-1].conf)
            elif operation == "clone_first":
                confs.append(PropConfiguration(confs[0]))
            elif operation == "clone_last":
                confs.append(PropConfiguration(confs[-1]))
        observed = [(agent._resolve(conf), conf.get("pa.value"))
                    for conf in confs]
    return agent, confs, nodes, observed


@given(OPERATIONS)
@settings(max_examples=80, deadline=None)
def test_every_conf_has_exactly_one_owner(operations):
    agent, confs, nodes, _ = run_operations(operations)
    for conf in confs:
        owners = 0
        conf_id = id(conf)
        for record in agent.node_table.values():
            if conf_id in record.conf_ids:
                owners += 1
        if conf_id in agent.unit_test_confs:
            owners += 1
        if conf_id in agent.uncertain_confs:
            owners += 1
        assert owners == 1, "conf with %d owners" % owners


@given(OPERATIONS)
@settings(max_examples=80, deadline=None)
def test_injection_matches_resolution(operations):
    _, _, _, observed = run_operations(operations)
    for (node_type, _), value in observed:
        if node_type == "Service":
            assert value == 100
        elif node_type == UNIT_TEST:
            assert value == 200
        else:  # uncertain objects keep the registry default
            assert node_type == UNCERTAIN
            assert value == 5


@given(OPERATIONS)
@settings(max_examples=80, deadline=None)
def test_clones_follow_their_sources(operations):
    agent, confs, _, _ = run_operations(operations)
    for child_id, parent_id in agent.parent_to_child.items():
        child = next((c for c in confs if id(c) == child_id), None)
        parent = next((c for c in confs if id(c) == parent_id), None)
        if child is None or parent is None:
            continue
        child_owner = agent._resolve(child)
        parent_owner = agent._resolve(parent)
        # Rule 2 deliberately splits (clone -> node, source -> test);
        # everything else keeps clone and source together.
        if child_owner[0] == "Service" and parent_owner[0] == UNIT_TEST:
            continue
        assert child_owner == parent_owner


@given(OPERATIONS)
@settings(max_examples=80, deadline=None)
def test_node_count_matches_new_node_operations(operations):
    agent, _, nodes, _ = run_operations(operations)
    assert agent.started_node_groups().get("Service", 0) == len(nodes)
    for index, node in enumerate(nodes):
        assert agent._resolve(node.conf) == ("Service", index)
