"""Unit tests for the hypothesis-testing machinery (§5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (DEFAULT_ALPHA, MIN_DECISIVE_TRIALS, TrialTally,
                              decisive_trials, hypergeom_tail)

scipy_stats = pytest.importorskip("scipy.stats")


class TestHypergeomTail:
    def test_empty_table_is_one(self):
        assert hypergeom_tail(0, 0, 0, 0) == 1.0

    def test_no_failures_anywhere_is_one(self):
        assert hypergeom_tail(0, 10, 0, 10) == 1.0

    def test_perfect_separation_eight_each(self):
        # 8/8 hetero failures vs 0/8 homo failures: 1/C(16,8)
        p = hypergeom_tail(8, 8, 0, 8)
        assert p == pytest.approx(1 / 12870)
        assert p <= DEFAULT_ALPHA

    def test_seven_each_not_significant(self):
        assert hypergeom_tail(7, 7, 0, 7) > DEFAULT_ALPHA

    def test_inconsistent_table_rejected(self):
        with pytest.raises(ValueError):
            hypergeom_tail(5, 3, 0, 3)

    @given(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12),
           st.integers(0, 12))
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy_fisher_exact(self, k, extra_n, j, extra_m):
        n, m = k + extra_n, j + extra_m
        if n == 0 and m == 0:
            return
        ours = hypergeom_tail(k, n, j, m)
        _, theirs = scipy_stats.fisher_exact([[k, n - k], [j, m - j]],
                                             alternative="greater")
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-12)

    @given(st.integers(1, 20), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_p_value_in_unit_interval(self, n, m):
        for k in range(n + 1):
            p = hypergeom_tail(k, n, 0, m)
            assert 0.0 <= p <= 1.0


class TestTrialTally:
    def test_records_accumulate(self):
        tally = TrialTally()
        tally.record_hetero(True)
        tally.record_hetero(False)
        tally.record_homo(False)
        assert (tally.hetero_failures, tally.hetero_trials) == (1, 2)
        assert (tally.homo_failures, tally.homo_trials) == (0, 1)

    def test_significance_reached_with_decisive_streak(self):
        tally = TrialTally()
        for _ in range(MIN_DECISIVE_TRIALS):
            tally.record_hetero(True)
            tally.record_homo(False)
        assert tally.significant()

    def test_flaky_pattern_never_significant(self):
        tally = TrialTally()
        for index in range(20):
            tally.record_hetero(index % 3 == 0)
            tally.record_homo(index % 3 == 0)
        assert not tally.significant()

    def test_hopeless_when_homo_fails_as_much(self):
        tally = TrialTally()
        for _ in range(10):
            tally.record_hetero(True)
            tally.record_homo(True)
        assert tally.hopeless(max_trials=12)

    def test_not_hopeless_early(self):
        tally = TrialTally()
        tally.record_hetero(True)
        tally.record_homo(False)
        assert not tally.hopeless(max_trials=40)


class TestDecisiveTrials:
    def test_matches_constant(self):
        assert decisive_trials(DEFAULT_ALPHA) == MIN_DECISIVE_TRIALS == 8

    def test_looser_alpha_needs_fewer(self):
        assert decisive_trials(0.05) < decisive_trials(1e-4)
        assert decisive_trials(1e-8) > decisive_trials(1e-4)
