"""End-to-end tests for `repro serve` (repro.core.service + jobqueue).

The contract under test, stated in docs/SERVICE.md:

* a campaign submitted over HTTP produces report bytes identical to the
  CLI's --json/--markdown output for the same spec;
* an identical resubmission against the shared store/journal is served
  strictly cheaper (no fresh cache misses; store hits when the journal
  key differs);
* mutating endpoints reject requests without the HMAC bearer token;
* DELETE cancels between profiles and the journal keeps finished work,
  so a resubmission resumes instead of restarting;
* a SIGKILL'd daemon restarted on the same --serve-state resumes
  in-flight campaigns and converges to the same report bytes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.jobqueue import (JobQueue, JobSpecError, canonical_spec,
                                 spec_digest)
from repro.core.report import findings_projection
from repro.core.service import (CampaignService, _ServiceServer,
                                parse_listen, service_token)

DEADLINE_S = 120.0


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
class LiveDaemon:
    """In-process daemon on an ephemeral port (one per test)."""

    def __init__(self, tmp_path, secret=None, max_active=1, store=True):
        self.state_dir = str(tmp_path / "state")
        self.store_dir = str(tmp_path / "store") if store else None
        self.queue = JobQueue(self.state_dir, store_path=self.store_dir,
                              max_active=max_active)
        self.queue.start()
        self.server = _ServiceServer(
            ("127.0.0.1", 0), CampaignService(self.queue, secret=secret))
        self.base = "http://127.0.0.1:%d" % self.server.server_address[1]
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        daemon=True)
        self._thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()
        self.queue.stop()

    # -- tiny HTTP client ---------------------------------------------
    def request(self, method, path, body=None, token=None):
        data = None if body is None else json.dumps(body).encode()
        headers = {}
        if token is not None:
            headers["Authorization"] = "Bearer " + token
        req = urllib.request.Request(self.base + path, data=data,
                                     method=method, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def get_json(self, path):
        status, raw = self.request("GET", path)
        assert status == 200, (path, status, raw)
        return json.loads(raw)

    def submit(self, spec, token=None):
        status, raw = self.request("POST", "/v1/campaigns", body=spec,
                                   token=token)
        assert status == 202, (status, raw)
        return json.loads(raw)

    def wait_done(self, job_id, states=("done",)):
        deadline = time.time() + DEADLINE_S
        while time.time() < deadline:
            record = self.get_json("/v1/campaigns/%s" % job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                assert record["state"] in states, record
                return record
            time.sleep(0.05)
        raise AssertionError("job %s never finished" % job_id)


@pytest.fixture
def daemon(tmp_path):
    live = LiveDaemon(tmp_path)
    yield live
    live.close()


def cli_reference(tmp_path, app, extra=()):
    """Run the same campaign through the CLI; return (json, md) bytes."""
    json_path = str(tmp_path / ("ref-%s.json" % app))
    md_path = str(tmp_path / ("ref-%s.md" % app))
    assert main(["campaign", app, "--json", json_path,
                 "--markdown", md_path, *extra]) == 0
    with open(json_path, "rb") as handle:
        ref_json = handle.read()
    with open(md_path, "rb") as handle:
        ref_md = handle.read()
    return ref_json, ref_md


# ---------------------------------------------------------------------------
# spec validation (no daemon needed)
# ---------------------------------------------------------------------------
def test_canonical_spec_fills_defaults_and_sorts():
    spec = canonical_spec({"app": "flink", "params": ["b", "a", "b"]})
    assert spec["workers"] == 1
    assert spec["store"] is True
    assert spec["params"] == ["a", "b"]
    # digest is stable under key order and default elision
    assert spec_digest(spec) == spec_digest(
        canonical_spec({"params": ["a", "b"], "app": "flink"}))


@pytest.mark.parametrize("bad", [
    {"app": "nosuchapp"},
    {"app": "flink", "bogus_knob": 1},
    {"app": "flink", "workers": "two"},
    {"app": "flink", "faults": {"gamma_rays": 0.5}},
    {"app": "flink", "parallel_backend": "quantum"},
    [],
])
def test_canonical_spec_rejects(bad):
    with pytest.raises(JobSpecError):
        canonical_spec(bad)


def test_parse_listen():
    assert parse_listen("8080") == ("127.0.0.1", 8080)
    assert parse_listen("0.0.0.0:9000") == ("0.0.0.0", 9000)


# ---------------------------------------------------------------------------
# submit / poll / report byte-identity
# ---------------------------------------------------------------------------
def test_submit_poll_report_bytes_identical_to_cli(daemon, tmp_path):
    job = daemon.submit({"app": "flink", "store": False})
    record = daemon.wait_done(job["id"])
    assert record["spec"]["app"] == "flink"
    assert record["report_ready"] is True
    assert record["executions"] > 0
    assert record["cost_centers"], "done job must expose cost centers"
    assert record["distribution"] is not None

    status, served_json = daemon.request(
        "GET", "/v1/campaigns/%s/report" % job["id"])
    assert status == 200
    status, served_md = daemon.request(
        "GET", "/v1/campaigns/%s/report?format=markdown" % job["id"])
    assert status == 200
    ref_json, ref_md = cli_reference(tmp_path, "flink")
    assert served_json == ref_json
    assert served_md == ref_md


def test_report_404_until_done_and_listing(daemon):
    status, raw = daemon.request("GET", "/v1/campaigns/c999999/report")
    assert status == 404
    job = daemon.submit({"app": "flink", "store": False})
    listing = daemon.get_json("/v1/campaigns")
    assert [j["id"] for j in listing["campaigns"]] == [job["id"]]
    daemon.wait_done(job["id"])
    health = daemon.get_json("/v1/healthz")
    assert health["ok"] is True and health["jobs"]["done"] == 1


def test_events_stream_is_ndjson_and_terminal(daemon):
    job = daemon.submit({"app": "flink", "store": False})
    daemon.wait_done(job["id"])
    status, raw = daemon.request("GET",
                                 "/v1/campaigns/%s/events" % job["id"])
    assert status == 200
    events = [json.loads(line) for line in raw.decode().splitlines()]
    assert events[0] == {"event": "state", "seq": 1, "state": "queued"}
    kinds = [e["event"] for e in events]
    assert "progress" in kinds
    final = [e for e in events if e["event"] == "state"][-1]
    assert final["state"] == "done"
    progress = [e for e in events if e["event"] == "progress"]
    assert progress[-1]["executions"] > 0
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))


# ---------------------------------------------------------------------------
# auth
# ---------------------------------------------------------------------------
def test_mutating_endpoints_require_bearer_token(tmp_path):
    live = LiveDaemon(tmp_path, secret="s3cret")
    try:
        status, raw = live.request("POST", "/v1/campaigns",
                                   body={"app": "flink"})
        assert status == 401, raw
        status, _ = live.request("POST", "/v1/campaigns",
                                 body={"app": "flink"}, token="f" * 64)
        assert status == 401
        status, _ = live.request("DELETE", "/v1/campaigns/c000001")
        assert status == 401
        # reads stay open
        assert live.get_json("/v1/healthz")["auth"] is True
        # the real token is accepted
        job = live.submit({"app": "flink", "store": False},
                          token=service_token("s3cret"))
        status, _ = live.request("DELETE", "/v1/campaigns/%s" % job["id"],
                                 token=service_token("s3cret"))
        assert status == 202
    finally:
        live.close()


def test_service_token_matches_golden():
    golden_path = os.path.join(os.path.dirname(__file__), "golden",
                               "serve_token.json")
    with open(golden_path) as handle:
        golden = json.load(handle)
    for secret, token in golden.items():
        assert service_token(secret) == token


# ---------------------------------------------------------------------------
# shared store: warm resubmission strictly cheaper
# ---------------------------------------------------------------------------
def test_warm_resubmission_strictly_cheaper(daemon):
    cold = daemon.wait_done(daemon.submit({"app": "mapreduce"})["id"])
    _, raw = daemon.request("GET", "/v1/campaigns/%s/report" % cold["id"])
    cold_report = json.loads(raw)
    assert cold_report["store"]["misses"] > 0

    # identical spec: the digest-keyed journal restores every profile —
    # the resubmission performs no fresh executions at all (no misses,
    # no appends) and findings are byte-identical.
    warm = daemon.wait_done(daemon.submit({"app": "mapreduce"})["id"])
    _, raw = daemon.request("GET", "/v1/campaigns/%s/report" % warm["id"])
    warm_report = json.loads(raw)
    assert warm_report["store"]["misses"] == 0
    assert warm_report["store"]["appends"] == 0
    assert warm_report["store"]["entries_loaded"] > 0
    assert (findings_projection(warm_report)
            == findings_projection(cold_report))

    # a spec with a different digest but identical executions (schedule
    # is ignored at workers == 1) gets a fresh journal: here the shared
    # store itself serves the work — strictly fewer executions, hits > 0.
    other = daemon.wait_done(
        daemon.submit({"app": "mapreduce", "schedule": "catalog"})["id"])
    _, raw = daemon.request("GET", "/v1/campaigns/%s/report" % other["id"])
    other_report = json.loads(raw)
    assert other_report["store"]["hits"] > 0
    assert other_report["executions"] < cold_report["executions"]
    assert (findings_projection(other_report)
            == findings_projection(cold_report))


# ---------------------------------------------------------------------------
# cancel, then resume by resubmitting the same spec
# ---------------------------------------------------------------------------
def test_cancel_then_resubmit_resumes(daemon, tmp_path):
    job = daemon.submit({"app": "mapreduce", "store": False})
    deadline = time.time() + DEADLINE_S
    while time.time() < deadline:
        record = daemon.get_json("/v1/campaigns/%s" % job["id"])
        if (record["progress"] or {}).get("done", 0) >= 1:
            break
        assert record["state"] not in ("done", "failed", "cancelled"), record
        time.sleep(0.02)
    status, raw = daemon.request("DELETE", "/v1/campaigns/%s" % job["id"])
    assert status == 202
    record = daemon.wait_done(job["id"], states=("cancelled",))
    assert record["cancel_requested"] is True
    # the journal kept the committed profiles
    digest = record["spec_digest"]
    journal = daemon.queue.checkpoint_path_for(digest)
    assert os.path.exists(journal)

    resumed = daemon.wait_done(
        daemon.submit({"app": "mapreduce", "store": False})["id"])
    assert resumed["spec_digest"] == digest
    _, served_json = daemon.request(
        "GET", "/v1/campaigns/%s/report" % resumed["id"])
    _, served_md = daemon.request(
        "GET", "/v1/campaigns/%s/report?format=markdown" % resumed["id"])
    ref_json, ref_md = cli_reference(tmp_path, "mapreduce")
    assert served_json == ref_json
    assert served_md == ref_md


def test_cancel_queued_job_is_immediate(tmp_path):
    live = LiveDaemon(tmp_path, max_active=1)
    try:
        first = live.submit({"app": "mapreduce", "store": False})
        second = live.submit({"app": "flink", "store": False})
        status, raw = live.request("DELETE",
                                   "/v1/campaigns/%s" % second["id"])
        assert status == 202
        assert json.loads(raw)["state"] == "cancelled"
        live.wait_done(first["id"], states=("done", "cancelled"))
    finally:
        live.close()


# ---------------------------------------------------------------------------
# registry resources
# ---------------------------------------------------------------------------
def test_registry_endpoint(daemon):
    record = daemon.get_json("/v1/registry/flink")
    assert record["app"] == "flink"
    assert record["params"], "registry must not be empty"
    sample = record["params"][0]
    assert set(sample) == {"name", "kind", "default", "section", "tags",
                           "unsafe_table3", "description"}
    assert "audit" not in record
    status, _ = daemon.request("GET", "/v1/registry/nosuchapp")
    assert status == 404


def test_registry_audit_verdicts(daemon):
    record = daemon.get_json("/v1/registry/flink?audit=1")
    audit = record["audit"]
    names = {p["name"] for p in record["params"]}
    assert audit["verdicts"] and set(audit["verdicts"]) <= names
    # second request is served from the cache (same object contents)
    again = daemon.get_json("/v1/registry/flink?audit=1")
    assert again["audit"] == audit


# ---------------------------------------------------------------------------
# SIGKILL the daemon mid-campaign; restart resumes to identical bytes
# ---------------------------------------------------------------------------
def _spawn_daemon(state_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "127.0.0.1:0",
         "--serve-state", state_dir],
        env=env, stderr=subprocess.PIPE, text=True)
    line = proc.stderr.readline()
    assert "listening on http://" in line, line
    base = "http://" + line.split("http://", 1)[1].split(" ", 1)[0].strip()
    return proc, base


def _http(base, method, path, body=None):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, resp.read()


@pytest.mark.chaos
def test_sigkill_daemon_midcampaign_resumes_to_identical_bytes(tmp_path):
    state_dir = str(tmp_path / "state")
    proc, base = _spawn_daemon(state_dir)
    try:
        _, raw = _http(base, "POST", "/v1/campaigns",
                       {"app": "mapreduce", "store": False})
        job_id = json.loads(raw)["id"]
        # let it commit at least one profile, then SIGKILL the daemon
        deadline = time.time() + DEADLINE_S
        while time.time() < deadline:
            _, raw = _http(base, "GET", "/v1/campaigns/%s" % job_id)
            record = json.loads(raw)
            if (record["progress"] or {}).get("done", 0) >= 1:
                break
            assert record["state"] != "done", \
                "campaign finished before the kill could land"
            time.sleep(0.02)
        else:
            raise AssertionError("no progress before deadline")
    finally:
        proc.kill()
        proc.wait(timeout=60)
        proc.stderr.close()

    proc, base = _spawn_daemon(state_dir)
    try:
        deadline = time.time() + DEADLINE_S
        while time.time() < deadline:
            _, raw = _http(base, "GET", "/v1/campaigns/%s" % job_id)
            record = json.loads(raw)
            if record["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        assert record["state"] == "done", record
        _, served_json = _http(base, "GET",
                               "/v1/campaigns/%s/report" % job_id)
        _, served_md = _http(
            base, "GET", "/v1/campaigns/%s/report?format=markdown" % job_id)
        _, raw = _http(base, "GET", "/v1/campaigns/%s/events" % job_id)
        kinds = [json.loads(line).get("reason")
                 for line in raw.decode().splitlines()]
        assert "requeued-on-restart" in kinds
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)
        proc.stderr.close()

    ref_json, ref_md = cli_reference(tmp_path, "mapreduce")
    assert served_json == ref_json
    assert served_md == ref_md
