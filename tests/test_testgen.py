"""Unit tests for TestGenerator: values, strategies, assignments (§4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confagent import NO_OVERRIDE, UNIT_TEST
from repro.core.registry import UnitTest
from repro.core.testgen import (ALL_STRATEGIES, CROSS, CROSS_SWAPPED,
                                DependencyRule, HeteroAssignment,
                                ParamAssignment, ROUND_ROBIN,
                                ROUND_ROBIN_SWAPPED, TestGenerator,
                                TestInstance)
from synthetic_app import SYNTH_REGISTRY, no_node_test


@pytest.fixture()
def generator():
    return TestGenerator(SYNTH_REGISTRY)


class TestValueSelection:
    def test_bool_has_one_pair(self, generator):
        pairs = generator.value_pairs(SYNTH_REGISTRY.get("synth.mode"))
        assert pairs == [(True, False)]

    def test_explicit_candidates_pair(self, generator):
        pairs = generator.value_pairs(SYNTH_REGISTRY.get("synth.level"))
        assert pairs == [(10, 1000)]

    def test_pair_cap_respected(self):
        from repro.common.params import INT, ParamRegistry
        registry = ParamRegistry("caps")
        registry.define("p", INT, 5, candidates=(1, 2, 3, 4, 5))
        generator = TestGenerator(registry, max_value_pairs=3)
        assert len(generator.value_pairs(registry.get("p"))) == 3


class TestStrategies:
    def test_single_node_group_has_cross_only(self, generator):
        assert generator.strategies_for_group(1) == [CROSS, CROSS_SWAPPED]

    def test_multi_node_group_adds_round_robin(self, generator):
        assert generator.strategies_for_group(2) == list(ALL_STRATEGIES)

    def test_cross_assignment_values(self, generator):
        param = SYNTH_REGISTRY.get("synth.level")
        assignment = generator.assignment(param, "Service", CROSS, (10, 1000))
        assert assignment.value_for("Service", 0, "synth.level") == 10
        assert assignment.value_for("Service", 5, "synth.level") == 10
        assert assignment.value_for("Other", 0, "synth.level") == 1000
        assert assignment.value_for(UNIT_TEST, 0, "synth.level") == 1000

    def test_cross_swapped_flips(self, generator):
        param = SYNTH_REGISTRY.get("synth.level")
        assignment = generator.assignment(param, "Service", CROSS_SWAPPED,
                                          (10, 1000))
        assert assignment.value_for("Service", 0, "synth.level") == 1000
        assert assignment.value_for(UNIT_TEST, 0, "synth.level") == 10

    def test_round_robin_alternates_within_group(self, generator):
        param = SYNTH_REGISTRY.get("synth.level")
        assignment = generator.assignment(param, "Service", ROUND_ROBIN,
                                          (10, 1000))
        assert assignment.value_for("Service", 0, "synth.level") == 10
        assert assignment.value_for("Service", 1, "synth.level") == 1000
        assert assignment.value_for("Service", 2, "synth.level") == 10
        assert assignment.value_for("Other", 0, "synth.level") == 1000

    def test_round_robin_swapped(self, generator):
        param = SYNTH_REGISTRY.get("synth.level")
        assignment = generator.assignment(param, "Service",
                                          ROUND_ROBIN_SWAPPED, (10, 1000))
        assert assignment.value_for("Service", 0, "synth.level") == 1000
        assert assignment.value_for("Service", 1, "synth.level") == 10
        assert assignment.value_for("Other", 0, "synth.level") == 10

    def test_unknown_strategy_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.assignment(SYNTH_REGISTRY.get("synth.level"), "Service",
                                 "diagonal", (10, 1000))

    def test_other_params_not_touched(self, generator):
        param = SYNTH_REGISTRY.get("synth.level")
        assignment = generator.assignment(param, "Service", CROSS, (10, 1000))
        assert assignment.value_for("Service", 0, "synth.mode") is NO_OVERRIDE


class TestHeteroAssignment:
    def make(self, generator):
        level = generator.assignment(SYNTH_REGISTRY.get("synth.level"),
                                     "Service", CROSS, (10, 1000))
        mode = generator.assignment(SYNTH_REGISTRY.get("synth.mode"),
                                    "Service", CROSS, (True, False))
        return HeteroAssignment((level, mode))

    def test_pooled_lookup_routes_by_param(self, generator):
        assignment = self.make(generator)
        assert assignment.value_for("Service", 0, "synth.level") == 10
        assert assignment.value_for("Service", 0, "synth.mode") is True
        assert assignment.value_for("Service", 0, "synth.safe-a") is NO_OVERRIDE

    def test_duplicate_param_rejected(self, generator):
        unit = generator.assignment(SYNTH_REGISTRY.get("synth.level"),
                                    "Service", CROSS, (10, 1000))
        with pytest.raises(ValueError):
            HeteroAssignment((unit, unit))

    def test_homo_variant_is_uniform(self, generator):
        assignment = self.make(generator)
        for side in range(assignment.sides()):
            homo = assignment.homo_variant(side)
            values = {homo.value_for(entity, index, "synth.level")
                      for entity in ("Service", "Other", UNIT_TEST)
                      for index in range(3)}
            assert len(values) == 1

    def test_homo_sides_cover_both_values(self, generator):
        assignment = self.make(generator)
        sides = {assignment.homo_variant(side).value_for("Service", 0,
                                                         "synth.level")
                 for side in range(assignment.sides())}
        assert sides == {10, 1000}

    def test_subset_filters_params(self, generator):
        assignment = self.make(generator)
        subset = assignment.subset(["synth.mode"])
        assert subset.params == ("synth.mode",)

    @given(st.sampled_from(ALL_STRATEGIES), st.integers(0, 5),
           st.sampled_from(["Service", "Other", UNIT_TEST]))
    @settings(max_examples=60, deadline=None)
    def test_every_entity_gets_one_of_the_pair(self, strategy, index, entity):
        generator = TestGenerator(SYNTH_REGISTRY)
        assignment = generator.assignment(SYNTH_REGISTRY.get("synth.level"),
                                          "Service", strategy, (10, 1000))
        assert assignment.value_for(entity, index, "synth.level") in (10, 1000)

    @given(st.sampled_from(ALL_STRATEGIES))
    @settings(max_examples=10, deadline=None)
    def test_hetero_assignment_is_actually_heterogeneous(self, strategy):
        generator = TestGenerator(SYNTH_REGISTRY)
        assignment = generator.assignment(SYNTH_REGISTRY.get("synth.level"),
                                          "Service", strategy, (10, 1000))
        values = {assignment.value_for(entity, index, "synth.level")
                  for entity in ("Service", UNIT_TEST) for index in range(2)}
        assert values == {10, 1000}


class TestDependencyRules:
    def test_companion_pinned_everywhere(self):
        rules = (DependencyRule("synth.level", 1000, "synth.safe-a", 42),)
        generator = TestGenerator(SYNTH_REGISTRY, dependency_rules=rules)
        assignment = generator.assignment(SYNTH_REGISTRY.get("synth.level"),
                                          "Service", CROSS, (10, 1000))
        assert assignment.value_for("Service", 0, "synth.safe-a") == 42
        assert assignment.value_for(UNIT_TEST, 0, "synth.safe-a") == 42

    def test_unrelated_value_not_pinned(self):
        rules = (DependencyRule("synth.level", 77, "synth.safe-a", 42),)
        generator = TestGenerator(SYNTH_REGISTRY, dependency_rules=rules)
        assignment = generator.assignment(SYNTH_REGISTRY.get("synth.level"),
                                          "Service", CROSS, (10, 1000))
        assert assignment.value_for("Service", 0, "synth.safe-a") is NO_OVERRIDE

    def test_homo_variant_keeps_pins(self):
        rules = (DependencyRule("synth.level", 1000, "synth.safe-a", 42),)
        generator = TestGenerator(SYNTH_REGISTRY, dependency_rules=rules)
        assignment = HeteroAssignment((generator.assignment(
            SYNTH_REGISTRY.get("synth.level"), "Service", CROSS, (10, 1000)),))
        homo = assignment.homo_variant(0)
        assert homo.value_for("Service", 0, "synth.safe-a") == 42


class TestInstanceEnumeration:
    def test_instances_for_profiled_test(self, generator):
        test = no_node_test()
        instances = generator.instances_for_test(
            test, groups={"Service": 2},
            params_by_group={"Service": {"synth.level", "synth.mode"}})
        # 2 params x 1 pair x 4 strategies (group of 2)
        assert len(instances) == 8
        assert all(isinstance(i, TestInstance) for i in instances)

    def test_unknown_params_skipped(self, generator):
        test = no_node_test()
        instances = generator.instances_for_test(
            test, groups={"Service": 1},
            params_by_group={"Service": {"not.a.param"}})
        assert instances == []

    def test_original_count_formula(self, generator):
        per_param = sum(len(generator.value_pairs(p)) for p in SYNTH_REGISTRY)
        expected = 10 * per_param * 2 * 4
        assert generator.count_original_instances(
            10, ["Service", "Client"]) == expected

    def test_original_enumeration_agrees_with_count(self, generator):
        names = ["t%d" % i for i in range(4)]
        node_types = ["Service", "Client"]
        enumerated = list(generator.enumerate_original_instances(
            names, node_types))
        assert len(enumerated) == generator.count_original_instances(
            len(names), node_types)
        # no duplicates in the universe
        assert len(set(enumerated)) == len(enumerated)
        # every tuple is well formed
        test, node_type, strategy, param, pair = enumerated[0]
        assert test in names and node_type in node_types
        assert param in SYNTH_REGISTRY
        assert len(pair) == 2
