"""Meta-tests over the unit-test corpus: baseline health, profiles,
metadata consistency with the paper's §7.1 accounting."""

from __future__ import annotations

import random

import pytest

from repro.core.prerun import prerun_test
from repro.core.registry import CORPUS, TestContext


def all_tests(corpus):
    return corpus.all_tests()


class TestCorpusShape:
    def test_every_target_app_has_tests(self, corpus):
        assert set(corpus.apps()) == {"flink", "hadooptools", "hbase", "hdfs",
                                      "mapreduce", "yarn"}

    def test_corpus_is_substantial(self, corpus):
        assert len(corpus) >= 60
        assert len(corpus.for_app("hdfs")) >= 25

    def test_names_unique_within_apps(self, corpus):
        for app in corpus.apps():
            names = [t.name for t in corpus.for_app(app)]
            assert len(names) == len(set(names))

    def test_lookup_by_name(self, corpus):
        test = corpus.get("hdfs", "TestFsck.testFsckHealthy")
        assert test.app == "hdfs"
        with pytest.raises(KeyError):
            corpus.get("hdfs", "TestNope.testMissing")

    def test_flaky_tests_present_for_hypothesis_testing(self, corpus):
        flaky = [t for t in all_tests(corpus) if t.flaky]
        assert len(flaky) >= 4

    def test_fp_source_metadata_counts(self, corpus):
        """§7.1: the corpus plants unrealistic-setting tests, overly
        strict assertions, and private-API-only observations."""
        tests = all_tests(corpus)
        assert sum(1 for t in tests if not t.realistic) == 2
        assert sum(1 for t in tests if t.strict_assertion) == 1
        assert sum(1 for t in tests if t.observability == "private") == 9


class TestBaselineHealth:
    def test_every_test_passes_under_default_config(self, corpus):
        """With homogeneous defaults (and the pre-run seed), every corpus
        test must pass — otherwise ZebraConf drops it at pre-run."""
        failures = []
        for test in all_tests(corpus):
            try:
                test.fn(TestContext(rng=random.Random(20210426)))
            except Exception as exc:  # noqa: BLE001
                failures.append("%s: %s" % (test.full_name, exc))
        assert failures == []


class TestProfiles:
    def test_hdfs_profiles_find_expected_groups(self, corpus):
        profile = prerun_test(corpus.get(
            "hdfs", "TestBalancer.testConcurrentMoves"))
        assert profile.groups.get("Balancer") == 1
        assert profile.groups.get("DataNode") == 2
        assert "dfs.datanode.balance.max.concurrent.moves" in \
            profile.params_by_group["Balancer"]

    def test_node_free_tests_are_filtered(self, corpus):
        for app, name in (("hdfs", "TestDFSUtil.testSplitPath"),
                          ("mapreduce", "TestPartitioner.testHashPartition"),
                          ("yarn", "TestResourceCalculator.testUnits")):
            profile = prerun_test(corpus.get(app, name))
            assert not profile.usable

    def test_late_conf_test_has_uncertain_params(self, corpus):
        profile = prerun_test(corpus.get(
            "hdfs", "TestHdfsAdmin.testLateConfigurationObject"))
        assert {"dfs.blocksize", "dfs.namenode.handler.count"} <= \
            profile.uncertain_params

    def test_flink_inline_init_profiles_taskmanagers(self, corpus):
        profile = prerun_test(corpus.get(
            "flink", "MiniClusterITCase.testJobUsesAllSlots"))
        assert profile.groups.get("TaskManager") == 2
        assert "taskmanager.numberOfTaskSlots" in \
            profile.params_by_group["TaskManager"]

    def test_unit_test_treated_as_client_node(self, corpus):
        from repro.core.confagent import UNIT_TEST
        profile = prerun_test(corpus.get(
            "hdfs", "TestFileCreation.testWriteReadRoundTrip"))
        assert UNIT_TEST in profile.groups
        assert "dfs.bytes-per-checksum" in profile.params_by_group[UNIT_TEST]
