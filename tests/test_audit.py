"""Registry wiring audit: verdict engine, fixtures, campaign integration.

The headline invariants:

* the deliberately mis-wired fixture parameters planted in the HDFS and
  YARN registries are flagged with exactly their planted verdicts;
* the audit never flags a parameter the campaign evaluation reports
  (true problem or §7.1 false positive) — zero false positives on the
  untouched registries;
* switching ``--audit`` on changes *nothing* about the unsafe findings:
  verdicts, executions, and modelled machine time are byte-identical,
  the audit only attaches its own separately-budgeted section.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.apps import catalog
from repro.cli import main
from repro.core.audit import (AUDIT_EXEMPT_TAG, FIXTURE_INERT_TAG,
                              FIXTURE_UNREAD_TAG, READ_BUT_INERT, UNREAD,
                              WIRED, audit_app)
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict
from repro.core.reportmd import app_report_markdown

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: the living fixtures planted in apps/*/params.py
FIXTURES = {
    "hdfs": {"dfs.namenode.lock.detailed-metrics.enabled": UNREAD,
             "dfs.datanode.metrics.logger.period.seconds": READ_BUT_INERT},
    "yarn": {"yarn.nodemanager.disk-health-checker.enable": UNREAD,
             "yarn.nodemanager.container-metrics.period-ms": READ_BUT_INERT},
}


def flink_campaign(**kw):
    spec = catalog.spec_for("flink")
    return Campaign("flink", spec.registry,
                    dependency_rules=spec.dependency_rules,
                    config=CampaignConfig(**kw)).run()


# ---------------------------------------------------------------------------
# planted fixtures
# ---------------------------------------------------------------------------
class TestFixtures:
    @pytest.mark.parametrize("app", sorted(FIXTURES))
    def test_fixtures_get_their_planted_verdicts(self, app):
        stats = audit_app(app)
        for param, verdict in FIXTURES[app].items():
            assert stats.verdict_for(param) == verdict, param

    @pytest.mark.parametrize("app", sorted(FIXTURES))
    def test_fixture_tags_match_verdicts(self, app):
        """The tags are the contract: anything tagged as a fixture must
        be flagged with the verdict its tag announces."""
        stats = audit_app(app)
        spec = catalog.spec_for(app)
        tagged = {p.name: p.tags for p in spec.registry
                  if FIXTURE_UNREAD_TAG in p.tags or FIXTURE_INERT_TAG in p.tags}
        assert len(tagged) >= 2
        for name, tags in tagged.items():
            want = UNREAD if FIXTURE_UNREAD_TAG in tags else READ_BUT_INERT
            assert stats.verdict_for(name) == want

    def test_fixtures_are_flagged_not_exempt(self):
        stats = audit_app("hdfs")
        flagged = {f.param for f in stats.flagged()}
        for param in FIXTURES["hdfs"]:
            assert param in flagged

    def test_inert_fixture_has_read_sites_and_probes(self):
        stats = audit_app("hdfs")
        finding = next(f for f in stats.findings
                       if f.param == "dfs.datanode.metrics.logger.period.seconds")
        assert finding.verdict == READ_BUT_INERT
        assert finding.read_sites, "INERT requires at least one read site"
        assert finding.probes > 0, "INERT must be established by probing"

    def test_unread_fixture_never_probed(self):
        stats = audit_app("yarn")
        finding = next(f for f in stats.findings
                       if f.param == "yarn.nodemanager.disk-health-checker.enable")
        assert finding.verdict == UNREAD
        assert not finding.read_sites and finding.probes == 0


# ---------------------------------------------------------------------------
# zero false positives on the untouched registries
# ---------------------------------------------------------------------------
class TestNoFalsePositives:
    @pytest.mark.parametrize("app", catalog.APP_NAMES)
    def test_no_reported_parameter_is_flagged(self, app):
        """A parameter the evaluation reports (true problem or §7.1 FP)
        is by construction read AND behaviourally live — the audit must
        never flag it."""
        stats = audit_app(app)
        spec = catalog.spec_for(app)
        reported = set(spec.expected_unsafe) | set(spec.expected_false_positives)
        flagged = {f.param for f in stats.flagged()}
        assert not (flagged & reported)

    def test_single_candidate_params_conservatively_wired(self):
        """Path-like parameters offer no candidate value pairs, so there
        is nothing to probe with — the audit must not guess INERT."""
        stats = audit_app("hdfs")
        finding = next(f for f in stats.findings
                       if f.param == "dfs.datanode.data.dir")
        assert finding.verdict == WIRED
        assert finding.probes == 0

    def test_exempt_tag_suppresses_flagging(self):
        """`audit-exempt` keeps the verdict but drops it from flagged()."""
        spec = catalog.spec_for("yarn")
        for p in spec.registry:
            if FIXTURE_UNREAD_TAG in p.tags:
                object.__setattr__(p, "tags", p.tags + (AUDIT_EXEMPT_TAG,))
                exempted = p.name
                break
        try:
            stats = audit_app("yarn")
            assert stats.verdict_for(exempted) == UNREAD
            assert exempted not in {f.param for f in stats.flagged()}
            assert stats.exempt_flagged >= 1
        finally:
            for p in spec.registry:
                if p.name == exempted:
                    object.__setattr__(
                        p, "tags",
                        tuple(t for t in p.tags if t != AUDIT_EXEMPT_TAG))


# ---------------------------------------------------------------------------
# determinism and accounting
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_two_runs_identical(self):
        assert audit_app("flink").to_dict() == audit_app("flink").to_dict()

    def test_counts_reconcile(self):
        stats = audit_app("flink")
        assert (stats.wired + stats.unread + stats.inert
                == stats.params_total == len(stats.findings))
        assert stats.machine_time_s == stats.probe_executions * 60.0

    def test_param_scoping(self):
        target = "dfs.datanode.metrics.logger.period.seconds"
        stats = audit_app("hdfs", params=[target])
        assert stats.params_total == 1
        assert stats.verdict_for(target) == READ_BUT_INERT


# ---------------------------------------------------------------------------
# campaign integration: --audit must not move the findings
# ---------------------------------------------------------------------------
class TestCampaignIntegration:
    @pytest.fixture(scope="class")
    def reports(self):
        return flink_campaign(audit=False), flink_campaign(audit=True)

    def test_findings_identical(self, reports):
        base, audited = reports
        assert base.audit is None and audited.audit is not None

        def findings(r):
            return [(v.param, v.is_true_problem, v.category, v.fp_reason,
                     tuple(v.failing_tests)) for v in r.verdicts]
        assert findings(base) == findings(audited)
        assert base.executions == audited.executions
        assert base.machine_time_s == audited.machine_time_s

    def test_report_dict_carries_audit_block(self, reports):
        base, audited = reports
        assert app_report_to_dict(base)["audit"] is None
        block = app_report_to_dict(audited)["audit"]
        assert block["params_total"] == audited.audit.params_total
        json.dumps(block)  # must be JSON-serializable

    def test_markdown_section_only_when_audited(self, reports):
        base, audited = reports
        assert "## Wiring audit" not in app_report_markdown(base)
        assert "## Wiring audit" in app_report_markdown(audited)

    def test_audit_metrics_in_separate_budget(self):
        report = flink_campaign(audit=True, observe=True)
        metrics = report.observation.metrics
        assert metrics.total("zc_audit_probe_executions_total") > 0
        assert metrics.total("zc_audit_params_total") == report.audit.params_total
        # the campaign's own budget is untouched by audit probes
        assert (metrics.total("zc_executions_total")
                + metrics.total("zc_prerun_executions_total")
                == report.executions)
        assert any(s.kind == "audit" for s in report.observation.spans)


# ---------------------------------------------------------------------------
# golden markdown section
# ---------------------------------------------------------------------------
def audit_markdown_section(markdown):
    lines = markdown.splitlines()
    start = lines.index("## Wiring audit")
    end = next(i for i in range(start + 1, len(lines))
               if lines[i].startswith("## "))
    return "\n".join(lines[start:end]) + "\n"


def regenerate_golden_files():
    """import test_audit; test_audit.regenerate_golden_files()"""
    report = flink_campaign(audit=True)
    section = audit_markdown_section(app_report_markdown(report))
    with open(os.path.join(GOLDEN_DIR, "audit_section.md"), "w") as handle:
        handle.write(section)


class TestGolden:
    def test_wiring_audit_section_matches_golden(self):
        report = flink_campaign(audit=True)
        section = audit_markdown_section(app_report_markdown(report))
        with open(os.path.join(GOLDEN_DIR, "audit_section.md")) as expected:
            assert section == expected.read(), (
                "regenerate with 'import test_audit; "
                "test_audit.regenerate_golden_files()'")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def test_audit_subcommand(self, capsys):
        assert main(["audit", "yarn"]) == 0
        out = capsys.readouterr().out
        assert "wiring audit over 'yarn'" in out
        for param in FIXTURES["yarn"]:
            assert param in out

    def test_audit_param_scoping(self, capsys):
        target = "yarn.nodemanager.container-metrics.period-ms"
        assert main(["audit", "yarn", "--param", target]) == 0
        out = capsys.readouterr().out
        assert "1 parameters" in out and target in out

    def test_audit_json(self, tmp_path, capsys):
        path = str(tmp_path / "audit.json")
        assert main(["audit", "hdfs", "--json", path]) == 0
        capsys.readouterr()
        with open(path) as handle:
            record = json.load(handle)
        for param, verdict in FIXTURES["hdfs"].items():
            assert record["verdicts"][param] == verdict

    def test_campaign_audit_flag(self, capsys):
        assert main(["campaign", "flink", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "wiring audit:" in out
