"""Unit tests for the pre-run profiling phase (§4, §6.2 Observation 3)."""

from __future__ import annotations

import pytest

from repro.core.confagent import UNIT_TEST
from repro.core.prerun import PreRunSummary, prerun_corpus, prerun_test
from synthetic_app import (broken_baseline_test, client_vs_service_test,
                           no_node_test, safe_only_test, two_service_test,
                           uncertain_conf_test)


class TestProfiles:
    def test_node_groups_recorded(self):
        profile = prerun_test(two_service_test())
        assert profile.groups["Service"] == 2
        assert profile.starts_nodes
        assert profile.usable

    def test_unit_test_counts_as_client_group(self):
        profile = prerun_test(client_vs_service_test())
        assert profile.groups.get(UNIT_TEST) == 1

    def test_usage_recorded_per_group(self):
        profile = prerun_test(two_service_test())
        assert "synth.mode" in profile.params_by_group["Service"]
        assert "synth.level" in profile.params_by_group["Service"]
        assert "synth.never-read" not in profile.params_by_group["Service"]

    def test_no_node_test_filtered(self):
        profile = prerun_test(no_node_test())
        assert not profile.starts_nodes
        assert not profile.usable

    def test_broken_baseline_filtered(self):
        profile = prerun_test(broken_baseline_test())
        assert profile.baseline_error is not None
        assert "broken at baseline" in profile.baseline_error
        assert not profile.usable

    def test_uncertain_params_excluded_from_testable(self):
        profile = prerun_test(uncertain_conf_test())
        assert "synth.safe-c" in profile.uncertain_params
        assert "synth.safe-c" not in profile.testable_params("Service")
        # parameters read only through mapped confs stay testable
        assert "synth.mode" in profile.testable_params("Service")

    def test_profile_is_deterministic(self):
        first = prerun_test(two_service_test())
        second = prerun_test(two_service_test())
        assert first.groups == second.groups
        assert first.params_by_group == second.params_by_group


class TestSummary:
    def test_summary_counts(self):
        profiles = prerun_corpus([
            two_service_test(), no_node_test(), broken_baseline_test(),
            uncertain_conf_test(), safe_only_test(),
        ])
        summary = PreRunSummary.from_profiles(profiles)
        assert summary.total_tests == 5
        assert summary.tests_without_nodes == 1
        assert summary.tests_broken_at_baseline == 1
        assert summary.tests_with_uncertain_confs == 1
