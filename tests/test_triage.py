"""Unit tests for triage: the §7.1 true-problem / false-positive rules."""

from __future__ import annotations

import pytest

from repro.core.runner import CONFIRMED_UNSAFE, InstanceResult
from repro.core.testgen import CROSS, HeteroAssignment, ParamAssignment, TestInstance
from repro.core.triage import (FALSE_POSITIVE, FP_PRIVATE_ONLY, FP_SHARED_IPC,
                               FP_STRICT_ASSERTION, FP_UNREALISTIC,
                               TRUE_PROBLEM, triage_param, triage_report)
from repro.core.registry import UnitTest
from synthetic_app import SYNTH_REGISTRY


def result_for(param, *, realistic=True, observability="public",
               strict=False, error="boom"):
    test = UnitTest(app="synth", name="T.%s_%s_%s" % (realistic, observability,
                                                      strict),
                    fn=lambda ctx: None, realistic=realistic,
                    observability=observability, strict_assertion=strict)
    assignment = HeteroAssignment((ParamAssignment(
        param=param, group="Service", group_values=(1,), other_value=2),))
    instance = TestInstance(test=test, group="Service", strategy=CROSS,
                            assignment=assignment)
    return InstanceResult(instance=instance, verdict=CONFIRMED_UNSAFE,
                          hetero_error=error)


class TestTriageRules:
    def test_realistic_public_is_true_problem(self):
        verdict = triage_param("p", [result_for("p")])
        assert verdict.verdict == TRUE_PROBLEM

    def test_unrealistic_only_is_fp(self):
        verdict = triage_param("p", [result_for("p", realistic=False)])
        assert verdict.verdict == FALSE_POSITIVE
        assert verdict.fp_reason == FP_UNREALISTIC

    def test_strict_assertion_only_is_fp(self):
        verdict = triage_param("p", [result_for("p", strict=True)])
        assert verdict.fp_reason == FP_STRICT_ASSERTION

    def test_private_observability_only_is_fp(self):
        verdict = triage_param("p", [result_for("p", observability="private")])
        assert verdict.fp_reason == FP_PRIVATE_ONLY

    def test_one_good_witness_outweighs_bad_ones(self):
        results = [result_for("p", realistic=False),
                   result_for("p", strict=True),
                   result_for("p", observability="private"),
                   result_for("p")]
        assert triage_param("p", results).verdict == TRUE_PROBLEM

    def test_shared_ipc_signature_recognised(self):
        results = [result_for(
            "ipc.client.kill.max",
            error="IPC connection parameter ipc.client.kill.max changed "
                  "mid-flight: connection built with 10, reused with 1000")]
        verdict = triage_param("ipc.client.kill.max", results)
        assert verdict.fp_reason == FP_SHARED_IPC

    def test_ipc_param_with_other_error_not_ipc_fp(self):
        results = [result_for("ipc.client.kill.max", error="timeout")]
        verdict = triage_param("ipc.client.kill.max", results)
        assert verdict.fp_reason != FP_SHARED_IPC

    def test_category_from_registry_tags(self):
        verdict = triage_param("synth.mode", [result_for("synth.mode")],
                               registry=SYNTH_REGISTRY)
        assert verdict.verdict == TRUE_PROBLEM
        assert verdict.category == "others"  # no tag on synth.mode

    def test_failing_tests_and_sample_error_recorded(self):
        verdict = triage_param("p", [result_for("p", error="the failure")])
        assert verdict.sample_error == "the failure"
        assert len(verdict.failing_tests) == 1


class TestTriageReport:
    def test_every_reported_param_gets_a_verdict(self):
        grouped = {"a": [result_for("a")],
                   "b": [result_for("b", realistic=False)]}
        verdicts = triage_report(grouped)
        assert [v.param for v in verdicts] == ["a", "b"]
        assert verdicts[0].is_true_problem
        assert not verdicts[1].is_true_problem
