"""Tests for baseline save/compare (regression tracking)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.baseline import (BaselineDiff, compare_to_baseline,
                                 load_baseline, save_baseline)
from repro.core.orchestrator import Campaign, CampaignConfig
from synthetic_app import SYNTH_REGISTRY, client_vs_service_test, two_service_test


@pytest.fixture(scope="module")
def synth_report():
    return Campaign("synth", SYNTH_REGISTRY,
                    tests=[two_service_test(), client_vs_service_test()],
                    config=CampaignConfig()).run()


class TestCompare:
    def test_identical_reports_are_clean(self, synth_report, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(synth_report, str(path))
        diff = compare_to_baseline(synth_report, load_baseline(str(path)))
        assert diff.clean
        assert not diff.has_regressions
        assert "baseline match" in diff.render()

    def test_new_unsafe_param_is_a_regression(self, synth_report, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(synth_report, str(path))
        baseline = load_baseline(str(path))
        baseline["true_problems"].remove("synth.mode")
        diff = compare_to_baseline(synth_report, baseline)
        assert diff.new_unsafe == ["synth.mode"]
        assert diff.has_regressions
        assert "NEW UNSAFE" in diff.render()

    def test_fixed_param_reported(self, synth_report, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(synth_report, str(path))
        baseline = load_baseline(str(path))
        baseline["true_problems"].append("synth.safe-a")
        diff = compare_to_baseline(synth_report, baseline)
        assert diff.fixed_unsafe == ["synth.safe-a"]
        assert not diff.has_regressions

    def test_wrong_app_rejected(self, synth_report):
        with pytest.raises(ValueError):
            compare_to_baseline(synth_report, {"app": "hdfs"})


class TestCliCompare:
    def test_matching_baseline_exits_zero(self, tmp_path, capsys):
        baseline_path = tmp_path / "flink.json"
        assert main(["campaign", "flink", "--json", str(baseline_path)]) == 0
        capsys.readouterr()
        assert main(["campaign", "flink",
                     "--compare", str(baseline_path)]) == 0
        assert "baseline match" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        baseline_path = tmp_path / "flink.json"
        assert main(["campaign", "flink", "--json", str(baseline_path)]) == 0
        data = json.loads(baseline_path.read_text())
        data["true_problems"].remove("akka.ssl.enabled")
        baseline_path.write_text(json.dumps(data))
        assert main(["campaign", "flink",
                     "--compare", str(baseline_path)]) == 1
        assert "NEW UNSAFE" in capsys.readouterr().out

    def test_evaluate_rejects_compare(self, capsys):
        assert main(["evaluate", "--compare", "x.json"]) == 2
