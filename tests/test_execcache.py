"""Unit + equivalence tests for the content-addressed execution cache."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import TestFailure
from repro.common.faults import FaultPlan, fault_seed
from repro.core.execcache import (ORIGINAL, ExecutionCache,
                                  canonical_assignment, execution_seed,
                                  fingerprint, stable_seed)
from repro.core.orchestrator import CampaignConfig
from repro.core.registry import UnitTest
from repro.core.report import app_report_to_dict
from repro.core.runner import RunOutcome, TestRunner
from repro.core.testgen import (CROSS, HeteroAssignment, HomoAssignment,
                                ParamAssignment, TestInstance)
from synthetic_app import (SYNTH_REGISTRY, SynthConfiguration, Service,
                           safe_only_test, two_service_test)
from test_orchestrator import synthetic_campaign


# ---------------------------------------------------------------------------
# seeds
# ---------------------------------------------------------------------------
class TestStableSeed:
    def test_delimiter_collision_regression(self):
        # "|".join-based seeds made these two part tuples identical.
        assert stable_seed("a|b", "c") != stable_seed("a", "b|c")
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_fault_seed_has_same_protection(self):
        assert fault_seed("a|b", "c") != fault_seed("a", "b|c")

    def test_deterministic_across_calls(self):
        assert stable_seed("t", 3) == stable_seed("t", 3)

    def test_execution_seed_derives_from_content(self):
        a = ParamAssignment(param="p", group="Service", group_values=(1,),
                            other_value=2)
        same = ParamAssignment(param="p", group="Service", group_values=(1,),
                               other_value=2)
        assert (execution_seed("t", canonical_assignment(a), 0)
                == execution_seed("t", canonical_assignment(same), 0))
        assert (execution_seed("t", canonical_assignment(a), 0)
                != execution_seed("t", canonical_assignment(a), 1))


# ---------------------------------------------------------------------------
# canonical forms
# ---------------------------------------------------------------------------
class TestCanonicalAssignment:
    def test_none_is_original(self):
        assert canonical_assignment(None) == ORIGINAL

    def test_homo_order_insensitive(self):
        first = HomoAssignment(values=(("a", 1), ("b", 2)))
        second = HomoAssignment(values=(("b", 2), ("a", 1)))
        assert canonical_assignment(first) == canonical_assignment(second)

    def test_hetero_pool_order_insensitive(self):
        one = ParamAssignment(param="a", group="G", group_values=(1,),
                              other_value=2)
        two = ParamAssignment(param="b", group="G", group_values=(3,),
                              other_value=4)
        assert (canonical_assignment(HeteroAssignment((one, two)))
                == canonical_assignment(HeteroAssignment((two, one))))

    def test_homo_default_collapses_to_original(self):
        # synth.level default is 10: injecting 10 everywhere is the
        # original run (when the test never explicitly sets it).
        homo = HomoAssignment(values=(("synth.level", 10),))
        assert canonical_assignment(homo, registry=SYNTH_REGISTRY) == ORIGINAL

    def test_non_default_never_collapses(self):
        homo = HomoAssignment(values=(("synth.level", 1000),))
        assert (canonical_assignment(homo, registry=SYNTH_REGISTRY)
                != ORIGINAL)

    def test_no_registry_no_collapse(self):
        homo = HomoAssignment(values=(("synth.level", 10),))
        assert canonical_assignment(homo) != ORIGINAL

    def test_no_collapse_exemption(self):
        homo = HomoAssignment(values=(("synth.level", 10),))
        assert canonical_assignment(homo, registry=SYNTH_REGISTRY,
                                    no_collapse={"synth.level"}) != ORIGINAL

    def test_collapse_is_type_sensitive(self):
        # True == 1 in Python; a bool default must not swallow an int 1.
        homo = HomoAssignment(values=(("synth.safe-b", 1),))
        assert (canonical_assignment(homo, registry=SYNTH_REGISTRY)
                != ORIGINAL)

    def test_pinned_first_wins_and_sorted(self):
        a = ParamAssignment(param="p", group="G", group_values=(1,),
                            other_value=2, pinned=(("x", 1), ("y", 2)))
        b = ParamAssignment(param="p", group="G", group_values=(1,),
                            other_value=2,
                            pinned=(("y", 2), ("x", 1), ("y", 999)))
        # ("y", 999) is dead (first wins in value_for), so contents match.
        assert a.canonical() == b.canonical()

    def test_distinct_canonicals_distinct_fingerprints(self):
        a = canonical_assignment(HomoAssignment(values=(("a", 1),)))
        b = canonical_assignment(HomoAssignment(values=(("a", 2),)))
        assert fingerprint(a) != fingerprint(b)


# ---------------------------------------------------------------------------
# the cache proper
# ---------------------------------------------------------------------------
class TestExecutionCache:
    def test_deterministic_entry_ignores_seed(self):
        cache = ExecutionCache()
        outcome = RunOutcome(ok=True)
        assert cache.store("t", ORIGINAL, seed=1, outcome=outcome,
                           seed_sensitive=False)
        assert cache.lookup("t", ORIGINAL, seed=999).ok
        assert cache.hits == 1 and cache.deterministic_entries == 1

    def test_seeded_entry_requires_exact_seed(self):
        cache = ExecutionCache()
        cache.store("t", ORIGINAL, seed=1, outcome=RunOutcome(ok=False),
                    seed_sensitive=True)
        assert cache.lookup("t", ORIGINAL, seed=1) is not None
        assert cache.lookup("t", ORIGINAL, seed=2) is None
        assert cache.seeded_entries == 1 and cache.deterministic_entries == 0

    def test_infra_outcomes_never_cached(self):
        cache = ExecutionCache()
        infra = RunOutcome(ok=False, infra=True)
        assert not cache.store("t", ORIGINAL, seed=1, outcome=infra,
                               seed_sensitive=False)
        assert cache.bypasses == 1 and len(cache) == 0
        assert cache.lookup("t", ORIGINAL, seed=1) is None

    def test_lookup_returns_a_copy(self):
        cache = ExecutionCache()
        cache.store("t", ORIGINAL, seed=1, outcome=RunOutcome(ok=True),
                    seed_sensitive=False)
        served = cache.lookup("t", ORIGINAL, seed=1)
        served.ok = False
        assert cache.lookup("t", ORIGINAL, seed=1).ok

    def test_keys_partition_by_test_name(self):
        cache = ExecutionCache()
        cache.store("t1", ORIGINAL, seed=1, outcome=RunOutcome(ok=True),
                    seed_sensitive=False)
        assert cache.lookup("t2", ORIGINAL, seed=1) is None

    def test_context_changes_the_key_space(self):
        clean = ExecutionCache(context={"fault_plan": None})
        chaos = ExecutionCache(context={"fault_plan": "moderate"})
        assert clean.context_key != chaos.context_key


# ---------------------------------------------------------------------------
# runner integration
# ---------------------------------------------------------------------------
class TestRunnerWithCache:
    def make_instance(self, test, param="synth.safe-a", round_robin=False):
        definition = SYNTH_REGISTRY.get(param)
        v1, v2 = definition.candidate_values()[:2]
        group_values = (v1, v2) if round_robin else (v1,)
        assignment = HeteroAssignment((ParamAssignment(
            param=param, group="Service", group_values=group_values,
            other_value=v2),))
        return TestInstance(
            test=test, group="Service",
            strategy="round-robin" if round_robin else CROSS,
            assignment=assignment)

    def test_shared_baselines_hit_the_cache(self):
        test = two_service_test()
        cold = TestRunner(registry=SYNTH_REGISTRY)
        hot = TestRunner(registry=SYNTH_REGISTRY, cache=ExecutionCache())
        for param in ("synth.safe-a", "synth.safe-c"):
            cold.evaluate(self.make_instance(test, param))
            hot.evaluate(self.make_instance(test, param))
        # The homo side injecting each default collapses onto the one
        # original run, so the cached runner executes strictly less.
        assert hot.executions < cold.executions
        assert hot.cache_hits > 0

    def test_cached_and_uncached_verdicts_identical(self):
        test = two_service_test()
        cold = TestRunner(registry=SYNTH_REGISTRY)
        hot = TestRunner(registry=SYNTH_REGISTRY, cache=ExecutionCache())
        for param in ("synth.mode", "synth.level", "synth.safe-a"):
            instance = self.make_instance(test, param)
            assert (cold.evaluate(instance).verdict
                    == hot.evaluate(instance).verdict)

    def test_confirmation_loop_hits_cache_for_deterministic_tests(self):
        test = two_service_test()
        runner = TestRunner(registry=SYNTH_REGISTRY, cache=ExecutionCache())
        result = runner.evaluate(self.make_instance(test, "synth.mode",
                                                    round_robin=True))
        assert result.verdict == "confirmed-unsafe"
        # Every confirmation trial of this rng-free test is a replay.
        assert runner.cache_hits >= runner.cache_misses

    def test_explicit_set_shadowing_guard(self):
        """homo(p=default) != original when the test explicitly sets p:
        the injected default shadows the set, so the collapse must be
        suppressed via collapse_exclude or it would fake a pass."""
        def body(ctx):
            conf = SynthConfiguration()
            Service(conf)
            conf.set("synth.safe-a", 42)
            if conf.get_int("synth.safe-a") != 42:
                raise TestFailure("explicit set was shadowed")

        test = UnitTest(app="synth", name="TestSynth.testSetter", fn=body)
        runner = TestRunner(registry=SYNTH_REGISTRY, cache=ExecutionCache(),
                            collapse_exclude={"synth.safe-a"})
        homo = HomoAssignment(values=(("synth.safe-a", 1),))  # the default
        assert runner.canonical_form(homo) != ORIGINAL
        original = runner.execute(test, None,
                                  execution_seed(test.full_name, ORIGINAL, 0),
                                  canonical=ORIGINAL)
        injected = runner.execute(
            test, homo, execution_seed(test.full_name,
                                       runner.canonical_form(homo), 0),
            canonical=runner.canonical_form(homo))
        assert original.ok
        assert injected.failed  # proof the two runs are NOT interchangeable

    def test_prerun_records_explicit_sets(self):
        from repro.core.prerun import prerun_test

        def body(ctx):
            conf = SynthConfiguration()
            Service(conf)
            conf.set("synth.safe-a", 42)

        profile = prerun_test(UnitTest(app="synth",
                                       name="TestSynth.testSetter", fn=body))
        assert "synth.safe-a" in profile.explicit_sets

    def test_rng_consulting_tests_get_seeded_entries(self):
        test = two_service_test(name="TestSynth.testFlaky", flaky_rate=0.3)
        cache = ExecutionCache()
        runner = TestRunner(registry=SYNTH_REGISTRY, cache=cache)
        runner.evaluate(self.make_instance(test, "synth.safe-a"))
        assert cache.seeded_entries > 0


# ---------------------------------------------------------------------------
# campaign-level equivalence (the hard invariant)
# ---------------------------------------------------------------------------
def normalized_report(report):
    record = app_report_to_dict(report)
    record.pop("executions")
    record.pop("machine_time_s")
    record.pop("exec_cache")
    record.pop("cost_centers")
    return json.dumps(record, sort_keys=True)


class TestCampaignEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        plain = synthetic_campaign().run()
        cached = synthetic_campaign(
            config=CampaignConfig(exec_cache=True)).run()
        return plain, cached

    def test_reports_byte_identical_modulo_execution_counters(self, pair):
        plain, cached = pair
        assert normalized_report(plain) == normalized_report(cached)

    def test_strictly_fewer_executions(self, pair):
        plain, cached = pair
        assert cached.executions < plain.executions
        assert cached.pool_stats.exec_cache_hits > 0

    def test_report_carries_cache_counters(self, pair):
        _, cached = pair
        record = app_report_to_dict(cached)
        assert record["exec_cache"]["enabled"] is True
        assert record["exec_cache"]["hits"] \
            == cached.pool_stats.exec_cache_hits > 0
        assert (record["exec_cache"]["hits"] + record["exec_cache"]["misses"]
                > 0)


class TestChaosCacheKeying:
    def test_active_fault_plan_disables_deterministic_entries(self):
        """Under chaos every execution is seed-sensitive: outcomes may be
        served only for their exact seed, never across trials."""
        plan = FaultPlan.moderate(seed=7)
        campaign = synthetic_campaign(
            tests=[two_service_test(), safe_only_test()],
            config=CampaignConfig(exec_cache=True, fault_plan=plan))
        report = campaign.run()
        cache = campaign._cache
        assert cache is not None and len(cache) > 0
        assert cache.deterministic_entries == 0
        assert cache.seeded_entries > 0
        # Counters surfaced in the report match the cache's own ledger.
        assert report.pool_stats.exec_cache_hits == cache.hits

    def test_chaos_verdicts_identical_with_and_without_cache(self):
        plan = FaultPlan.moderate(seed=7)
        tests = [two_service_test(), safe_only_test()]
        plain = synthetic_campaign(
            tests=tests, config=CampaignConfig(fault_plan=plan)).run()
        cached = synthetic_campaign(
            tests=tests, config=CampaignConfig(fault_plan=plan,
                                               exec_cache=True)).run()
        assert normalized_report(plain) == normalized_report(cached)

    def test_clean_and_chaos_caches_never_share_context(self):
        clean = synthetic_campaign(config=CampaignConfig(exec_cache=True))
        chaos = synthetic_campaign(
            config=CampaignConfig(exec_cache=True,
                                  fault_plan=FaultPlan.moderate(seed=7)))
        assert (clean._build_cache().context_key
                != chaos._build_cache().context_key)


class TestCheckpointRefusesMismatchedCacheMode:
    def test_resume_with_flipped_cache_mode_is_refused(self, tmp_path):
        from repro.core.checkpoint import CheckpointError
        path = str(tmp_path / "journal.jsonl")
        synthetic_campaign(
            tests=[safe_only_test()],
            config=CampaignConfig(checkpoint_path=path,
                                  exec_cache=True)).run()
        with pytest.raises(CheckpointError):
            synthetic_campaign(
                tests=[safe_only_test()],
                config=CampaignConfig(checkpoint_path=path,
                                      exec_cache=False)).run()
