"""Unit tests for wire formats: framing, codecs, encryption, SSL,
checksums, SASL negotiation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf as perf
from repro.common import wire
from repro.common.errors import ChecksumError, DecodeError, SaslError, SslError
from repro.common.wire import (CHECKSUM_TYPES, SASL_LEVELS, SUPPORTED_CODECS,
                               clear_wire_memo, compute_checksums,
                               decode_payload, encode_payload, negotiate_sasl,
                               transfer, verify_checksums)

PAYLOAD = {"op": "write", "block": 17, "data": "0011aabb"}


class TestFraming:
    def test_plain_round_trip(self):
        assert decode_payload(encode_payload(PAYLOAD)) == PAYLOAD

    @pytest.mark.parametrize("codec", SUPPORTED_CODECS)
    def test_codec_round_trip(self, codec):
        wire = encode_payload(PAYLOAD, codec=codec)
        assert decode_payload(wire, codec=codec) == PAYLOAD

    def test_encrypted_round_trip(self):
        wire = encode_payload(PAYLOAD, encryption_key=b"k1")
        assert decode_payload(wire, encryption_key=b"k1") == PAYLOAD

    def test_ssl_round_trip(self):
        wire = encode_payload(PAYLOAD, ssl=True)
        assert decode_payload(wire, ssl=True) == PAYLOAD

    def test_all_layers_round_trip(self):
        options = {"codec": "gzip", "encryption_key": b"secret", "ssl": True}
        assert transfer(PAYLOAD, options, dict(options)) == PAYLOAD

    def test_unknown_codec_rejected(self):
        with pytest.raises(DecodeError):
            encode_payload(PAYLOAD, codec="brotli-ish")


class TestMismatches:
    """Each mismatch is the mechanism behind a Table-3 failure."""

    def test_receiver_expects_compression_sender_sent_plain(self):
        with pytest.raises(DecodeError):
            transfer(PAYLOAD, {}, {"codec": "gzip"})

    def test_receiver_expects_plain_sender_compressed(self):
        with pytest.raises(DecodeError):
            transfer(PAYLOAD, {"codec": "gzip"}, {})

    def test_codec_mismatch(self):
        with pytest.raises(DecodeError):
            transfer(PAYLOAD, {"codec": "gzip"}, {"codec": "snappy"})

    def test_encryption_mismatch(self):
        with pytest.raises(DecodeError):
            transfer(PAYLOAD, {"encryption_key": b"k1"}, {})

    def test_wrong_key(self):
        with pytest.raises(DecodeError):
            transfer(PAYLOAD, {"encryption_key": b"k1"},
                     {"encryption_key": b"k2"})

    def test_plaintext_to_ssl_endpoint(self):
        with pytest.raises(SslError):
            transfer(PAYLOAD, {}, {"ssl": True})

    def test_ssl_to_plaintext_endpoint(self):
        with pytest.raises(SslError):
            transfer(PAYLOAD, {"ssl": True}, {})

    @given(st.sampled_from(SUPPORTED_CODECS), st.sampled_from(SUPPORTED_CODECS))
    @settings(max_examples=20, deadline=None)
    def test_codec_pairs_fail_iff_different(self, send, receive):
        if send == receive:
            assert transfer(PAYLOAD, {"codec": send},
                            {"codec": receive}) == PAYLOAD
        else:
            with pytest.raises(DecodeError):
                transfer(PAYLOAD, {"codec": send}, {"codec": receive})


class TestChecksums:
    def test_chunk_count(self):
        data = b"x" * 1000
        assert len(compute_checksums(data, 256, "CRC32")) == 4

    def test_empty_data_has_one_chunk(self):
        assert len(compute_checksums(b"", 512, "CRC32")) == 1

    def test_verify_accepts_own_checksums(self):
        data = b"block-data" * 50
        sums = compute_checksums(data, 128, "CRC32C")
        verify_checksums(data, sums, 128, "CRC32C")

    def test_bytes_per_checksum_mismatch_detected(self):
        data = b"block-data" * 50
        sums = compute_checksums(data, 128, "CRC32")
        with pytest.raises(ChecksumError):
            verify_checksums(data, sums, 64, "CRC32")

    def test_checksum_type_mismatch_detected(self):
        data = b"block-data" * 50
        sums = compute_checksums(data, 128, "CRC32")
        with pytest.raises(ChecksumError):
            verify_checksums(data, sums, 128, "CRC32C")

    def test_null_writer_null_reader_passes(self):
        data = b"abc" * 10
        sums = compute_checksums(data, 16, "NULL")
        verify_checksums(data, sums, 16, "NULL")

    def test_crc_writer_null_reader_detected(self):
        data = b"abc" * 10
        sums = compute_checksums(data, 16, "CRC32")
        with pytest.raises(ChecksumError):
            verify_checksums(data, sums, 16, "NULL")

    def test_nonpositive_chunk_size_rejected(self):
        with pytest.raises(ChecksumError):
            compute_checksums(b"x", 0, "CRC32")

    def test_unknown_type_rejected(self):
        with pytest.raises(ChecksumError):
            compute_checksums(b"x", 8, "MD5ish")

    @given(st.binary(min_size=1, max_size=2048),
           st.integers(min_value=1, max_value=512),
           st.sampled_from(("CRC32", "CRC32C")))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, data, chunk, ctype):
        sums = compute_checksums(data, chunk, ctype)
        verify_checksums(data, sums, chunk, ctype)

    @given(st.binary(min_size=4, max_size=512),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_corruption_detected_property(self, data, chunk):
        sums = compute_checksums(data, chunk, "CRC32")
        corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
        with pytest.raises(ChecksumError):
            verify_checksums(corrupted, sums, chunk, "CRC32")


class TestWireMemo:
    """The frame memo: digest keys, bounded size, partial eviction."""

    def setup_method(self):
        self._prev = perf.set_fast_path(True)
        clear_wire_memo()

    def teardown_method(self):
        perf.set_fast_path(self._prev)
        clear_wire_memo()

    def test_fast_path_bytes_identical_to_legacy(self):
        payloads = [
            PAYLOAD,
            {"method": "sendHeartbeat", "node": "dn-0", "blocks": 128},
            {"manifest": list(range(512)), "meta": {"gen": 7}},
            {"nested": {"a": [1, {"b": None}], "c": True}},
        ]
        options = [
            {"codec": "gzip"},
            {"encryption_key": b"sasl-privacy-wrap"},
            {"ssl": True},
            {"codec": "zstd", "encryption_key": b"k", "ssl": True},
        ]
        for payload in payloads:
            for opts in options:
                perf.set_fast_path(False)
                legacy = encode_payload(payload, **opts)
                perf.set_fast_path(True)
                clear_wire_memo()
                assert encode_payload(payload, **opts) == legacy
                # and the memoised second encode too
                assert encode_payload(payload, **opts) == legacy

    def test_hot_key_survives_overflow(self):
        hot = {"method": "sendHeartbeat", "node": "dn-0", "blocks": 128}
        for i in range(wire._WIRE_MEMO_MAX - 1):
            encode_payload({"cold": i}, codec="gzip")
        first = encode_payload(hot, codec="gzip")
        # these inserts trip the eviction threshold; the hot frame is in
        # the newest half and must survive (a full clear() would drop it)
        for i in range(100):
            encode_payload({"cold2": i}, codec="gzip")
        assert len(wire._ENCODE_MEMO) <= wire._WIRE_MEMO_MAX
        assert encode_payload(hot, codec="gzip") is first

    def test_memo_stays_bounded(self):
        for i in range(wire._WIRE_MEMO_MAX + 300):
            encode_payload({"cold": i}, codec="gzip")
        assert len(wire._ENCODE_MEMO) <= wire._WIRE_MEMO_MAX

    def test_decode_memo_partial_eviction(self):
        frames = [encode_payload({"cold": i}, codec="gzip")
                  for i in range(wire._WIRE_MEMO_MAX + 10)]
        clear_wire_memo()
        for frame in frames:
            decode_payload(frame, codec="gzip")
        assert len(wire._DECODE_MEMO) <= wire._WIRE_MEMO_MAX
        # the most recent frame is still cached
        recent_key = (frames[-1], "gzip", None, False)
        assert recent_key in wire._DECODE_MEMO


class TestSasl:
    @pytest.mark.parametrize("level", SASL_LEVELS)
    def test_matching_levels_negotiate(self, level):
        assert negotiate_sasl(level, level) == level

    @given(st.sampled_from(SASL_LEVELS), st.sampled_from(SASL_LEVELS))
    @settings(max_examples=20, deadline=None)
    def test_mismatch_fails_iff_different(self, client, server):
        if client == server:
            assert negotiate_sasl(client, server) == client
        else:
            with pytest.raises(SaslError):
                negotiate_sasl(client, server)

    def test_invalid_level_rejected(self):
        with pytest.raises(SaslError):
            negotiate_sasl("maximum", "privacy")
