"""Focused unit tests for mini-HBase internals + markdown reporting."""

from __future__ import annotations

import pytest

from repro.apps.hbase import HBaseConfiguration, MiniHBaseCluster
from repro.common.errors import NodeStateError, RpcError


@pytest.fixture()
def hbase():
    conf = HBaseConfiguration()
    cluster = MiniHBaseCluster(conf, num_regionservers=2, with_rest=True)
    cluster.start()
    yield conf, cluster
    cluster.shutdown()


class TestMaster:
    def test_regions_assigned_round_robin(self, hbase):
        conf, cluster = hbase
        cluster.master.create_table("rr", num_regions=4)
        counts = sorted(len(rs.regions) for rs in cluster.regionservers)
        assert counts == [2, 2]

    def test_duplicate_table_rejected(self, hbase):
        conf, cluster = hbase
        cluster.master.create_table("dup")
        with pytest.raises(RpcError, match="already exists"):
            cluster.master.create_table("dup")

    def test_locate_region_is_deterministic(self, hbase):
        conf, cluster = hbase
        cluster.master.create_table("route", num_regions=3)
        first = cluster.master.locate_region("route", "rowK")
        second = cluster.master.locate_region("route", "rowK")
        assert first is second

    def test_locate_unknown_table_rejected(self, hbase):
        conf, cluster = hbase
        with pytest.raises(RpcError, match="no such table"):
            cluster.master.locate_region("ghost", "row")

    def test_rest_status_counts(self, hbase):
        conf, cluster = hbase
        cluster.master.create_table("one")
        status = cluster.rest_server.http.handle("http", "/status/cluster")
        assert status == {"regionservers": 2, "tables": 1}


class TestRegionServer:
    def test_stopped_server_refuses_ops(self, hbase):
        conf, cluster = hbase
        server = cluster.regionservers[0]
        server.stop()
        with pytest.raises(NodeStateError):
            server.put("r", "v")

    def test_get_missing_row_returns_none(self, hbase):
        conf, cluster = hbase
        assert cluster.regionservers[0].get("missing") is None

    def test_regionserver_lookup(self, hbase):
        conf, cluster = hbase
        assert cluster.regionserver("rs1").rs_id == "rs1"
        assert cluster.regionserver("rs9") is None


class TestMarkdownReport:
    @pytest.fixture(scope="class")
    def synth_report(self):
        from repro.core.orchestrator import Campaign, CampaignConfig
        from synthetic_app import SYNTH_REGISTRY, two_service_test
        return Campaign("synth", SYNTH_REGISTRY, tests=[two_service_test()],
                        config=CampaignConfig()).run()

    def test_app_markdown_contains_verdict_table(self, synth_report):
        from repro.core.reportmd import app_report_markdown
        text = app_report_markdown(synth_report)
        assert "# ZebraConf campaign: synth" in text
        assert "| synth.mode | **TRUE PROBLEM** |" in text
        assert "## Run statistics" in text

    def test_campaign_markdown_lists_table3_reasons(self, synth_report):
        from repro.core.report import CampaignReport
        from repro.core.reportmd import campaign_report_markdown
        text = campaign_report_markdown(CampaignReport(apps=[synth_report]))
        assert "# ZebraConf evaluation" in text
        assert "`synth.mode`" in text

    def test_cli_markdown_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "flink.md"
        assert main(["campaign", "flink", "--markdown", str(path)]) == 0
        text = path.read_text()
        assert "# ZebraConf campaign: flink" in text
        assert "akka.ssl.enabled" in text
