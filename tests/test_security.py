"""Unit tests for tokens, encryption keys, and delegation tokens."""

from __future__ import annotations

import pytest

from repro.common.errors import (AccessTokenError, HandshakeError,
                                 TokenExpiredError)
from repro.common.security import (BlockToken, BlockTokenSecretManager,
                                   BlockTokenVerifier, DataEncryptionKey,
                                   DataEncryptionKeyManager,
                                   DataEncryptionKeyStore,
                                   DelegationTokenManager)


class TestBlockTokens:
    def test_disabled_manager_mints_nothing(self):
        manager = BlockTokenSecretManager(enabled=False)
        assert manager.current_keys() is None
        assert manager.mint(1) is None

    def test_enabled_manager_mints_under_current_key(self):
        manager = BlockTokenSecretManager(enabled=True)
        token = manager.mint(7)
        assert token.block_id == 7
        assert token.key_id in manager.current_keys()

    def test_key_roll_changes_key_window(self):
        manager = BlockTokenSecretManager(enabled=True)
        before = manager.current_keys()
        manager.roll_key()
        assert manager.current_keys() != before

    def test_enabled_verifier_requires_keys(self):
        verifier = BlockTokenVerifier(enabled=True)
        with pytest.raises(AccessTokenError):
            verifier.install_keys(None)  # NameNode has tokens disabled

    def test_disabled_verifier_accepts_missing_keys(self):
        verifier = BlockTokenVerifier(enabled=False)
        verifier.install_keys(None)
        verifier.verify(None, block_id=1)  # no enforcement

    def test_verify_accepts_valid_token(self):
        manager = BlockTokenSecretManager(enabled=True)
        verifier = BlockTokenVerifier(enabled=True)
        verifier.install_keys(manager.current_keys())
        verifier.verify(manager.mint(5), block_id=5)

    def test_verify_rejects_missing_token(self):
        verifier = BlockTokenVerifier(enabled=True)
        verifier.install_keys([0, 1])
        with pytest.raises(AccessTokenError):
            verifier.verify(None, block_id=5)

    def test_verify_rejects_wrong_block(self):
        verifier = BlockTokenVerifier(enabled=True)
        verifier.install_keys([0, 1])
        with pytest.raises(AccessTokenError):
            verifier.verify(BlockToken(block_id=4, key_id=0), block_id=5)

    def test_verify_rejects_unknown_key(self):
        verifier = BlockTokenVerifier(enabled=True)
        verifier.install_keys([0, 1])
        with pytest.raises(AccessTokenError):
            verifier.verify(BlockToken(block_id=5, key_id=42), block_id=5)


class TestEncryptionKeys:
    def test_disabled_manager_issues_no_key(self):
        assert DataEncryptionKeyManager(enabled=False).current_key() is None

    def test_roll_produces_fresh_material(self):
        manager = DataEncryptionKeyManager(enabled=True)
        first = manager.current_key()
        manager.roll()
        second = manager.current_key()
        assert second.key_id != first.key_id
        assert second.material != first.material

    def test_store_lookup_after_install(self):
        store = DataEncryptionKeyStore(enabled=True)
        store.install(DataEncryptionKey(100, b"material"))
        assert store.lookup(100) == b"material"
        assert store.current.key_id == 100
        assert store.has_keys()

    def test_missing_key_is_the_paper_failure(self):
        store = DataEncryptionKeyStore(enabled=True)
        with pytest.raises(HandshakeError, match="missing"):
            store.lookup(100)

    def test_install_none_is_noop(self):
        store = DataEncryptionKeyStore(enabled=True)
        store.install(None)
        assert not store.has_keys()


class TestDelegationTokens:
    def test_expiry_is_issue_plus_interval(self):
        manager = DelegationTokenManager(renew_interval_fn=lambda: 100.0)
        token = manager.issue(now=5.0)
        assert token.expiry_time == 105.0

    def test_interval_reread_per_issue(self):
        interval = {"value": 100.0}
        manager = DelegationTokenManager(
            renew_interval_fn=lambda: interval["value"])
        first = manager.issue(now=0.0)
        interval["value"] = 10.0
        second = manager.issue(now=1.0)
        # the paper's anomaly: the newer token expires earlier
        assert second.expiry_time < first.expiry_time

    def test_token_ids_increment(self):
        manager = DelegationTokenManager(renew_interval_fn=lambda: 1.0)
        assert manager.issue(0.0).token_id < manager.issue(0.0).token_id

    def test_check_valid(self):
        manager = DelegationTokenManager(renew_interval_fn=lambda: 10.0)
        token = manager.issue(now=0.0)
        token.check_valid(now=5.0)
        with pytest.raises(TokenExpiredError):
            token.check_valid(now=11.0)
