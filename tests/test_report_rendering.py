"""Unit tests for report structures, rendering, and JSON export."""

from __future__ import annotations

import json

import pytest

from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import (CampaignReport, StageCounts,
                               app_report_to_dict, campaign_report_to_dict,
                               render_summary, render_table,
                               render_unsafe_params, verdict_to_dict)
from repro.core.triage import FALSE_POSITIVE, TRUE_PROBLEM, ParamVerdict
from synthetic_app import SYNTH_REGISTRY, client_vs_service_test, two_service_test


@pytest.fixture(scope="module")
def synth_report():
    campaign = Campaign("synth", SYNTH_REGISTRY,
                        tests=[two_service_test(), client_vs_service_test()],
                        config=CampaignConfig())
    return campaign.run()


class TestStageCounts:
    def test_reduction_orders(self):
        counts = StageCounts(original=100000, after_prerun=1000,
                             after_uncertainty=900, after_pooling=100)
        assert counts.reduction_orders() == pytest.approx(3.0)

    def test_zero_guard(self):
        assert StageCounts().reduction_orders() == 0.0

    def test_rows_order(self):
        names = [name for name, _ in StageCounts().rows()]
        assert names == ["Original", "After pre-running unit tests",
                         "After removing uncertainty", "After pooled testing"]


class TestUniqueDedup:
    def test_true_problem_wins_over_fp(self, synth_report):
        report = CampaignReport(apps=[synth_report])
        merged = report.unique_verdicts()
        assert set(merged) == {v.param for v in synth_report.verdicts}

    def test_duplicate_across_apps_counted_once(self, synth_report):
        report = CampaignReport(apps=[synth_report, synth_report])
        assert (len(report.unique_true_problems())
                == len(synth_report.true_problems))


class TestJsonExport:
    def test_app_report_round_trips_through_json(self, synth_report):
        data = json.loads(json.dumps(app_report_to_dict(synth_report)))
        assert data["app"] == "synth"
        assert set(data["true_problems"]) == {"synth.mode", "synth.level"}
        assert data["executions"] > 0
        assert data["stage_counts"]["Original"] > 0
        assert data["hypothesis_testing"]["confirmed"] >= 2
        assert data["prerun"]["total_tests"] == 2

    def test_campaign_report_dict(self, synth_report):
        report = CampaignReport(apps=[synth_report])
        data = campaign_report_to_dict(report)
        assert data["unique_true_problems"] == ["synth.level", "synth.mode"]
        assert data["total_machine_hours"] > 0

    def test_verdict_dict_fields(self):
        verdict = ParamVerdict(param="p", verdict=TRUE_PROBLEM,
                               category="others", failing_tests=("a::t",),
                               sample_error="boom")
        data = verdict_to_dict(verdict)
        assert data == {"param": "p", "verdict": TRUE_PROBLEM,
                        "category": "others", "fp_reason": "",
                        "failing_tests": ["a::t"], "sample_error": "boom"}


class TestRenderers:
    def test_render_table_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert text.splitlines()[0].startswith("a")

    def test_render_summary_counts(self, synth_report):
        report = CampaignReport(apps=[synth_report])
        text = render_summary(report)
        assert "true problems            : 2" in text

    def test_render_unsafe_params_sections(self, synth_report):
        report = CampaignReport(apps=[synth_report])
        text = render_unsafe_params(report)
        assert "synth.mode" in text and "synth.level" in text
