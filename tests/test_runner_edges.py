"""Edge cases for TestRunner and multi-valued assignments."""

from __future__ import annotations

import pytest

from repro.core.confagent import UNIT_TEST
from repro.core.runner import (BASELINE_FAIL, CONFIRMED_UNSAFE,
                               FLAKY_DISMISSED, PASS, TestRunner)
from repro.core.testgen import (CROSS, HeteroAssignment, HomoAssignment,
                                ParamAssignment, TestInstance)
from synthetic_app import SYNTH_REGISTRY, two_service_test


class TestThreeSidedAssignments:
    def make(self):
        # three distinct values across the cluster: group nodes alternate
        # 1/2, everyone else gets 3
        return HeteroAssignment((ParamAssignment(
            param="synth.safe-a", group="Service", group_values=(1, 2),
            other_value=3),))

    def test_sides_counts_distinct_values(self):
        assert self.make().sides() == 3

    def test_each_homo_variant_is_uniform(self):
        assignment = self.make()
        for side in range(assignment.sides()):
            homo = assignment.homo_variant(side)
            values = {homo.value_for(entity, index, "synth.safe-a")
                      for entity in ("Service", "Other", UNIT_TEST)
                      for index in range(4)}
            assert len(values) == 1

    def test_homo_variants_cover_all_values(self):
        assignment = self.make()
        covered = {assignment.homo_variant(side).value_for("Service", 0,
                                                           "synth.safe-a")
                   for side in range(assignment.sides())}
        assert covered == {1, 2, 3}

    def test_side_index_clamped_per_parameter(self):
        # a pooled assignment where one param has 2 distinct values and
        # another has 3: side 2 clamps the two-valued parameter
        assignment = HeteroAssignment((
            ParamAssignment(param="synth.safe-a", group="Service",
                            group_values=(1, 2), other_value=3),
            ParamAssignment(param="synth.safe-c", group="Service",
                            group_values=(7,), other_value=700),
        ))
        assert assignment.sides() == 3
        homo = assignment.homo_variant(2)
        assert homo.value_for("Service", 0, "synth.safe-a") == 3
        assert homo.value_for("Service", 0, "synth.safe-c") == 700

    def test_first_trial_runs_three_homo_sides(self):
        runner = TestRunner()
        instance = TestInstance(test=two_service_test(), group="Service",
                                strategy=CROSS, assignment=self.make())
        result = runner.evaluate(instance)
        assert result.verdict == PASS
        assert result.executions == 4  # hetero + three homo sides


class TestHomoAssignment:
    def test_pinned_wins_over_values(self):
        homo = HomoAssignment(values=(("a", 1),), pinned=(("a", 9),))
        assert homo.value_for("X", 0, "a") == 9

    def test_unknown_param_untouched(self):
        from repro.core.confagent import NO_OVERRIDE
        homo = HomoAssignment(values=(("a", 1),))
        assert homo.value_for("X", 0, "b") is NO_OVERRIDE


class TestTrialBudget:
    def test_max_trials_bounds_confirmation(self):
        runner = TestRunner(max_trials=6)
        test = two_service_test(name="TestSynth.testVeryFlaky",
                                flaky_rate=0.45, flaky=True)
        assignment = HeteroAssignment((ParamAssignment(
            param="synth.safe-b", group="Service", group_values=(False,),
            other_value=True),))
        instance = TestInstance(test=test, group="Service", strategy=CROSS,
                                assignment=assignment)
        for attempt in range(4):
            result = runner.evaluate(instance)
            if result.tally is not None:
                assert result.tally.hetero_trials <= 6
                assert result.verdict in (FLAKY_DISMISSED, BASELINE_FAIL)

    def test_hopeless_short_circuits(self):
        """When homo fails as often as hetero early on, the loop stops
        well before max_trials."""
        runner = TestRunner(max_trials=40)
        test = two_service_test(name="TestSynth.testCoinFlip",
                                flaky_rate=0.9, flaky=True)
        assignment = HeteroAssignment((ParamAssignment(
            param="synth.safe-b", group="Service", group_values=(False,),
            other_value=True),))
        instance = TestInstance(test=test, group="Service", strategy=CROSS,
                                assignment=assignment)
        result = runner.evaluate(instance)
        if result.tally is not None:
            assert result.verdict != CONFIRMED_UNSAFE
            assert result.tally.hetero_trials < 40
