"""Fault injection: determinism, statistical robustness, runner hardening.

The chaos mini-app below runs on the full substrate (MiniCluster + Node +
RPC), so every injector hook fires for real: message drops/duplicates hit
:mod:`repro.common.ipc`, crash/restart cycles hit the node lifecycle, and
clock jitter perturbs the simulator.  ``chaos.window`` is planted
heterogeneous-unsafe; ``chaos.buffer`` is safe, so anything reported
against it under chaos is an injected false positive the hypothesis
testing must dismiss.
"""

from __future__ import annotations

import pytest

from repro.common.cluster import MiniCluster
from repro.common.configuration import Configuration
from repro.common.errors import InfrastructureError, TestFailure
from repro.common.faults import (FaultInjector, FaultPlan, current_injector,
                                 fault_scope)
from repro.common.ipc import RpcClient, RpcServer
from repro.common.node import Node, node_init, register_node_type
from repro.common.params import ENUM, INT, ParamRegistry
from repro.common.simulation import (SimTimeLimitExceeded, Simulator,
                                     sim_time_limit)
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.registry import TestContext, UnitTest
from repro.core.report import app_report_to_dict
from repro.core.runner import (CONFIRMED_UNSAFE, INFRA_ERROR, TestRunner,
                               stable_seed)
from repro.core.testgen import HeteroAssignment, ParamAssignment, TestInstance

# ---------------------------------------------------------------------------
# the chaos mini-app
# ---------------------------------------------------------------------------
CHAOS_REGISTRY = ParamRegistry("chaos")
CHAOS_REGISTRY.define("chaos.window", INT, 100, candidates=(100, 10000))
CHAOS_REGISTRY.define("chaos.buffer", INT, 4096, candidates=(4096, 65536))
# read by the RPC substrate during the SASL handshake; campaigns below
# restrict testing to the chaos.* parameters, so it only needs a default.
CHAOS_REGISTRY.define("hadoop.rpc.protection", ENUM, "authentication",
                      values=("authentication", "integrity", "privacy"))

register_node_type("chaos", "Worker")


class ChaosConfiguration(Configuration):
    registry = CHAOS_REGISTRY


class Worker(Node):
    node_type = "Worker"

    def __init__(self, conf: Configuration, cluster: MiniCluster) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.window = self.conf.get_int("chaos.window")
            self.buffer = self.conf.get_int("chaos.buffer")
            self.server = RpcServer("Worker", self.conf)
            self.server.register("window", lambda: self.window)
        self.start()


def chaos_test(name: str = "TestChaos.testWindowAgreement") -> UnitTest:
    """Two workers must agree on chaos.window with the unit test's view."""

    def body(ctx: TestContext) -> None:
        conf = ChaosConfiguration()
        with MiniCluster() as cluster:
            first = cluster.add_node(Worker(conf, cluster))
            second = cluster.add_node(Worker(conf, cluster))
            cluster.run_for(30.0)  # a crash window for injected faults
            if not (first.running and second.running):
                return  # a node crashed: nothing to compare this round
            client = RpcClient(first.conf)
            peer_window = client.call(second.server, "window")
            test_view = conf.get_int("chaos.window")
            if first.window != peer_window or peer_window != test_view:
                raise TestFailure("chaos.window mismatch across entities")

    return UnitTest(app="chaos", name=name, fn=body)


def chaos_campaign(fault_plan=None, tests: int = 12, **config_kwargs):
    config_kwargs.setdefault("only_params",
                             frozenset(("chaos.window", "chaos.buffer")))
    config = CampaignConfig(fault_plan=fault_plan, **config_kwargs)
    corpus = [chaos_test(name="TestChaos.testWindowAgreement%02d" % index)
              for index in range(tests)]
    return Campaign("chaos", CHAOS_REGISTRY, tests=corpus, config=config)


def chaos_instance(param: str = "chaos.window") -> TestInstance:
    assignment = HeteroAssignment((ParamAssignment(
        param=param, group="Worker", group_values=(100, 10000),
        other_value=10000),))
    return TestInstance(test=chaos_test(), group="Worker",
                        strategy="round-robin", assignment=assignment)


# ---------------------------------------------------------------------------
# injector determinism
# ---------------------------------------------------------------------------
class TestInjectorDeterminism:
    def drain(self, injector: FaultInjector, n: int = 200):
        return ([injector.drop_message("m%d" % i) for i in range(n)],
                [injector.message_delay("m%d" % i) for i in range(n)],
                [injector.duplicate_message("m%d" % i) for i in range(n)],
                [injector.io_slowdown() for _ in range(n)],
                [injector.clock_jitter(1.0) for _ in range(n)])

    def test_same_seed_identical_schedule(self):
        plan = FaultPlan.moderate(seed=42)
        assert self.drain(FaultInjector(plan, 7)) == \
            self.drain(FaultInjector(plan, 7))

    def test_different_seed_different_schedule(self):
        plan = FaultPlan.moderate(seed=42)
        assert self.drain(FaultInjector(plan, 7)) != \
            self.drain(FaultInjector(plan, 8))

    def test_inert_plan_is_inactive(self):
        assert not FaultPlan().active
        assert FaultPlan.moderate().active

    def test_null_injector_outside_scope(self):
        injector = current_injector()
        assert not injector.active
        assert not injector.drop_message("x")
        assert injector.io_slowdown() == 1.0

    def test_fault_scope_activates_and_restores(self):
        injector = FaultInjector(FaultPlan.moderate(1), 1)
        with fault_scope(injector):
            assert current_injector() is injector
        assert not current_injector().active

    def test_counts_track_emissions(self):
        plan = FaultPlan(seed=1, drop_prob=1.0)
        injector = FaultInjector(plan, 1)
        assert injector.drop_message("a") and injector.drop_message("b")
        assert injector.counts["drop"] == 2
        assert injector.total_faults == 2


# ---------------------------------------------------------------------------
# kernel support
# ---------------------------------------------------------------------------
class TestWatchdog:
    def test_time_limit_stops_runaway_simulation(self):
        def forever():
            while True:
                yield 1.0

        with sim_time_limit(100.0):
            sim = Simulator()
            sim.spawn(forever())
            with pytest.raises(SimTimeLimitExceeded):
                sim.run(max_time=1e9)
        assert sim.now == pytest.approx(100.0)

    def test_no_limit_by_default(self):
        assert Simulator().time_limit is None

    def test_clock_jitter_rescales_delays(self):
        plan = FaultPlan(seed=3, clock_jitter=0.2)
        injector = FaultInjector(plan, 3)
        with fault_scope(injector):
            sim = Simulator()
            injector.attach_clock(sim)
            fired = []
            sim.schedule(10.0, lambda: fired.append(sim.now))
            sim.run()
        assert fired and 8.0 <= fired[0] <= 12.0
        assert fired[0] != 10.0


# ---------------------------------------------------------------------------
# node lifecycle faults
# ---------------------------------------------------------------------------
class TestNodeFaults:
    def test_crash_prob_one_crashes_and_restarts_nodes(self):
        plan = FaultPlan(seed=5, crash_prob=1.0, crash_window_s=(1.0, 5.0),
                         restart_delay_s=(1.0, 2.0))
        injector = FaultInjector(plan, 5)
        with fault_scope(injector):
            conf = ChaosConfiguration()
            with MiniCluster() as cluster:
                worker = cluster.add_node(Worker(conf, cluster))
                cluster.run_for(20.0)
                assert worker.crashes == 1
                assert worker.running  # restarted after the outage
        assert injector.counts["crash"] == 1
        assert injector.counts["restart"] == 1

    def test_crash_prob_zero_never_crashes(self):
        injector = FaultInjector(FaultPlan(seed=5, drop_prob=0.5), 5)
        with fault_scope(injector):
            conf = ChaosConfiguration()
            with MiniCluster() as cluster:
                worker = cluster.add_node(Worker(conf, cluster))
                cluster.run_for(20.0)
                assert worker.crashes == 0


# ---------------------------------------------------------------------------
# runner hardening
# ---------------------------------------------------------------------------
class TestRunnerHardening:
    def test_watchdog_produces_timeout_outcome(self):
        def runaway(ctx):
            sim = Simulator()

            def forever():
                while True:
                    yield 3600.0

            sim.spawn(forever())
            sim.run(max_time=1e12)

        test = UnitTest(app="chaos", name="TestChaos.testRunaway", fn=runaway)
        runner = TestRunner(watchdog_sim_s=1000.0)
        outcome = runner.execute(test, None, seed=1)
        assert outcome.failed and outcome.timed_out
        assert outcome.error_type == "TestTimeout"
        assert not outcome.infra  # a timeout is oracle evidence, not infra

    def test_infra_errors_are_retried_with_backoff(self):
        attempts = []

        def flaky_harness(ctx):
            attempts.append(1)
            if len(attempts) < 3:
                raise InfrastructureError("container lost")

        test = UnitTest(app="chaos", name="TestChaos.testInfra",
                        fn=flaky_harness)
        runner = TestRunner(infra_retries=2)
        outcome = runner.execute(test, None, seed=1)
        assert outcome.ok
        assert outcome.retries == 2
        assert runner.retries_performed == 2
        assert runner.backoff_cost_s > 0
        assert runner.machine_time_s > 3 * runner.run_cost_s

    def test_infra_retries_exhausted_reports_infra(self):
        def dead_harness(ctx):
            raise InfrastructureError("rack on fire")

        test = UnitTest(app="chaos", name="TestChaos.testDead",
                        fn=dead_harness)
        runner = TestRunner(infra_retries=1)
        outcome = runner.execute(test, None, seed=1)
        assert outcome.failed and outcome.infra
        assert outcome.retries == 1

    def test_infra_error_yields_infra_verdict_not_unsafe(self):
        plan = FaultPlan(seed=1, infra_error_prob=1.0)
        runner = TestRunner(fault_plan=plan, infra_retries=1)
        result = runner.evaluate(chaos_instance())
        assert result.verdict == INFRA_ERROR

    def test_oracle_failures_never_retried(self):
        calls = []

        def failing(ctx):
            calls.append(1)
            raise TestFailure("real assertion failure")

        test = UnitTest(app="chaos", name="TestChaos.testOracle", fn=failing)
        runner = TestRunner(infra_retries=3)
        outcome = runner.execute(test, None, seed=1)
        assert outcome.failed and not outcome.infra
        assert len(calls) == 1

    def test_fault_counts_aggregate_on_runner(self):
        plan = FaultPlan(seed=2, drop_prob=0.5)
        runner = TestRunner(fault_plan=plan)
        runner.evaluate(chaos_instance())
        assert runner.fault_counts.get("drop", 0) > 0


# ---------------------------------------------------------------------------
# campaigns under chaos
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosCampaign:
    PLAN = FaultPlan(seed=11, drop_prob=0.15, delay_prob=0.1,
                     duplicate_prob=0.02, crash_prob=0.05,
                     io_slowdown_prob=0.05, clock_jitter=0.02,
                     infra_error_prob=0.01)

    @pytest.fixture(scope="class")
    def report(self):
        return chaos_campaign(fault_plan=self.PLAN).run()

    def test_same_seed_chaos_campaign_is_bit_reproducible(self, report):
        again = chaos_campaign(fault_plan=self.PLAN).run()
        assert app_report_to_dict(again) == app_report_to_dict(report)

    def test_unsafe_param_still_confirmed_under_chaos(self, report):
        found = {v.param for v in report.verdicts}
        assert "chaos.window" in found

    def test_injected_flakiness_dismissed_on_safe_param(self, report):
        assert "chaos.buffer" not in {v.param for v in report.verdicts}
        assert report.hypothesis_stats.filtered_as_flaky >= 1

    def test_faults_were_actually_injected(self, report):
        assert sum(report.fault_counts.values()) > 0
        assert "drop" in report.fault_counts

    def test_clean_campaign_reports_no_faults(self):
        clean = chaos_campaign().run()
        assert clean.fault_counts == {}
        assert clean.infra_retries_performed == 0
        assert {v.param for v in clean.verdicts} == {"chaos.window"}

    def test_trace_records_fault_and_retry_events(self):
        from repro.core.tracelog import TraceLog
        trace = TraceLog()
        chaos_campaign(fault_plan=self.PLAN, trace=trace).run()
        kinds = {event.kind for event in trace}
        assert "fault" in kinds
        fault_kinds = {e.data["fault"] for e in trace.of_kind("fault")}
        assert fault_kinds & {"drop", "delay", "crash", "infra-error"}
