"""Tests for the process-backed profile scheduler (repro.core.parallel)."""

from __future__ import annotations

import json

import pytest

from repro.core import parallel
from repro.core.orchestrator import Campaign, CampaignConfig, ProfileOutcome
from repro.core.pooling import PoolStats
from repro.core.report import app_report_to_dict
from repro.core.runner import TestRunner
from repro.core.testgen import (ROUND_ROBIN, HeteroAssignment,
                                ParamAssignment, TestInstance)
from synthetic_app import SYNTH_REGISTRY, safe_only_test, two_service_test
from test_orchestrator import synthetic_campaign


def full_dict(report):
    record = app_report_to_dict(report)
    # Supervision counters are run-scoped operations (workers spawned,
    # respawns...), not findings: backends legitimately differ there.
    record.pop("supervision")
    return json.dumps(record, sort_keys=True)


def decoupled_config(**kw):
    """Profiles fully independent (no cross-profile blacklist coupling),
    so any backend and any scheduling order must agree byte for byte."""
    return CampaignConfig(blacklist_threshold=999, **kw)


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------
class TestProfileOutcomeRoundTrip:
    def test_round_trip_preserves_everything(self):
        test = two_service_test()
        runner = TestRunner(registry=SYNTH_REGISTRY)
        definition = SYNTH_REGISTRY.get("synth.mode")
        v1, v2 = definition.candidate_values()[:2]
        instance = TestInstance(
            test=test, group="Service", strategy=ROUND_ROBIN,
            assignment=HeteroAssignment((ParamAssignment(
                param="synth.mode", group="Service", group_values=(v1, v2),
                other_value=v2),)))
        result = runner.evaluate(instance)
        outcome = ProfileOutcome(
            results=[result],
            stats=PoolStats(pool_runs=3, pool_voids=1, exec_cache_hits=5),
            executions=runner.executions,
            fault_counts={"drop": 2}, retries=1, error="")
        record = json.loads(json.dumps(
            parallel.profile_outcome_to_dict(outcome)))
        restored = parallel.profile_outcome_from_dict(
            record, {test.full_name: test})
        assert restored.stats == outcome.stats
        assert restored.executions == outcome.executions
        assert restored.fault_counts == {"drop": 2}
        assert restored.retries == 1
        assert len(restored.results) == 1
        assert restored.results[0].verdict == result.verdict
        assert restored.results[0].instance.test is test  # live corpus entry


# ---------------------------------------------------------------------------
# backend equivalence
# ---------------------------------------------------------------------------
class TestProcessBackend:
    def test_process_backend_matches_sequential_byte_for_byte(self):
        sequential = synthetic_campaign(config=decoupled_config()).run()
        process = synthetic_campaign(config=decoupled_config(
            workers=2, parallel_backend="process")).run()
        assert full_dict(sequential) == full_dict(process)

    def test_process_backend_with_exec_cache(self):
        sequential = synthetic_campaign(
            config=decoupled_config(exec_cache=True)).run()
        process = synthetic_campaign(config=decoupled_config(
            workers=2, parallel_backend="process", exec_cache=True)).run()
        normalize = lambda r: {  # noqa: E731
            k: v for k, v in app_report_to_dict(r).items()
            if k not in ("exec_cache", "supervision")}
        # Cache hit counts can differ (each worker owns a private forked
        # cache) but verdicts, stats, and executions-shape must not.
        assert (json.dumps(normalize(sequential), sort_keys=True)
                == json.dumps(normalize(process), sort_keys=True))

    def test_process_backend_replays_blacklist_into_parent(self):
        report = synthetic_campaign(config=CampaignConfig(
            workers=2, parallel_backend="process",
            blacklist_threshold=1)).run()
        assert set(report.blacklisted) >= {"synth.mode", "synth.level"}

    def test_process_backend_journals_checkpoint_in_parent(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        first = synthetic_campaign(config=decoupled_config(
            workers=2, parallel_backend="process",
            checkpoint_path=path)).run()
        # Resume: every profile is restored from the parent-written
        # journal, reproducing the first report (restored outcomes keep
        # their journaled execution counts).
        resumed = synthetic_campaign(config=decoupled_config(
            workers=2, parallel_backend="process",
            checkpoint_path=path)).run()
        assert full_dict(resumed) == full_dict(first)

    def test_fork_unavailable_falls_back_to_threads(self, monkeypatch):
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        report = synthetic_campaign(config=decoupled_config(
            workers=2, parallel_backend="process")).run()
        sequential = synthetic_campaign(config=decoupled_config()).run()
        assert full_dict(report) == full_dict(sequential)

    def test_unknown_backend_rejected(self):
        campaign = synthetic_campaign(config=CampaignConfig(
            workers=2, parallel_backend="carrier-pigeon"))
        with pytest.raises(ValueError):
            campaign.run()

    def test_degraded_profile_survives_the_pipe(self, monkeypatch):
        """A profile that crashes inside a worker comes back as a degraded
        outcome (with its partial accounting), not as a dead pool.  The
        fork inherits the monkeypatched harness, so the crash happens in
        the child."""
        from repro.core.pooling import PooledTester
        broken = two_service_test(name="TestSynth.testExplodes")
        original_run = PooledTester.run

        def exploding_run(self, test, group, strategy, units):
            if test.full_name == broken.full_name:
                raise RuntimeError("harness bug in the worker")
            return original_run(self, test, group, strategy, units)

        monkeypatch.setattr(PooledTester, "run", exploding_run)
        report = synthetic_campaign(
            tests=[broken, safe_only_test()],
            config=decoupled_config(workers=2,
                                    parallel_backend="process")).run()
        assert broken.full_name in report.degraded_tests
