"""Observability layer: spans, metrics, exporters, validators, progress.

The load-bearing invariants tested here:

* metric merges are commutative (fold order never matters), so the
  deterministic snapshot is byte-identical across serial, thread,
  process, and supervised backends of the same seeded campaign;
* span sim-times are a pure function of campaign content — two runs of
  the same campaign produce the same span tree;
* exported artifacts satisfy their own validators and reconcile exactly
  with the campaign report.
"""

from __future__ import annotations

import io
import itertools
import json
import os

import pytest

from repro.core.observe import (METRIC_CATALOG, MetricsRegistry, Observation,
                                ProgressReporter, phase_costs,
                                read_metrics_totals, reconcile_with_report,
                                validate_chrome_trace, validate_metrics_text,
                                validate_spans_jsonl, write_chrome_trace,
                                write_metrics_text, write_spans_jsonl)
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict
from synthetic_app import (SYNTH_REGISTRY, client_vs_service_test,
                           hard_crash_test, safe_only_test, two_service_test)
from test_orchestrator import synthetic_campaign

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_unknown_metric_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.counter_inc("zc_not_in_catalog_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.gauge_max("zc_executions_total", 1)
        with pytest.raises(TypeError):
            registry.hist_observe("zc_executions_total", 1)

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter_inc("zc_executions_total", -1)

    def test_constant_labels_attach_to_every_sample(self):
        registry = MetricsRegistry(constant_labels={"app": "synth"})
        registry.counter_inc("zc_executions_total", 3)
        text = registry.render_prometheus()
        assert 'zc_executions_total{app="synth"} 3' in text

    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter_inc("zc_faults_injected_total", 2, kind="io")
        registry.counter_inc("zc_faults_injected_total", 5, kind="net")
        assert registry.total("zc_faults_injected_total") == 7

    def test_histogram_bucket_placement_and_overflow(self):
        registry = MetricsRegistry()
        spec = METRIC_CATALOG["zc_pool_size"]
        registry.hist_observe("zc_pool_size", 1)       # first bucket
        registry.hist_observe("zc_pool_size", 3)       # le=4
        registry.hist_observe("zc_pool_size", 9999)    # +Inf overflow
        ((_, hist),) = registry._samples.items()
        assert len(hist.bucket_counts) == len(spec.buckets) + 1
        assert hist.bucket_counts[0] == 1
        assert hist.bucket_counts[2] == 1
        assert hist.bucket_counts[-1] == 1
        assert hist.total == 1 + 3 + 9999

    def test_merge_is_commutative(self):
        def build(counter_by, gauge, hist_values):
            registry = MetricsRegistry()
            registry.counter_inc("zc_executions_total", counter_by)
            registry.gauge_max("zc_pool_max_depth", gauge)
            for value in hist_values:
                registry.hist_observe("zc_pool_size", value)
            return registry

        ab = build(3, 2, [1, 5])
        ab.merge(build(4, 7, [2]))
        ba = build(4, 7, [2])
        ba.merge(build(3, 2, [1, 5]))
        assert (ab.render_prometheus(include_volatile=True)
                == ba.render_prometheus(include_volatile=True))
        assert ab.total("zc_executions_total") == 7
        assert ab.total("zc_pool_max_depth") == 7  # gauges take max

    def test_wire_round_trip(self):
        source = MetricsRegistry(constant_labels={"app": "synth"})
        source.counter_inc("zc_executions_total", 41)
        source.gauge_max("zc_pool_max_depth", 3)
        source.hist_observe("zc_instance_executions", 12)
        clone = MetricsRegistry()
        clone.merge_wire(json.loads(json.dumps(source.to_wire())))
        assert (clone.render_prometheus(include_volatile=True)
                == source.render_prometheus(include_volatile=True))

    def test_volatile_excluded_from_deterministic_snapshot(self):
        registry = MetricsRegistry()
        registry.counter_inc("zc_executions_total")
        registry.counter_inc("zc_runtime_respawns_total")
        deterministic = registry.render_prometheus()
        assert "zc_runtime_respawns_total" not in deterministic
        assert "zc_executions_total" in deterministic
        full = registry.render_prometheus(include_volatile=True)
        assert "zc_runtime_respawns_total" in full

    def test_integer_values_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.counter_inc("zc_machine_seconds_total", 120.0)
        assert "zc_machine_seconds_total 120\n" in \
            registry.render_prometheus()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
def fake_wall_clock(start=1000.0, step=1.0):
    counter = itertools.count()
    return lambda: start + step * next(counter)


class TestObservationSpans:
    def test_nesting_records_parent_ids(self):
        obs = Observation(wall_clock=fake_wall_clock())
        with obs.span("campaign", kind="app") as root:
            with obs.span("profile-a", kind="profile") as child:
                with obs.span("run", kind="trial") as leaf:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert leaf.parent_id == child.span_id

    def test_unknown_kind_rejected(self):
        obs = Observation()
        with pytest.raises(ValueError):
            obs.span("x", kind="galaxy")

    def test_out_of_order_close_raises(self):
        obs = Observation()
        outer = obs.span("outer", kind="app")
        obs.span("inner", kind="profile")
        with pytest.raises(RuntimeError):
            outer.__exit__(None, None, None)

    def test_sim_clock_only_advances_explicitly(self):
        obs = Observation(wall_clock=fake_wall_clock())
        with obs.span("a", kind="trial") as first:
            obs.advance_sim(60.0)
        with obs.span("b", kind="trial") as second:
            pass
        assert first.sim_duration_s == 60.0
        assert second.sim_duration_s == 0.0
        assert first.wall_duration_s > 0  # wall clock ticked regardless

    def test_event_is_zero_sim_duration(self):
        obs = Observation(wall_clock=fake_wall_clock())
        span = obs.event("worker-death", kind="supervisor", exit="signal 9")
        assert span.sim_duration_s == 0.0
        assert span.attrs["exit"] == "signal 9"

    def test_adopt_spans_remaps_ids_and_offsets_sim(self):
        worker = Observation(wall_clock=fake_wall_clock())
        with worker.span("profile", kind="profile"):
            worker.advance_sim(120.0)
        parent_obs = Observation(wall_clock=fake_wall_clock())
        with parent_obs.span("campaign", kind="app") as root:
            parent_obs.advance_sim(60.0)   # prerun happened first
            parent_obs.adopt_spans(worker.to_wire(), parent=root)
        adopted = [s for s in parent_obs.spans if s.name == "profile"][0]
        assert adopted.parent_id == root.span_id
        assert adopted.span_id != root.span_id
        assert adopted.sim_start == 60.0          # offset by parent sim_now
        assert adopted.sim_end == 180.0
        assert parent_obs.sim_now == 180.0        # worker total folded in

    def test_adopting_two_profiles_lays_them_back_to_back(self):
        def profile_wire(cost):
            worker = Observation(wall_clock=fake_wall_clock())
            with worker.span("p", kind="profile"):
                worker.advance_sim(cost)
            return worker.to_wire()

        parent = Observation(wall_clock=fake_wall_clock())
        parent.adopt_spans(profile_wire(60.0))
        parent.adopt_spans(profile_wire(120.0))
        starts = sorted(s.sim_start for s in parent.spans)
        assert starts == [0.0, 60.0]
        assert parent.sim_now == 180.0


class TestPhaseCosts:
    def test_self_time_excludes_children(self):
        obs = Observation(wall_clock=fake_wall_clock())
        with obs.span("pool", kind="pool"):
            obs.advance_sim(60.0)             # pool's own work
            with obs.span("t1", kind="trial"):
                obs.advance_sim(120.0)        # attributed to trial
        costs = {kind: (count, self_s)
                 for kind, count, self_s in phase_costs(obs)}
        assert costs["trial"] == (1, 120.0)
        assert costs["pool"] == (1, 60.0)

    def test_sorted_by_self_time_descending(self):
        obs = Observation(wall_clock=fake_wall_clock())
        with obs.span("a", kind="prerun"):
            obs.advance_sim(10.0)
        with obs.span("b", kind="trial"):
            obs.advance_sim(500.0)
        assert [row[0] for row in phase_costs(obs)] == ["trial", "prerun"]


# ---------------------------------------------------------------------------
# campaign-level span trees (determinism)
# ---------------------------------------------------------------------------
def span_skeleton(observation):
    """Everything about the span tree except wall-clock times."""
    return [(s.span_id, s.parent_id, s.name, s.kind, s.sim_start, s.sim_end,
             json.dumps(s.attrs, sort_keys=True, default=str))
            for s in observation.spans]


class TestCampaignSpanTree:
    @pytest.fixture(scope="class")
    def observed(self):
        return synthetic_campaign(config=CampaignConfig(observe=True)).run()

    def test_report_carries_the_observation(self, observed):
        assert observed.observation is not None
        assert observed.observation.spans

    def test_single_app_root(self, observed):
        roots = [s for s in observed.observation.spans
                 if s.parent_id is None]
        assert len(roots) == 1
        assert roots[0].kind == "app"
        assert roots[0].name == "synth"

    def test_every_parent_exists_and_stack_closed(self, observed):
        spans = observed.observation.spans
        ids = {s.span_id for s in spans}
        assert len(ids) == len(spans)  # no duplicates
        for span in spans:
            assert span.parent_id is None or span.parent_id in ids
            assert span.sim_end >= span.sim_start

    def test_trial_spans_under_pool_or_instance(self, observed):
        spans = observed.observation.spans
        by_id = {s.span_id: s for s in spans}
        trials = [s for s in spans if s.kind == "trial"]
        assert trials
        for trial in trials:
            parent = by_id[trial.parent_id]
            assert parent.kind in ("pool", "bisection", "instance",
                                   "profile")

    def test_profile_spans_tile_the_sim_timeline(self, observed):
        profiles = sorted((s for s in observed.observation.spans
                           if s.kind == "profile"),
                          key=lambda s: s.sim_start)
        assert profiles
        for left, right in zip(profiles, profiles[1:]):
            assert left.sim_end <= right.sim_start  # back to back, no overlap

    def test_executions_metric_matches_report(self, observed):
        metrics = observed.observation.metrics
        assert metrics.total("zc_executions_total") + \
            metrics.total("zc_prerun_executions_total") == observed.executions

    def test_same_campaign_twice_gives_identical_span_tree(self):
        first = synthetic_campaign(config=CampaignConfig(observe=True)).run()
        second = synthetic_campaign(config=CampaignConfig(observe=True)).run()
        assert span_skeleton(first.observation) \
            == span_skeleton(second.observation)
        assert first.observation.metrics.render_prometheus() \
            == second.observation.metrics.render_prometheus()

    def test_unobserved_campaign_has_no_observation(self):
        report = synthetic_campaign().run()
        assert report.observation is None
        assert report.cost_centers  # cost centers need no observation

    def test_cost_centers_sorted_and_reconciled(self, observed):
        centers = observed.cost_centers
        assert centers
        assert list(centers) == sorted(
            centers, key=lambda c: (-c.executions, c.test))
        assert sum(c.executions for c in centers) <= observed.executions


# ---------------------------------------------------------------------------
# backend equivalence: the deterministic snapshot is byte-identical
# ---------------------------------------------------------------------------
def equivalence_campaign(**config_kwargs):
    config_kwargs.setdefault("observe", True)
    config_kwargs.setdefault("blacklist_threshold", 999)  # decouple profiles
    tests = [two_service_test(), client_vs_service_test(), safe_only_test()]
    return Campaign("synth", SYNTH_REGISTRY, tests=tests,
                    config=CampaignConfig(**config_kwargs))


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        return equivalence_campaign().run()

    def test_thread_backend_metrics_byte_identical(self, serial):
        threaded = equivalence_campaign(workers=3).run()
        assert threaded.observation.metrics.render_prometheus() \
            == serial.observation.metrics.render_prometheus()
        assert span_skeleton(threaded.observation) \
            == span_skeleton(serial.observation)

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="process backend needs fork")
    def test_bare_process_backend_metrics_byte_identical(self, serial):
        forked = equivalence_campaign(workers=2, parallel_backend="process",
                                      supervise=False).run()
        assert forked.observation.metrics.render_prometheus() \
            == serial.observation.metrics.render_prometheus()
        assert span_skeleton(forked.observation) \
            == span_skeleton(serial.observation)

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="supervision needs fork")
    def test_supervised_backend_metrics_byte_identical(self, serial):
        supervised = equivalence_campaign(workers=2,
                                          parallel_backend="process",
                                          supervise=True).run()
        assert supervised.observation.metrics.render_prometheus() \
            == serial.observation.metrics.render_prometheus()
        assert span_skeleton(supervised.observation) \
            == span_skeleton(serial.observation)


# ---------------------------------------------------------------------------
# exporters + golden files
# ---------------------------------------------------------------------------
def golden_observation():
    """A small hand-built observation with a deterministic wall clock,
    shared by the golden-file tests and the regeneration helper."""
    obs = Observation(metrics=MetricsRegistry(
        constant_labels={"app": "synth"}),
        wall_clock=fake_wall_clock(start=1000.0, step=0.5))
    metrics = obs.metrics
    with obs.span("synth", kind="app"):
        with obs.span("prerun", kind="prerun", tests=2):
            obs.advance_sim(120.0)
            metrics.counter_inc("zc_prerun_executions_total", 2)
        with obs.span("TestSynth.testExchange", kind="profile"):
            with obs.span("TestSynth.testExchange", kind="pool", size=2,
                          depth=0, params=["synth.mode", "synth.safe-a"]):
                with obs.span("TestSynth.testExchange", kind="trial",
                              seed=7):
                    obs.advance_sim(60.0)
                    metrics.counter_inc("zc_executions_total")
            with obs.span("TestSynth.testExchange[synth.mode]",
                          kind="instance", verdict="confirmed-unsafe"):
                with obs.span("TestSynth.testExchange", kind="trial",
                              seed=8):
                    obs.advance_sim(60.0)
                    metrics.counter_inc("zc_executions_total")
                metrics.hist_observe("zc_instance_executions", 1)
    metrics.counter_inc("zc_machine_seconds_total", 240.0)
    metrics.gauge_max("zc_pool_max_depth", 1)
    return obs


def assert_matches_golden(path, golden_name):
    golden_path = os.path.join(GOLDEN_DIR, golden_name)
    with open(path) as produced, open(golden_path) as expected:
        assert produced.read() == expected.read(), \
            "regenerate with: PYTHONPATH=src:tests python -c " \
            "'import test_observe; test_observe.regenerate_golden_files()'"


def regenerate_golden_files():
    obs = golden_observation()
    pairs = [("synth", obs)]
    write_spans_jsonl(pairs, os.path.join(GOLDEN_DIR, "observe_spans.jsonl"))
    write_chrome_trace(pairs, os.path.join(GOLDEN_DIR, "observe_chrome.json"))
    write_metrics_text(pairs, os.path.join(GOLDEN_DIR, "observe_metrics.prom"))


class TestExporterGoldenFiles:
    @pytest.fixture()
    def pairs(self):
        return [("synth", golden_observation())]

    def test_spans_jsonl_matches_golden(self, pairs, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        assert write_spans_jsonl(pairs, path) == 7
        assert_matches_golden(path, "observe_spans.jsonl")
        assert validate_spans_jsonl(path) == 7

    def test_chrome_trace_matches_golden(self, pairs, tmp_path):
        path = str(tmp_path / "chrome.json")
        assert write_chrome_trace(pairs, path) == 7
        assert_matches_golden(path, "observe_chrome.json")
        assert validate_chrome_trace(path) == 7

    def test_metrics_text_matches_golden(self, pairs, tmp_path):
        path = str(tmp_path / "metrics.prom")
        assert write_metrics_text(pairs, path) > 0
        assert_matches_golden(path, "observe_metrics.prom")
        assert validate_metrics_text(path) > 0

    def test_chrome_trace_maps_profiles_to_tracks(self, pairs, tmp_path):
        path = str(tmp_path / "chrome.json")
        write_chrome_trace(pairs, path)
        with open(path) as handle:
            document = json.load(handle)
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "synth"
        trials = [e for e in document["traceEvents"]
                  if e.get("cat") == "trial"]
        assert trials and all(e["tid"] != 0 for e in trials)
        assert all(e["args"]["sim_duration_s"] == 60.0 for e in trials)


# ---------------------------------------------------------------------------
# validators reject malformed artifacts
# ---------------------------------------------------------------------------
class TestValidatorRejections:
    def write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    def span_record(self, **overrides):
        record = {"span_id": 1, "parent_id": None, "name": "x",
                  "kind": "app", "wall_start": 0.0, "wall_end": 1.0,
                  "sim_start": 0.0, "sim_end": 1.0, "attrs": {},
                  "app": "synth", "wall_duration_s": 1.0,
                  "sim_duration_s": 1.0}
        record.update(overrides)
        return record

    def test_spans_invalid_json(self, tmp_path):
        path = self.write(tmp_path, "s.jsonl", "{nope\n")
        with pytest.raises(ValueError, match="line 1"):
            validate_spans_jsonl(path)

    def test_spans_missing_field(self, tmp_path):
        record = self.span_record()
        del record["sim_end"]
        path = self.write(tmp_path, "s.jsonl", json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="sim_end"):
            validate_spans_jsonl(path)

    def test_spans_unknown_kind(self, tmp_path):
        record = self.span_record(kind="galaxy")
        path = self.write(tmp_path, "s.jsonl", json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="unknown kind"):
            validate_spans_jsonl(path)

    def test_spans_duplicate_id(self, tmp_path):
        line = json.dumps(self.span_record()) + "\n"
        path = self.write(tmp_path, "s.jsonl", line + line)
        with pytest.raises(ValueError, match="duplicate span_id"):
            validate_spans_jsonl(path)

    def test_spans_dangling_parent(self, tmp_path):
        record = self.span_record(parent_id=99)
        path = self.write(tmp_path, "s.jsonl", json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="parent_id 99 not present"):
            validate_spans_jsonl(path)

    def test_spans_negative_duration(self, tmp_path):
        record = self.span_record(sim_end=-1.0)
        path = self.write(tmp_path, "s.jsonl", json.dumps(record) + "\n")
        with pytest.raises(ValueError, match="sim_end < sim_start"):
            validate_spans_jsonl(path)

    def test_chrome_not_a_trace(self, tmp_path):
        path = self.write(tmp_path, "c.json", json.dumps([1, 2]))
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace(path)

    def test_chrome_no_complete_events(self, tmp_path):
        path = self.write(tmp_path, "c.json",
                          json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="no complete events"):
            validate_chrome_trace(path)

    def test_chrome_bad_event_field(self, tmp_path):
        event = {"ph": "X", "name": "x", "cat": "trial", "pid": 0,
                 "tid": 0, "ts": "soon", "dur": 1, "args": {}}
        path = self.write(tmp_path, "c.json",
                          json.dumps({"traceEvents": [event]}))
        with pytest.raises(ValueError, match="bad 'ts'"):
            validate_chrome_trace(path)

    def test_metrics_unknown_name(self, tmp_path):
        path = self.write(tmp_path, "m.prom",
                          "# HELP nope x\n# TYPE nope counter\nnope 1\n")
        with pytest.raises(ValueError, match="not in the metric catalog"):
            validate_metrics_text(path)

    def test_metrics_missing_headers(self, tmp_path):
        path = self.write(tmp_path, "m.prom", "zc_executions_total 5\n")
        with pytest.raises(ValueError, match="missing HELP/TYPE"):
            validate_metrics_text(path)

    def test_metrics_histogram_missing_series(self, tmp_path):
        text = ("# HELP zc_pool_size x\n# TYPE zc_pool_size histogram\n"
                'zc_pool_size_bucket{le="+Inf"} 1\nzc_pool_size_count 1\n')
        path = self.write(tmp_path, "m.prom", text)
        with pytest.raises(ValueError, match="missing its _sum"):
            validate_metrics_text(path)

    def test_metrics_empty_snapshot_rejected(self, tmp_path):
        path = self.write(tmp_path, "m.prom", "")
        with pytest.raises(ValueError, match="no samples"):
            validate_metrics_text(path)

    def test_read_totals_unparseable_line(self, tmp_path):
        path = self.write(tmp_path, "m.prom", "what even is this\n")
        with pytest.raises(ValueError, match="unparseable"):
            read_metrics_totals(path)


# ---------------------------------------------------------------------------
# reconciliation: metrics vs report
# ---------------------------------------------------------------------------
class TestReconciliation:
    def test_unit_level_match_and_mismatch(self):
        report = {"executions": 10, "supervision": {"respawns": 2}}
        good = {"zc_executions_total": 8.0,
                "zc_prerun_executions_total": 2.0,
                "zc_runtime_respawns_total": 2.0}
        assert reconcile_with_report(good, report) == []
        bad = dict(good, zc_runtime_respawns_total=3.0)
        problems = reconcile_with_report(bad, report)
        assert problems == ["worker respawns: metrics say 3, report says 2"]

    def test_end_to_end_campaign_reconciles(self, tmp_path):
        report = synthetic_campaign(
            config=CampaignConfig(observe=True, exec_cache=True)).run()
        path = str(tmp_path / "metrics.prom")
        write_metrics_text([("synth", report.observation)], path)
        assert validate_metrics_text(path) > 0
        problems = reconcile_with_report(read_metrics_totals(path),
                                         app_report_to_dict(report))
        assert problems == []

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="supervision needs fork")
    def test_supervised_crash_campaign_reconciles(self, tmp_path):
        report = Campaign(
            "synth", SYNTH_REGISTRY,
            tests=[hard_crash_test(), safe_only_test()],
            config=CampaignConfig(observe=True, workers=2,
                                  parallel_backend="process",
                                  blacklist_threshold=999)).run()
        assert report.supervision.respawns > 0  # the crash path fired
        path = str(tmp_path / "metrics.prom")
        write_metrics_text([("synth", report.observation)], path)
        problems = reconcile_with_report(read_metrics_totals(path),
                                         app_report_to_dict(report))
        assert problems == []
        kinds = {s.kind for s in report.observation.spans}
        assert "supervisor" in kinds  # crash left a supervisor event span


# ---------------------------------------------------------------------------
# live progress line
# ---------------------------------------------------------------------------
class TestProgressReporter:
    def make(self, total=4, interval=0.2):
        stream = io.StringIO()
        ticks = itertools.count()
        reporter = ProgressReporter(stream, "synth", total=total,
                                    min_interval_s=interval,
                                    clock=lambda: 100.0 + next(ticks) * 0.05)
        return stream, reporter

    def test_renders_core_fields(self):
        stream, reporter = self.make()
        reporter.close({"done": 4, "executions": 120, "cache_hits": 30,
                        "cache_misses": 10, "pool_voids": 2})
        line = stream.getvalue()
        assert "[synth] profiles 4/4" in line
        assert "exec 120" in line
        assert "cache 75.0%" in line
        assert "voids 2" in line
        assert line.endswith("\n")

    def test_supervision_fields_only_when_nonzero(self):
        stream, reporter = self.make()
        reporter.close({"done": 1, "respawns": 0, "quarantined": 0})
        assert "respawns" not in stream.getvalue()
        stream, reporter = self.make()
        reporter.close({"done": 1, "respawns": 3, "quarantined": 1})
        assert "respawns 3" in stream.getvalue()
        assert "quarantined 1" in stream.getvalue()

    def test_ticks_are_throttled_but_final_always_renders(self):
        stream, reporter = self.make(total=10, interval=10.0)
        for done in range(5):
            reporter.tick({"done": done})
        assert stream.getvalue().count("\r") == 1  # only the first landed
        reporter.tick({"done": 10})  # done == total bypasses the throttle
        assert "profiles 10/10" in stream.getvalue()

    def test_silent_reporter_writes_nothing(self):
        stream, reporter = self.make()
        reporter.close()
        assert stream.getvalue() == ""
