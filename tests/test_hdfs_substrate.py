"""Integration tests for the mini-HDFS substrate.

Each heterogeneous scenario is driven through an explicit ConfAgent
session with a hand-built assignment, verifying that the substrate fails
exactly the way Table 3 describes — and that both homogeneous sides pass.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.apps.hdfs import (DFSClient, HdfsConfiguration, MiniDFSCluster,
                             run_fsck)
from repro.common import errors
from repro.core.confagent import UNIT_TEST, ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def hetero(param, group, group_value, other_value):
    """ConfAgent session giving ``group`` one value and everyone else the
    other."""
    assignment = HeteroAssignment((ParamAssignment(
        param=param, group=group,
        group_values=(group_value,) if not isinstance(group_value, tuple)
        else group_value,
        other_value=other_value),))
    return ConfAgent(assignment=assignment)


def homo(param, value):
    assignment = HeteroAssignment((ParamAssignment(
        param=param, group="__nobody__", group_values=(value,),
        other_value=value),))
    return ConfAgent(assignment=assignment)


@contextlib.contextmanager
def cluster_session(agent, **cluster_kwargs):
    with agent:
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, **cluster_kwargs)
        try:
            cluster.start()
            yield conf, cluster, DFSClient(conf, cluster)
        finally:
            cluster.shutdown()


def write_read(agent, **cluster_kwargs):
    with cluster_session(agent, **cluster_kwargs) as (_, cluster, client):
        payload = b"integration-payload" * 16
        client.write_file("/it/file", payload, replication=2)
        assert client.read_file("/it/file") == payload


class TestWireFormatFamily:
    def test_checksum_type_mismatch_fails(self):
        with pytest.raises(errors.ChecksumError):
            write_read(hetero("dfs.checksum.type", "DataNode", "CRC32C",
                              "CRC32"), num_datanodes=2)

    def test_checksum_type_homo_both_sides_pass(self):
        for value in ("CRC32", "CRC32C"):
            write_read(homo("dfs.checksum.type", value), num_datanodes=2)

    def test_bytes_per_checksum_mismatch_fails(self):
        with pytest.raises(errors.ChecksumError):
            write_read(hetero("dfs.bytes-per-checksum", "DataNode", 16, 512),
                       num_datanodes=2)

    def test_data_transfer_protection_mismatch_fails(self):
        with pytest.raises(errors.SaslError):
            write_read(hetero("dfs.data.transfer.protection", "DataNode",
                              "privacy", "authentication"), num_datanodes=2)

    def test_rpc_protection_mismatch_fails_at_startup(self):
        with pytest.raises(errors.SaslError):
            write_read(hetero("hadoop.rpc.protection", "NameNode",
                              "integrity", "authentication"), num_datanodes=1)

    def test_encryption_client_on_namenode_off(self):
        with pytest.raises(errors.HandshakeError):
            write_read(hetero("dfs.encrypt.data.transfer", "NameNode", False,
                              True), num_datanodes=2)

    def test_encryption_datanode_on_rest_off(self):
        with pytest.raises((errors.HandshakeError, errors.DecodeError)):
            write_read(hetero("dfs.encrypt.data.transfer", "DataNode", True,
                              False), num_datanodes=2)

    def test_encryption_homo_on_passes(self):
        write_read(homo("dfs.encrypt.data.transfer", True), num_datanodes=2)

    def test_block_tokens_datanode_on_namenode_off(self):
        with pytest.raises(errors.AccessTokenError):
            write_read(hetero("dfs.block.access.token.enable", "DataNode",
                              True, False), num_datanodes=1)

    def test_block_tokens_homo_on_passes(self):
        write_read(homo("dfs.block.access.token.enable", True),
                   num_datanodes=2)


class TestTimeoutsAndHeartbeats:
    def test_socket_timeout_short_client_slow_server(self):
        with pytest.raises(errors.SocketTimeout):
            write_read(hetero("dfs.client.socket-timeout", UNIT_TEST, 500,
                              60000), num_datanodes=2)

    def test_socket_timeout_homo_short_passes(self):
        write_read(homo("dfs.client.socket-timeout", 500), num_datanodes=2)

    def test_slow_heartbeat_sender_declared_dead(self):
        with cluster_session(hetero("dfs.heartbeat.interval", "DataNode",
                                    3000, 3),
                             num_datanodes=2) as (_, cluster, client):
            cluster.run_for(1000.0)
            assert client.get_stats()["dead"] == 2

    def test_heartbeat_homo_slow_stays_alive(self):
        with cluster_session(homo("dfs.heartbeat.interval", 3000),
                             num_datanodes=2) as (_, cluster, client):
            cluster.run_for(1000.0)
            assert client.get_stats()["dead"] == 0

    def test_recheck_interval_delays_dead_detection(self):
        with cluster_session(
                hetero("dfs.namenode.heartbeat.recheck-interval", "NameNode",
                       3000000, 300000),
                num_datanodes=2) as (_, cluster, client):
            cluster.datanodes[1].stop()
            cluster.run_for(1000.0)  # past the client-computed expiry
            assert client.get_stats()["dead"] == 0  # the NN hasn't swept yet

    def test_stale_interval_differs(self):
        with cluster_session(
                hetero("dfs.namenode.stale.datanode.interval", "NameNode",
                       3000000, 30000),
                num_datanodes=2) as (_, cluster, client):
            cluster.datanodes[1].stop()
            cluster.run_for(60.0)
            assert client.get_stats()["stale"] == 0


class TestNameNodeLimits:
    def test_component_length_enforced_on_namenode(self):
        with cluster_session(
                hetero("dfs.namenode.fs-limits.max-component-length",
                       "NameNode", 25, 255),
                num_datanodes=1) as (_, cluster, client):
            with pytest.raises(errors.LimitExceededError):
                client.mkdirs("/limits/" + "d" * 100)

    def test_directory_items_enforced_on_namenode(self):
        with cluster_session(
                hetero("dfs.namenode.fs-limits.max-directory-items",
                       "NameNode", 3, 1048576),
                num_datanodes=1) as (_, cluster, client):
            client.mkdirs("/fanout")
            with pytest.raises(errors.LimitExceededError):
                for index in range(10):
                    client.mkdirs("/fanout/sub%d" % index)

    def test_corrupt_listing_truncated_by_namenode(self):
        with cluster_session(
                hetero("dfs.namenode.max-corrupt-file-blocks-returned",
                       "NameNode", 1, 100),
                num_datanodes=1) as (_, cluster, client):
            blocks = []
            for index in range(4):
                blocks.extend(client.write_file("/c/f%d" % index, b"z" * 32,
                                                replication=1))
            client.report_bad_blocks(blocks)
            assert len(client.list_corrupt_file_blocks()) == 1

    def test_snapshot_descendant_declined(self):
        with cluster_session(
                hetero("dfs.namenode.snapshotdiff.allow.snap-root-descendant",
                       "NameNode", False, True),
                num_datanodes=1) as (_, cluster, client):
            client.mkdirs("/snap/sub")
            client.allow_snapshot("/snap")
            client.create_snapshot("/snap", "s0")
            with pytest.raises(errors.SnapshotError):
                client.snapshot_diff("/snap", "/snap/sub", "s0")


class TestWebAndReports:
    def test_http_policy_mismatch_refused(self):
        with cluster_session(hetero("dfs.http.policy", "NameNode",
                                    "HTTPS_ONLY", "HTTP_ONLY"),
                             num_datanodes=1) as (conf, cluster, _):
            with pytest.raises(errors.ConnectError):
                run_fsck(conf, cluster.namenode)

    def test_http_policy_homo_https_passes(self):
        with cluster_session(homo("dfs.http.policy", "HTTPS_ONLY"),
                             num_datanodes=1) as (conf, cluster, _):
            assert run_fsck(conf, cluster.namenode)["healthy"]

    def test_du_reserved_changes_reported_remaining(self):
        reservation = 10 * 1024 ** 3
        with cluster_session(hetero("dfs.datanode.du.reserved", "DataNode",
                                    reservation, 0),
                             num_datanodes=1) as (_, cluster, client):
            cluster.run_for(10.0)
            capacity = cluster.datanodes[0].capacity
            assert client.get_stats()["remaining"] == capacity - reservation

    def test_delayed_incremental_report_keeps_block_visible(self):
        with cluster_session(
                hetero("dfs.blockreport.incremental.intervalMsec", "DataNode",
                       300000, 0),
                num_datanodes=1) as (_, cluster, client):
            client.write_file("/ibr/f", b"d" * 64, replication=1)
            client.delete("/ibr/f")
            assert client.get_stats()["blocks"] == 1  # IBR still batched
            cluster.run_for(301.0)
            assert client.get_stats()["blocks"] == 0

    def test_replace_datanode_refused_by_namenode(self):
        with cluster_session(
                hetero("dfs.client.block.write.replace-datanode-on-failure.enable",
                       "NameNode", False, True),
                num_datanodes=3) as (_, cluster, client):
            with pytest.raises(errors.RpcError):
                client.write_file("/rec/f", b"d" * 64, replication=2,
                                  fail_pipeline_at=0)


class TestFullBlockReports:
    def test_reconciliation_registers_missed_replicas(self):
        conf = HdfsConfiguration()
        conf.set("dfs.blockreport.intervalMsec", 60000)
        with MiniDFSCluster(conf, num_datanodes=1) as cluster:
            cluster.start()
            client = DFSClient(conf, cluster)
            block_id = client.write_file("/fbr/file", b"x" * 64,
                                         replication=1)[0]
            # simulate the NameNode losing track of the replica
            info = cluster.namenode.block_manager.blocks[block_id]
            info.locations.clear()
            assert client.get_stats()["blocks"] == 0
            cluster.run_for(61.0)  # the next full report re-registers it
            assert client.get_stats()["blocks"] == 1

    def test_reconciliation_never_removes_replicas(self):
        """Removals belong to incremental reports; the full report must
        not short-circuit the batching window (Table 3 semantics)."""
        conf = HdfsConfiguration()
        conf.set("dfs.blockreport.intervalMsec", 10000)
        conf.set("dfs.blockreport.incremental.intervalMsec", 300000)
        with MiniDFSCluster(conf, num_datanodes=1) as cluster:
            cluster.start()
            client = DFSClient(conf, cluster)
            client.write_file("/fbr/keep", b"y" * 64, replication=1)
            client.delete("/fbr/keep")
            cluster.run_for(30.0)  # several full reports, no IBR yet
            assert client.get_stats()["blocks"] == 1
            cluster.run_for(280.0)  # the batched IBR finally lands
            assert client.get_stats()["blocks"] == 0


class TestFailureInjection:
    def test_datanode_crash_mid_balancing_surfaces(self):
        from repro.apps.hdfs import Balancer
        from repro.common.errors import NodeStateError
        conf = HdfsConfiguration()
        with MiniDFSCluster(conf, num_datanodes=2) as cluster:
            cluster.start()
            moves = [{"block_id": cluster.place_block("/fi/f%d" % i, ["dn0"]),
                      "source": "dn0", "target": "dn1"} for i in range(5)]
            cluster.datanodes[0].stop()
            balancer = Balancer(conf, cluster)
            with pytest.raises(NodeStateError):
                balancer.run_balancing(moves, timeout_s=60.0)


class TestHaAndImages:
    def test_journal_declines_in_progress_tailing(self):
        with cluster_session(hetero("dfs.ha.tail-edits.in-progress",
                                    "JournalNode", False, True),
                             num_datanodes=1, num_namenodes=2,
                             with_journal=True) as (_, cluster, client):
            client.mkdirs("/ha/d0")
            with pytest.raises(errors.RpcError):
                cluster.standby_namenode.tail_edits()

    def test_compressed_and_plain_images_same_contents(self):
        from repro.apps.hdfs.namespace import Namespace
        with cluster_session(hetero("dfs.image.compress", "NameNode",
                                    (True, False), False),
                             num_datanodes=1, num_namenodes=2,
                             with_journal=True) as (_, cluster, client):
            client.mkdirs("/img/d0")
            cluster.namenode.finalize_log_segment()
            cluster.standby_namenode.tail_edits()
            active = cluster.namenode.save_image()
            standby = cluster.standby_namenode.save_image()
            assert len(active) != len(standby)  # the strict check would fail
            assert (Namespace.image_contents(active)
                    == Namespace.image_contents(standby))
