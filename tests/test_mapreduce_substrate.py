"""Integration tests for the mini-MapReduce substrate."""

from __future__ import annotations

import contextlib

import pytest

from repro.apps.mapreduce import JobConf, JobRunner, MiniMRCluster
from repro.common import errors
from repro.core.confagent import UNIT_TEST, ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment

LINES = ["a b c d", "b c d e", "c d e f"]


def expected_counts():
    out = {}
    for line in LINES:
        for word in line.split():
            out[word] = out.get(word, 0) + 1
    return out


def agent(param, group, group_value, other_value, pinned=()):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group=group,
        group_values=group_value if isinstance(group_value, tuple)
        else (group_value,),
        other_value=other_value, pinned=tuple(pinned)),)))


@contextlib.contextmanager
def job_session(session_agent):
    with session_agent:
        conf = JobConf()
        cluster = MiniMRCluster(conf)
        try:
            cluster.start()
            yield conf, cluster, JobRunner(conf, cluster)
        finally:
            cluster.shutdown()


def run_job(session_agent, job_id="job_test"):
    with job_session(session_agent) as (_, _, runner):
        output = runner.run_wordcount(job_id, LINES)
        return runner, output


class TestHappyPath:
    def test_wordcount_correct(self):
        runner, output = run_job(ConfAgent())
        assert runner.read_output(output) == expected_counts()

    def test_archive_accepts_clean_output(self):
        runner, output = run_job(ConfAgent())
        archive = runner.archive_output(output)
        assert len(archive["parts"]) == 2  # default job.reduces


class TestShuffleMismatches:
    def test_encrypted_intermediate_mismatch(self):
        with pytest.raises(errors.DecodeError):
            run_job(agent("mapreduce.job.encrypted-intermediate-data",
                          "MapTask", True, False))

    def test_map_output_compress_mismatch(self):
        with pytest.raises(errors.DecodeError):
            run_job(agent("mapreduce.map.output.compress", "MapTask", True,
                          False))

    def test_codec_mismatch_with_compression_pinned(self):
        pinned = (("mapreduce.map.output.compress", True),)
        with pytest.raises(errors.DecodeError):
            run_job(agent("mapreduce.map.output.compress.codec", "MapTask",
                          "snappy", "gzip", pinned=pinned))

    def test_codec_homogeneous_with_compression_passes(self):
        pinned = (("mapreduce.map.output.compress", True),)
        runner, output = run_job(agent("mapreduce.map.output.compress.codec",
                                       "MapTask", "snappy", "snappy",
                                       pinned=pinned))
        assert runner.read_output(output) == expected_counts()

    def test_shuffle_ssl_mismatch(self):
        with pytest.raises(errors.SslError):
            run_job(agent("mapreduce.shuffle.ssl.enabled", "ReduceTask", True,
                          False))

    def test_reducer_expects_more_maps_than_launched(self):
        with pytest.raises(errors.ShuffleError):
            run_job(agent("mapreduce.job.maps", "ReduceTask", 4, 2))

    def test_mapper_partitions_fewer_than_reducers(self):
        with pytest.raises(errors.ShuffleError):
            run_job(agent("mapreduce.job.reduces", "MapTask", 2, 4))


class TestCommitProtocol:
    def test_mixed_committer_versions_leave_temporary_files(self):
        # reducers commit v1 (via _temporary) while the driver commits v2
        # (moves nothing): the Hadoop Archive error of Table 3.
        runner, output = run_job(agent(
            "mapreduce.fileoutputcommitter.algorithm.version", "ReduceTask",
            1, 2))
        with pytest.raises(errors.CommitError, match="_temporary"):
            runner.archive_output(output)

    def test_homogeneous_v1_commits_cleanly(self):
        runner, output = run_job(agent(
            "mapreduce.fileoutputcommitter.algorithm.version", "ReduceTask",
            1, 1))
        assert runner.archive_output(output)["parts"]

    def test_homogeneous_v2_commits_cleanly(self):
        runner, output = run_job(agent(
            "mapreduce.fileoutputcommitter.algorithm.version", "ReduceTask",
            2, 2))
        assert runner.archive_output(output)["parts"]

    def test_output_compress_changes_part_names(self):
        runner, output = run_job(agent(
            "mapreduce.output.fileoutputformat.compress", "ReduceTask", True,
            False))
        assert all(path.endswith(".gz") for path in output)
        # the reader follows the suffix, so contents still merge correctly
        assert runner.read_output(output) == expected_counts()


class TestJobHistory:
    def test_job_registered_with_history_server(self):
        with job_session(ConfAgent()) as (_, cluster, runner):
            runner.run_wordcount("job_h1", LINES)
            jobs = runner.rpc.call(cluster.history_server.rpc, "list_jobs")
            assert jobs[-1]["job_id"] == "job_h1"

    def test_history_cache_bounded(self):
        with job_session(ConfAgent()) as (conf, cluster, runner):
            cluster.history_server._cache_size = 2
            for index in range(4):
                runner.rpc.call(cluster.history_server.rpc, "register_job",
                                "job%d" % index, 1, 1)
            jobs = runner.rpc.call(cluster.history_server.rpc, "list_jobs")
            assert [j["job_id"] for j in jobs] == ["job2", "job3"]
