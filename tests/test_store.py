"""Durable result store: crash consistency under deterministic disk chaos.

The headline invariants:

1. **Reopen never crashes.**  Whatever a crash or injected disk fault
   left on disk — torn frames, short writes, raw garbage — ``open()``
   salvages every intact record and serves nothing else.
2. **Warm equals cold.**  A campaign run against a populated store
   executes strictly less and reports byte-identical findings.
3. **Corrupt or mismatched entries are never served.**  CRC-failed
   frames, foreign corpus digests, and future format versions are
   refused, not guessed at.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro
from repro.common.faults import (DiskFaultPlan, FaultyFile, InjectedCrash,
                                 InjectedDiskFault)
from repro.core.distrib import corpus_digest
from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.report import app_report_to_dict, findings_projection
from repro.core.runner import RunOutcome
from repro.core.store import (MAGIC, STORE_VERSION, ResultStore, StoreError,
                              _encode, iter_frames)
from synthetic_app import (SYNTH_REGISTRY, client_vs_service_test,
                           safe_only_test, two_service_test)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def outcome(ok=True, error_type="", rng_used=False):
    return RunOutcome(ok=ok, error_type=error_type,
                      error_message="boom" if error_type else "",
                      rng_used=rng_used)


def opened(tmp_path, app="synth", digest=7, **kw):
    store = ResultStore(str(tmp_path / "store"), **kw)
    store.open(app, digest)
    return store


def segment_paths(store):
    return store._segment_paths()


def findings(report):
    return json.dumps(findings_projection(app_report_to_dict(report)),
                      sort_keys=True)


def synth_tests():
    return [two_service_test(), client_vs_service_test(), safe_only_test()]


def campaign(tmp_path=None, tests=None, **kw):
    if tmp_path is not None:
        kw.setdefault("store_path", str(tmp_path / "store"))
    return Campaign("synth", SYNTH_REGISTRY,
                    tests=tests if tests is not None else synth_tests(),
                    config=CampaignConfig(**kw))


# ---------------------------------------------------------------------------
# frame layer
# ---------------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        data = _encode({"a": 1}) + _encode({"b": 2})
        assert [r for k, r in iter_frames(data) if k == "record"] == \
            [{"a": 1}, {"b": 2}]

    def test_resync_after_corrupt_span(self):
        good = _encode({"i": 1})
        data = good + b"\x00\xffgarbage\xfe" + _encode({"i": 2})
        events = list(iter_frames(data))
        assert [r for k, r in events if k == "record"] == [{"i": 1},
                                                           {"i": 2}]
        assert any(k == "corrupt" for k, _ in events)

    def test_flipped_payload_byte_fails_crc_but_resyncs(self):
        frames = _encode({"i": 1}) + _encode({"i": 2}) + _encode({"i": 3})
        mutated = bytearray(frames)
        mutated[len(_encode({"i": 1})) + 14] ^= 0xFF  # inside frame 2
        events = list(iter_frames(bytes(mutated)))
        records = [r for k, r in events if k == "record"]
        assert {"i": 1} in records and {"i": 3} in records
        assert {"i": 2} not in records
        assert any(k == "corrupt" for k, _ in events)

    def test_truncated_tail_reported_once(self):
        data = _encode({"i": 1}) + _encode({"i": 2})[:-5]
        events = list(iter_frames(data))
        assert [r for k, r in events if k == "record"] == [{"i": 1}]
        assert [k for k, _ in events].count("truncated") == 1

    def test_false_magic_inside_payload_is_harmless(self):
        data = _encode({"marker": MAGIC.decode("latin-1")})
        records = [r for k, r in iter_frames(data) if k == "record"]
        assert len(records) == 1


# ---------------------------------------------------------------------------
# store round trips and refusal rules
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_entries_and_reports_survive_reopen(self, tmp_path):
        store = opened(tmp_path)
        assert store.append_entry("k-det", None, outcome())
        assert store.append_entry("k-seed", 3, outcome(rng_used=True))
        assert store.put_report({"app": "synth", "verdicts": []})
        store.close()

        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 2
        assert fresh.stats.reports_loaded == 1
        hit, seed_sensitive = fresh.lookup_entry("k-det", 99)
        assert hit is not None and hit.ok and not seed_sensitive
        hit, seed_sensitive = fresh.lookup_entry("k-seed", 3)
        assert hit is not None and seed_sensitive
        miss, _ = fresh.lookup_entry("k-seed", 4)  # other seed: miss
        assert miss is None
        assert fresh.stats.hits == 2 and fresh.stats.misses == 1

    def test_lookup_returns_a_copy(self, tmp_path):
        writer = opened(tmp_path)
        writer.append_entry("k", None, outcome())
        writer.close()
        store = opened(tmp_path)
        first, _ = store.lookup_entry("k", 0)
        first.retries = 99
        second, _ = store.lookup_entry("k", 0)
        assert second.retries == 0

    def test_digest_mismatch_refused_not_served(self, tmp_path):
        store = opened(tmp_path, digest=7)
        store.append_entry("k", None, outcome())
        store.close()
        skewed = opened(tmp_path, digest=8)
        assert skewed.stats.entries_loaded == 0
        assert skewed.stats.stale_refused == 1
        assert skewed.lookup_entry("k", 0)[0] is None

    def test_other_app_entries_skipped_silently(self, tmp_path):
        store = opened(tmp_path, app="synth")
        store.append_entry("k", None, outcome())
        store.close()
        other = opened(tmp_path, app="hdfs")
        assert other.stats.entries_loaded == 0
        assert other.stats.stale_refused == 0  # different app != stale

    def test_future_version_refused(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("k", None, outcome())
        store.close()
        with open(segment_paths(store)[0], "ab") as handle:
            handle.write(_encode({"kind": "header",
                                  "version": STORE_VERSION + 1,
                                  "app": "synth", "digest": 7}))
        with pytest.raises(StoreError):
            opened(tmp_path)
        with pytest.raises(StoreError):
            ResultStore(store.root).summary()

    def test_garbage_tail_salvages_all_intact_records(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("a", None, outcome())
        store.append_entry("b", None, outcome())
        store.close()
        with open(segment_paths(store)[0], "ab") as handle:
            handle.write(MAGIC + b"\x00\x00\x00")  # torn header
            handle.write(b"\x01\x02sector noise\xff\xfe")
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 2
        assert fresh.lookup_entry("a", 0)[0] is not None
        assert fresh.lookup_entry("b", 0)[0] is not None
        assert fresh.stats.corrupt_records + fresh.stats.truncated_tails > 0
        assert fresh.stats.salvaged_records >= 2

    def test_mid_segment_corruption_keeps_later_records(self, tmp_path):
        store = opened(tmp_path)
        for i in range(8):
            store.append_entry("k%d" % i, None, outcome())
        store.close()
        path = segment_paths(store)[0]
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        fresh = opened(tmp_path)
        # exactly one record dies with the flipped byte; the rest —
        # including records *after* the damage — are salvaged.
        assert fresh.stats.entries_loaded >= 6
        assert fresh.stats.corrupt_records >= 1

    def test_malformed_outcome_record_refused(self, tmp_path):
        store = opened(tmp_path)
        store.close()
        with open(os.path.join(store.segments_dir, "seg-000001.log"),
                  "wb") as handle:
            handle.write(_encode({"kind": "header",
                                  "version": STORE_VERSION,
                                  "app": "synth", "digest": 7}))
            handle.write(_encode({"kind": "entry", "app": "synth",
                                  "digest": 7, "key": "k", "seed": None,
                                  "outcome": {"ok": "not-a-bool-shape",
                                              "retries": []}}))
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 0
        assert fresh.stats.corrupt_records == 1

    def test_concurrent_writers_get_their_own_segments(self, tmp_path):
        left = opened(tmp_path)
        right = ResultStore(str(tmp_path / "store"))
        right.open("synth", 7)
        left.append_entry("from-left", None, outcome())
        right.append_entry("from-right", None, outcome())
        assert len(segment_paths(left)) == 2
        left.close()
        right.close()
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 2

    def test_manifest_reconciled_from_directory(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("k", None, outcome())
        store.close()
        os.unlink(os.path.join(store.root, "MANIFEST.json"))
        fresh = opened(tmp_path)  # directory listing is the truth
        assert fresh.stats.entries_loaded == 1
        manifest = fresh.read_manifest()
        assert manifest["segments"] == ["seg-000001.log"]

    def test_gc_compacts_and_preserves_liveness(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("a", None, outcome())
        store.close()
        again = opened(tmp_path)
        again.append_entry("a", None, outcome(ok=False, error_type="X"))
        again.append_entry("b", 5, outcome(rng_used=True))
        again.close()
        with open(os.path.join(store.segments_dir, "seg-000001.log"),
                  "ab") as handle:
            handle.write(b"\xde\xad")

        result = ResultStore(store.root).gc()
        assert result["compacted_segments"] == 2
        assert result["entries"] == 2  # newest "a" + "b"; duplicate dropped
        assert result["dropped_damage"] >= 1

        fresh = opened(tmp_path)
        assert fresh.stats.segments == 1
        newest_a, _ = fresh.lookup_entry("a", 0)
        assert newest_a is not None and not newest_a.ok  # newest wins
        assert fresh.lookup_entry("b", 5)[0] is not None
        assert fresh.stats.corrupt_records == 0

    def test_gc_skips_live_writer_segment(self, tmp_path):
        import fcntl as fcntl_mod  # flock-less platforms can't run this
        del fcntl_mod
        writer = opened(tmp_path)
        writer.append_entry("live", None, outcome())
        result = ResultStore(writer.root).gc()
        assert result["kept_segments"] == 1
        assert result["compacted_segments"] == 0
        writer.append_entry("after-gc", None, outcome())  # handle survived
        writer.close()
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 2


# ---------------------------------------------------------------------------
# deterministic disk-fault layer
# ---------------------------------------------------------------------------
class TestDiskFaultPlan:
    def test_deterministic_per_seed(self):
        plan = DiskFaultPlan(seed=11, torn_write_prob=0.2,
                             enospc_prob=0.2, crash_after_write_prob=0.1)
        twin = DiskFaultPlan(seed=11, torn_write_prob=0.2,
                             enospc_prob=0.2, crash_after_write_prob=0.1)
        decisions = [plan.write_decision("seg", i) for i in range(200)]
        assert decisions == [twin.write_decision("seg", i)
                             for i in range(200)]
        assert any(d is not None for d in decisions)
        other_label = [plan.write_decision("other", i) for i in range(200)]
        assert other_label != decisions  # label partitions the schedule

    def test_inactive_plan_never_fires(self):
        plan = DiskFaultPlan(seed=1)
        assert not plan.active
        assert all(plan.write_decision("seg", i) is None for i in range(50))

    def test_keep_bytes_is_a_strict_prefix(self):
        plan = DiskFaultPlan(seed=3, torn_write_prob=1.0)
        for i in range(50):
            kept = plan.keep_bytes("seg", i, 100)
            assert 0 <= kept < 100


class TestFaultyFile:
    def _wrapped(self, tmp_path, **probs):
        path = str(tmp_path / "victim.bin")
        counts = {}
        handle = FaultyFile(open(path, "wb"),
                            DiskFaultPlan(seed=0, **probs),
                            label="victim", counts=counts)
        return path, handle, counts

    def test_enospc_writes_nothing(self, tmp_path):
        path, handle, counts = self._wrapped(tmp_path, enospc_prob=1.0)
        with pytest.raises(InjectedDiskFault):
            handle.write(b"x" * 64)
        handle.close()
        assert os.path.getsize(path) == 0
        assert counts == {"enospc": 1}

    def test_torn_write_persists_prefix_then_raises(self, tmp_path):
        path, handle, counts = self._wrapped(tmp_path, torn_write_prob=1.0)
        with pytest.raises(InjectedDiskFault):
            handle.write(b"x" * 64)
        handle.close()
        assert 0 <= os.path.getsize(path) < 64
        assert counts == {"torn-write": 1}

    def test_short_write_lies_about_success(self, tmp_path):
        path, handle, counts = self._wrapped(tmp_path, short_write_prob=1.0)
        assert handle.write(b"x" * 64) == 64  # the lie
        handle.close()
        assert os.path.getsize(path) < 64
        assert counts == {"short-write": 1}

    def test_crash_after_write_is_durable_first(self, tmp_path):
        path, handle, counts = self._wrapped(tmp_path,
                                             crash_after_write_prob=1.0)
        with pytest.raises(InjectedCrash):
            handle.write(b"x" * 64)
        assert os.path.getsize(path) == 64  # write landed, then "death"
        assert counts == {"crash-after-write": 1}

    def test_injected_crash_is_not_an_oserror(self):
        # InjectedCrash models SIGKILL: nothing that catches OSError (or
        # even Exception) may swallow it, or the "crash" would be survived
        # by code that real death would not spare.
        assert not issubclass(InjectedCrash, Exception)


class TestStoreUnderDiskFaults:
    def _plan(self, **probs):
        return DiskFaultPlan(seed=0, **probs)

    def test_enospc_degrades_to_read_only(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("before", None, outcome())
        store.close()
        chaotic = opened(tmp_path,
                         disk_fault_plan=self._plan(enospc_prob=1.0))
        assert chaotic.stats.entries_loaded == 1  # reads unaffected
        assert not chaotic.append_entry("new", None, outcome())
        assert chaotic.stats.write_errors >= 1
        assert not chaotic.append_entry("again", None, outcome())
        assert chaotic.lookup_entry("before", 0)[0] is not None
        chaotic.close()
        assert opened(tmp_path).stats.entries_loaded == 1

    def test_torn_write_tail_is_salvaged_on_reopen(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("before", None, outcome())
        store.close()
        chaotic = opened(tmp_path,
                         disk_fault_plan=self._plan(torn_write_prob=1.0))
        assert not chaotic.append_entry("torn", None, outcome())
        assert chaotic.stats.write_errors >= 1
        chaotic.close()
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 1  # "torn" never served
        assert fresh.lookup_entry("before", 0)[0] is not None
        assert fresh.lookup_entry("torn", 0)[0] is None

    def test_short_write_detected_as_truncation_on_reopen(self, tmp_path):
        store = opened(tmp_path)
        store.append_entry("before", None, outcome())
        store.close()
        chaotic = opened(
            tmp_path, disk_fault_plan=self._plan(short_write_prob=1.0))
        chaotic.close()
        # the short write lies to the writer, so the append path reports
        # success; only the next open can notice the truncation.
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 1
        assert fresh.lookup_entry("before", 0)[0] is not None

    def test_crash_after_write_loses_nothing_durable(self, tmp_path):
        chaotic = opened(
            tmp_path,
            disk_fault_plan=self._plan(crash_after_write_prob=1.0))
        with pytest.raises(InjectedCrash):
            chaotic.append_entry("k", None, outcome())
        # the first faulted write is the segment *header*; it reached the
        # disk before the simulated death, so reopen finds a valid,
        # entry-less segment — and never crashes.
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded == 0
        assert fresh.stats.segments == 1

    def test_probabilistic_chaos_never_corrupts_served_entries(self,
                                                               tmp_path):
        """Moderate chaos over many appends: whatever subset survives,
        reopen serves only CRC-intact records and never raises."""
        plan = DiskFaultPlan(seed=42, torn_write_prob=0.1,
                             short_write_prob=0.1, enospc_prob=0.1)
        survived = set()
        for round_index in range(6):
            store = ResultStore(str(tmp_path / "store"), disk_fault_plan=plan)
            store.open("synth", 7)
            for i in range(10):
                key = "r%d-k%d" % (round_index, i)
                if store.append_entry(key, None, outcome()):
                    survived.add(key)
            store.close()
        fresh = opened(tmp_path)
        assert fresh.stats.entries_loaded > 0
        for key in survived:
            served, _ = fresh.lookup_entry(key, 0)
            # a short write may tear a record the writer believed durable;
            # what matters is that serving never invents or corrupts.
            if served is not None:
                assert served.ok


# ---------------------------------------------------------------------------
# campaign level: warm vs cold
# ---------------------------------------------------------------------------
class TestWarmVersusCold:
    def test_warm_is_byte_identical_and_strictly_cheaper(self, tmp_path):
        base = campaign().run()  # no store at all
        cold = campaign(tmp_path).run()
        warm = campaign(tmp_path).run()
        assert findings(cold) == findings(base)
        assert findings(warm) == findings(base)
        assert warm.executions < cold.executions
        assert warm.store.hits > 0
        assert warm.store.misses == 0
        assert cold.store.appends > 0

    def test_store_implies_exec_cache_reporting(self, tmp_path):
        report = campaign(tmp_path).run()
        assert report.exec_cache_enabled
        assert report.store is not None and report.store.enabled

    def test_corpus_change_invalidates_cleanly(self, tmp_path):
        campaign(tmp_path).run()
        shrunk = campaign(tmp_path, tests=[two_service_test(),
                                           safe_only_test()])
        report = shrunk.run()
        # different corpus digest: nothing served, nothing corrupted,
        # findings match a storeless run of the same corpus.
        assert report.store.hits == 0 or report.store.stale_refused >= 0
        plain = campaign(tests=[two_service_test(), safe_only_test()]).run()
        assert findings(report) == findings(plain)

    def test_campaign_survives_store_disk_chaos(self, tmp_path):
        base = campaign().run()
        plan = DiskFaultPlan(seed=3, torn_write_prob=0.05,
                             short_write_prob=0.05, enospc_prob=0.05)
        chaotic = campaign(tmp_path, disk_fault_plan=plan).run()
        assert findings(chaotic) == findings(base)
        warm = campaign(tmp_path).run()  # reopen after chaos: salvage
        assert findings(warm) == findings(base)

    def test_checkpoint_settings_pin_store_usage(self, tmp_path):
        ck = str(tmp_path / "ck.jsonl")
        campaign(tmp_path, checkpoint_path=ck).run()
        from repro.core.checkpoint import CheckpointError
        with pytest.raises(CheckpointError):
            campaign(tests=synth_tests(), checkpoint_path=ck).run()


# ---------------------------------------------------------------------------
# chaos: SIGKILL a storing campaign subprocess at a random point
# ---------------------------------------------------------------------------
CHILD_SCRIPT = textwrap.dedent("""
    import pathlib
    import sys
    sys.path.insert(0, %(src)r)
    sys.path.insert(0, %(tests)r)
    from test_store import campaign
    print("READY", flush=True)
    campaign(pathlib.Path(%(root)r)).run()
    print("DONE", flush=True)
""")


@pytest.mark.chaos
class TestSigkillChaos:
    def test_sigkill_mid_campaign_then_warm_rerun_is_byte_identical(
            self, tmp_path):
        base = campaign().run()
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        script = CHILD_SCRIPT % {
            "src": SRC_DIR,
            "tests": os.path.dirname(os.path.abspath(__file__)),
            "root": str(tmp_path)}
        killed = 0
        for attempt, delay in enumerate((0.05, 0.2, 0.5)):
            child = subprocess.Popen([sys.executable, "-c", script],
                                     env=env, stdout=subprocess.PIPE,
                                     stderr=subprocess.DEVNULL)
            assert child.stdout.readline().strip() == b"READY"
            time.sleep(delay)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
            killed += 1
            # reopen after every kill: must never crash, must never have
            # persisted a corrupt serving record.
            store = ResultStore(str(tmp_path / "store"))
            store.open("synth", corpus_digest(campaign(tmp_path)))
            store.close()
        assert killed == 3
        warm = campaign(tmp_path).run()
        assert findings(warm) == findings(base)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestStoreCli:
    def _run(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_stats_verify_gc_round_trip(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        store.open("synth", 7)
        store.append_entry("k", None, outcome())
        store.put_report({"app": "synth"})
        store.close()

        assert self._run("store", "stats", root) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "synth" in out

        assert self._run("store", "verify", root) == 0
        assert "OK" in capsys.readouterr().out

        with open(store._segment_paths()[0], "ab") as handle:
            handle.write(b"\xba\xad")
        assert self._run("store", "verify", root) == 1
        assert "DAMAGED" in capsys.readouterr().err

        assert self._run("store", "gc", root) == 0
        assert "compacted" in capsys.readouterr().out
        assert self._run("store", "verify", root) == 0

    def test_verify_of_empty_store_is_ok(self, tmp_path, capsys):
        assert self._run("store", "verify", str(tmp_path / "fresh")) == 0
        assert "0 record(s)" in capsys.readouterr().out
