"""Tests for the structured campaign trace log."""

from __future__ import annotations

import pytest

from repro.core.orchestrator import Campaign, CampaignConfig
from repro.core.tracelog import TraceLog
from synthetic_app import (SYNTH_REGISTRY, no_node_test, two_service_test)


@pytest.fixture()
def traced_report():
    trace = TraceLog()
    campaign = Campaign("synth", SYNTH_REGISTRY,
                        tests=[two_service_test(), no_node_test()],
                        config=CampaignConfig(trace=trace))
    report = campaign.run()
    return trace, report


class TestTraceLogBasics:
    def test_emit_and_filter(self):
        log = TraceLog()
        log.emit("a", x=1)
        log.emit("b", x=2)
        log.emit("a", x=3)
        assert len(log) == 3
        assert [e.data["x"] for e in log.of_kind("a")] == [1, 3]

    def test_events_are_ordered_in_time(self):
        log = TraceLog()
        first = log.emit("a")
        second = log.emit("b")
        assert first.at <= second.at

    def test_jsonl_round_trip(self, tmp_path):
        log = TraceLog()
        log.emit("instance", params=["p"], verdict="pass")
        log.emit("campaign", reported=[])
        path = tmp_path / "trace.jsonl"
        assert log.write_jsonl(str(path)) == 2
        loaded = TraceLog.read_jsonl(str(path))
        assert len(loaded) == 2
        assert loaded.of_kind("instance")[0].data["params"] == ["p"]

    def test_seq_is_the_emission_index(self):
        log = TraceLog()
        assert [log.emit("a").seq, log.emit("b").seq,
                log.emit("a").seq] == [0, 1, 2]

    def test_sim_at_carries_forward_when_not_supplied(self):
        log = TraceLog()
        assert log.emit("a").sim_at == 0.0
        assert log.emit("b", sim_at=120.0).sim_at == 120.0
        # an emitter that does not know the modelled clock inherits the
        # latest known sim time instead of resetting the timeline
        assert log.emit("c").sim_at == 120.0

    def test_round_trip_preserves_seq_and_sim_at(self, tmp_path):
        log = TraceLog()
        log.emit("a", sim_at=60.0, x=1)
        log.emit("b", x=2)
        path = tmp_path / "trace.jsonl"
        log.write_jsonl(str(path))
        loaded = TraceLog.read_jsonl(str(path))
        assert [(e.kind, e.seq, e.sim_at) for e in loaded] == \
            [("a", 0, 60.0), ("b", 1, 60.0)]
        assert loaded.events[0].data == {"x": 1}

    def test_reads_pre_observability_trace_files(self, tmp_path):
        # trace files written before seq/sim_at existed must still load
        path = tmp_path / "old.jsonl"
        path.write_text('{"kind": "instance", "at": 1.5, "verdict": "pass"}\n'
                        '{"kind": "campaign", "at": 2.5}\n')
        loaded = TraceLog.read_jsonl(str(path))
        assert [(e.seq, e.sim_at) for e in loaded] == [(0, 0.0), (1, 0.0)]
        assert loaded.of_kind("instance")[0].data == {"verdict": "pass"}


class TestCampaignTracing:
    def test_prerun_events_cover_every_test(self, traced_report):
        trace, _ = traced_report
        preruns = trace.of_kind("prerun")
        assert {e.data["test"] for e in preruns} == {
            "synth::TestSynth.testExchange",
            "synth::TestSynth.testPureFunction"}
        by_test = {e.data["test"]: e for e in preruns}
        assert by_test["synth::TestSynth.testPureFunction"].data["usable"] \
            is False

    def test_instance_events_record_trials(self, traced_report):
        trace, _ = traced_report
        confirmed = [e for e in trace.of_kind("instance")
                     if e.data["verdict"] == "confirmed-unsafe"]
        assert confirmed
        for event in confirmed:
            trials = event.data["trials"]
            assert trials["p_value"] <= 1e-4
            assert trials["hetero"][0] == trials["hetero"][1]  # all failed

    def test_instances_for_param_filter(self, traced_report):
        trace, _ = traced_report
        events = trace.instances_for_param("synth.mode")
        assert events
        assert all("synth.mode" in e.data["params"] for e in events)

    def test_campaign_summary_matches_report(self, traced_report):
        trace, report = traced_report
        summary = trace.of_kind("campaign")[-1]
        assert summary.data["true_problems"] == sorted(
            v.param for v in report.true_problems)
        assert summary.data["executions"] == report.executions

    def test_sim_timeline_is_monotone_and_deterministic(self):
        def run():
            trace = TraceLog()
            Campaign("synth", SYNTH_REGISTRY,
                     tests=[two_service_test(), no_node_test()],
                     config=CampaignConfig(trace=trace)).run()
            return trace

        first, second = run(), run()
        sims = [e.sim_at for e in first]
        assert sims == sorted(sims)  # modelled clock never goes backwards
        assert sims[-1] > 0
        assert [(e.kind, e.seq, e.sim_at) for e in first] == \
            [(e.kind, e.seq, e.sim_at) for e in second]

    def test_campaign_summary_sim_at_matches_machine_time(self, traced_report):
        trace, report = traced_report
        summary = trace.of_kind("campaign")[-1]
        assert summary.sim_at == report.executions * 60.0

    def test_no_trace_means_no_overhead(self):
        campaign = Campaign("synth", SYNTH_REGISTRY,
                            tests=[two_service_test()],
                            config=CampaignConfig())
        report = campaign.run()
        assert report.executions > 0  # simply must not crash without trace
