"""Integration tests for the mini-YARN, mini-Flink, and mini-HBase
substrates under heterogeneous assignments."""

from __future__ import annotations

import pytest

from repro.apps.flink import FlinkConfiguration, MiniFlinkCluster
from repro.apps.hbase import HBaseConfiguration, MiniHBaseCluster, ThriftAdmin
from repro.apps.yarn import MiniYARNCluster, YarnClient, YarnConfiguration
from repro.common import errors
from repro.core.confagent import UNIT_TEST, ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def agent(param, group, group_value, other_value):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group=group,
        group_values=group_value if isinstance(group_value, tuple)
        else (group_value,),
        other_value=other_value),)))


class TestYarnScheduler:
    def test_request_at_client_max_rejected_by_smaller_rm(self):
        with agent("yarn.scheduler.maximum-allocation-mb", "ResourceManager",
                   1024, 8192):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1)
            cluster.start()
            client = YarnClient(conf, cluster)
            client.submit_application("app1")
            with pytest.raises(errors.AllocationError):
                client.request_container("app1", memory_mb=conf.get_int(
                    "yarn.scheduler.maximum-allocation-mb"), vcores=1)
            cluster.shutdown()

    def test_vcores_limit_enforced(self):
        with agent("yarn.scheduler.maximum-allocation-vcores",
                   "ResourceManager", 1, 4):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1)
            cluster.start()
            client = YarnClient(conf, cluster)
            client.submit_application("app1")
            with pytest.raises(errors.AllocationError):
                client.request_container("app1", memory_mb=512, vcores=4)
            cluster.shutdown()

    def test_bigger_rm_max_is_harmless(self):
        with agent("yarn.scheduler.maximum-allocation-mb", "ResourceManager",
                   81920, 8192):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1)
            cluster.start()
            client = YarnClient(conf, cluster)
            client.submit_application("app1")
            granted = client.request_container("app1", memory_mb=8192,
                                               vcores=1)
            assert granted["memory_mb"] == 8192
            cluster.shutdown()


class TestYarnTokensAndTimeline:
    def test_token_ordering_violated_across_rms(self):
        with agent("yarn.resourcemanager.delegation.token.renew-interval",
                   "ResourceManager", (86400000, 864000), 86400000):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1,
                                      num_resourcemanagers=2)
            cluster.start()
            client = YarnClient(conf, cluster)
            first = client.get_delegation_token(rm=cluster.resourcemanagers[0])
            cluster.run_for(10.0)
            second = client.get_delegation_token(rm=cluster.resourcemanagers[1])
            assert second["expiry_time"] < first["expiry_time"]
            cluster.shutdown()

    def test_timeline_client_on_server_off(self):
        with agent("yarn.timeline-service.enabled", UNIT_TEST, True, False):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1, with_ahs=True)
            cluster.start()
            client = YarnClient(conf, cluster)
            with pytest.raises(errors.ConnectError):
                client.publish_timeline_entity({"entity": "e1"})
            cluster.shutdown()

    def test_timeline_homogeneous_on(self):
        with agent("yarn.timeline-service.enabled", UNIT_TEST, True, True):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1, with_ahs=True)
            cluster.start()
            client = YarnClient(conf, cluster)
            assert client.publish_timeline_entity({"entity": "e1"})
            assert client.query_timeline_web() == [{"entity": "e1"}]
            cluster.shutdown()

    def test_http_policy_mismatch_refused(self):
        with agent("yarn.http.policy", "ApplicationHistoryServer",
                   "HTTPS_ONLY", "HTTP_ONLY"):
            conf = YarnConfiguration()
            cluster = MiniYARNCluster(conf, num_nodemanagers=1, with_ahs=True)
            cluster.start()
            client = YarnClient(conf, cluster)
            with pytest.raises(errors.ConnectError):
                client.query_timeline_web()
            cluster.shutdown()


class TestFlink:
    def test_akka_ssl_mismatch_breaks_registration(self):
        with agent("akka.ssl.enabled", "JobManager", True, False):
            conf = FlinkConfiguration()
            cluster = MiniFlinkCluster(conf, num_taskmanagers=1)
            with pytest.raises(errors.SslError):
                cluster.start()
            cluster.shutdown()

    def test_data_ssl_mismatch_breaks_partition_transfer(self):
        with agent("taskmanager.data.ssl.enabled", "TaskManager",
                   (True, False), False):
            conf = FlinkConfiguration()
            cluster = MiniFlinkCluster(conf, num_taskmanagers=2)
            cluster.start()
            sender, receiver = cluster.taskmanagers
            with pytest.raises(errors.SslError):
                sender.send_partition(receiver, [1, 2, 3])
            cluster.shutdown()

    def test_jobmanager_overestimates_slots(self):
        with agent("taskmanager.numberOfTaskSlots", "JobManager", 8, 2):
            conf = FlinkConfiguration()
            cluster = MiniFlinkCluster(conf, num_taskmanagers=2)
            cluster.start()
            with pytest.raises(errors.SlotAllocationError):
                cluster.jobmanager.allocate_slots(parallelism=4)
            cluster.shutdown()

    def test_jobmanager_underestimates_slots(self):
        with agent("taskmanager.numberOfTaskSlots", "JobManager", 2, 8):
            conf = FlinkConfiguration()
            cluster = MiniFlinkCluster(conf, num_taskmanagers=2)
            cluster.start()
            with pytest.raises(errors.SlotAllocationError):
                # the user sizes the job to 8x2 slots, the JM sees 2x2
                cluster.jobmanager.allocate_slots(parallelism=16)
            cluster.shutdown()

    def test_inline_init_maps_conf_to_taskmanager(self):
        """Flink's copied-init quirk: the annotation in the test utility
        must still map the TaskManager's conf correctly."""
        session = ConfAgent()
        with session:
            conf = FlinkConfiguration()
            cluster = MiniFlinkCluster(conf, num_taskmanagers=2)
            cluster.start()
            for index, taskmanager in enumerate(cluster.taskmanagers):
                assert session._resolve(taskmanager.conf) == ("TaskManager",
                                                              index)
            cluster.shutdown()


class TestHBase:
    def test_thrift_compact_mismatch(self):
        with agent("hbase.regionserver.thrift.compact", "ThriftServer", True,
                   False):
            conf = HBaseConfiguration()
            cluster = MiniHBaseCluster(conf, num_regionservers=1,
                                       with_thrift=True)
            cluster.start()
            cluster.master.create_table("t1")
            with pytest.raises(errors.DecodeError):
                ThriftAdmin(conf, cluster).put("t1", "r", "v")
            cluster.shutdown()

    def test_thrift_framed_mismatch(self):
        with agent("hbase.regionserver.thrift.framed", "ThriftServer", True,
                   False):
            conf = HBaseConfiguration()
            cluster = MiniHBaseCluster(conf, num_regionservers=1,
                                       with_thrift=True)
            cluster.start()
            cluster.master.create_table("t1")
            with pytest.raises(errors.DecodeError):
                ThriftAdmin(conf, cluster).put("t1", "r", "v")
            cluster.shutdown()

    def test_thrift_homogeneous_compact_framed(self):
        for compact in (True, False):
            with agent("hbase.regionserver.thrift.compact", "ThriftServer",
                       compact, compact):
                conf = HBaseConfiguration()
                conf.set("hbase.regionserver.thrift.framed", True)
                cluster = MiniHBaseCluster(conf, num_regionservers=1,
                                           with_thrift=True)
                cluster.start()
                cluster.master.create_table("t1")
                admin = ThriftAdmin(conf, cluster)
                admin.put("t1", "r", "v")
                assert admin.get("t1", "r")["value"] == "v"
                cluster.shutdown()

    def test_hbase_writes_wal_to_embedded_hdfs(self):
        conf = HBaseConfiguration()
        cluster = MiniHBaseCluster(conf, num_regionservers=2)
        cluster.start()
        cluster.master.create_table("walled")
        assert cluster.namenode.namespace.exists(
            "/hbase/MasterProcWALs/walled")
        cluster.shutdown()

    def test_direct_open_region_uses_server_conf(self):
        conf = HBaseConfiguration()
        cluster = MiniHBaseCluster(conf, num_regionservers=1)
        cluster.start()
        server = cluster.regionservers[0]
        server.open_region("ok-region", expected_split_size=conf.get_int(
            "hbase.hregion.max.filesize"))
        with pytest.raises(errors.NodeStateError):
            server.open_region("bad-region", expected_split_size=123)
        cluster.shutdown()
