"""Unit tests for the throttler and timed waits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SocketTimeout
from repro.common.network import BandwidthThrottler, timed_wait
from repro.common.simulation import Simulator


def drain(sim, throttler, nbytes, chunk):
    """Acquire ``nbytes`` in ``chunk``-sized pieces; returns elapsed time."""

    def body():
        remaining = nbytes
        while remaining > 0:
            take = min(chunk, remaining)
            yield from throttler.acquire(take)
            remaining -= take
        return sim.now

    return sim.run_process(body())


class TestBandwidthThrottler:
    def test_burst_capacity_is_free(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 1000.0)
        assert drain(sim, throttler, 1000, 100) == pytest.approx(0.0, abs=1e-3)

    def test_sustained_rate_enforced(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 1000.0)
        # 1000 burst + 4000 refilled over ~4 seconds
        elapsed = drain(sim, throttler, 5000, 100)
        assert elapsed == pytest.approx(4.0, rel=0.02)

    def test_rate_reread_live(self):
        sim = Simulator()
        rate = {"value": 1000.0}
        throttler = BandwidthThrottler(sim, rate_fn=lambda: rate["value"])
        drain(sim, throttler, 1000, 1000)  # exhaust the burst
        rate["value"] = 10000.0
        elapsed_start = sim.now
        drain(sim, throttler, 10000, 1000)
        assert sim.now - elapsed_start == pytest.approx(1.0, rel=0.05)

    def test_force_debit_creates_deficit(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 100.0)
        throttler.force_debit(600.0)  # burst is 100, deficit 500
        assert throttler.deficit == pytest.approx(500.0, rel=0.01)

    def test_wait_until_clear_repays_deficit_at_rate(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 100.0)
        throttler.force_debit(600.0)

        def body():
            yield from throttler.wait_until_clear()
            return sim.now

        assert sim.run_process(body()) == pytest.approx(5.0, rel=0.02)

    def test_wait_until_clear_immediate_when_positive(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 100.0)

        def body():
            yield from throttler.wait_until_clear()
            return sim.now

        assert sim.run_process(body()) == 0.0

    def test_would_block_reflects_quota(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 100.0)
        assert not throttler.would_block(50)
        throttler.force_debit(100)
        assert throttler.would_block(50)

    def test_throttled_time_accumulates(self):
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: 100.0)
        drain(sim, throttler, 500, 100)
        assert throttler.total_throttled_time > 0

    @given(st.integers(min_value=200, max_value=20000),
           st.integers(min_value=10, max_value=500),
           st.floats(min_value=50.0, max_value=5000.0))
    @settings(max_examples=40, deadline=None)
    def test_never_faster_than_rate_property(self, nbytes, chunk, rate):
        """Past the burst allowance, delivery can never beat the cap."""
        sim = Simulator()
        throttler = BandwidthThrottler(sim, rate_fn=lambda: rate)
        elapsed = drain(sim, throttler, nbytes, chunk)
        # the burst allowance plus (at most) one overdrafted final chunk
        # are free; everything else must be paced at the configured rate.
        free = rate * throttler.burst_seconds + chunk
        lower_bound = max(nbytes - free, 0) / rate
        assert elapsed >= lower_bound - 1e-6


class TestTimedWait:
    def test_value_delivered_before_deadline(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(1.0, event.succeed, "data")

        def body():
            value = yield from timed_wait(sim, event, timeout=5.0)
            return value

        assert sim.run_process(body()) == "data"

    def test_timeout_raises(self):
        sim = Simulator()
        event = sim.event()  # never triggers

        def body():
            yield from timed_wait(sim, event, timeout=2.0, what="read")

        with pytest.raises(SocketTimeout):
            sim.run_process(body())
        assert sim.now == pytest.approx(2.0)

    def test_late_event_does_not_crash_after_timeout(self):
        sim = Simulator()
        event = sim.event()
        sim.schedule(10.0, event.succeed, "late")

        def body():
            yield from timed_wait(sim, event, timeout=2.0)

        with pytest.raises(SocketTimeout):
            sim.run_process(body())
        sim.run()  # the late succeed must not surface as a crash
        assert sim.crashed_processes == []

    def test_early_win_cancels_deadline_timer(self):
        """The losing deadline must not linger: timed_wait used to leak a
        watcher process plus a live deadline timer per resolved race."""
        sim = Simulator()
        event = sim.event()
        sim.schedule(1.0, event.succeed, "data")

        def body():
            value = yield from timed_wait(sim, event, timeout=1000.0)
            return value

        assert sim.run_process(body()) == "data"
        assert sim.pending_events() == 0

    def test_many_races_leave_no_residue(self):
        sim = Simulator()

        def one_race(index):
            event = sim.event()
            sim.schedule(0.5, event.succeed, index)
            value = yield from timed_wait(sim, event, timeout=60.0)
            return value

        for index in range(50):
            assert sim.run_process(one_race(index)) == index
        assert sim.pending_events() == 0
        assert sim.crashed_processes == []
