"""A tiny synthetic application + corpus for framework-level tests.

Used by the TestGenerator/TestRunner/pooling/orchestrator unit tests so
they don't depend on the (heavier) simulated cloud systems.  The app has
one node type, a handful of parameters with known behaviours, and test
factories that plant deterministic-unsafe, flaky, broken-at-baseline,
and node-free unit tests.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.errors import TestFailure
from repro.common.node import register_node_type
from repro.common.params import BOOL, INT, ParamRegistry
from repro.core.confagent import current_agent
from repro.core.registry import Corpus, TestContext, UnitTest

SYNTH_REGISTRY = ParamRegistry("synth")
SYNTH_REGISTRY.define("synth.mode", BOOL, False)
SYNTH_REGISTRY.define("synth.level", INT, 10, candidates=(10, 1000))
SYNTH_REGISTRY.define("synth.safe-a", INT, 1, candidates=(1, 100))
SYNTH_REGISTRY.define("synth.safe-b", BOOL, True)
SYNTH_REGISTRY.define("synth.safe-c", INT, 7, candidates=(7, 700))
SYNTH_REGISTRY.define("synth.never-read", INT, 0, candidates=(0, 5))

register_node_type("synth", "Service")


class SynthConfiguration(Configuration):
    registry = SYNTH_REGISTRY


class Service:
    """One node; reads every parameter at init so pre-runs see usage."""

    node_type = "Service"

    def __init__(self, conf: Configuration) -> None:
        agent = current_agent()
        agent.start_init(self, self.node_type)
        try:
            self.conf = ref_to_clone(conf)
            self.mode = self.conf.get_bool("synth.mode")
            self.level = self.conf.get_int("synth.level")
            self.safe_a = self.conf.get_int("synth.safe-a")
            self.safe_b = self.conf.get_bool("synth.safe-b")
            self.safe_c = self.conf.get_int("synth.safe-c")
        finally:
            agent.stop_init()

    def exchange(self, peer: "Service") -> None:
        """Fails when the peers' unsafe parameters disagree."""
        if self.conf.get_bool("synth.mode") != peer.conf.get_bool("synth.mode"):
            raise TestFailure("synth.mode mismatch between peers")
        if self.conf.get_int("synth.level") != peer.conf.get_int("synth.level"):
            raise TestFailure("synth.level mismatch between peers")


def two_service_test(name: str = "TestSynth.testExchange",
                     flaky_rate: float = 0.0, **meta) -> UnitTest:
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        first = Service(conf)
        second = Service(conf)
        first.exchange(second)
        second.exchange(first)
        if flaky_rate and ctx.maybe(flaky_rate):
            raise TestFailure("synthetic nondeterministic failure")

    return UnitTest(app="synth", name=name, fn=body, **meta)


def client_vs_service_test(name: str = "TestSynth.testClientView") -> UnitTest:
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        service = Service(conf)
        if conf.get_int("synth.level") != service.level:
            raise TestFailure("client and service disagree on synth.level")

    return UnitTest(app="synth", name=name, fn=body)


def safe_only_test(name: str = "TestSynth.testSafeParams") -> UnitTest:
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        service = Service(conf)
        if service.safe_a < 0:
            raise TestFailure("impossible")

    return UnitTest(app="synth", name=name, fn=body)


def no_node_test(name: str = "TestSynth.testPureFunction") -> UnitTest:
    def body(ctx: TestContext) -> None:
        if 1 + 1 != 2:
            raise TestFailure("arithmetic broke")

    return UnitTest(app="synth", name=name, fn=body)


def broken_baseline_test(name: str = "TestSynth.testAlwaysFails") -> UnitTest:
    def body(ctx: TestContext) -> None:
        SynthConfiguration()
        Service(SynthConfiguration())
        raise TestFailure("broken at baseline")

    return UnitTest(app="synth", name=name, fn=body)


def uncertain_conf_test(name: str = "TestSynth.testLateConf") -> UnitTest:
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        Service(conf)
        late = SynthConfiguration()  # unmappable: nodes already exist
        if late.get_int("synth.safe-c") < 0:
            raise TestFailure("impossible")

    return UnitTest(app="synth", name=name, fn=body)


def _heterogeneous(first: Service, second: Service) -> bool:
    """True only under heterogeneous configurations: the pre-run baseline
    (homogeneous defaults) must survive, because it executes in the
    *parent* process — only supervised workers may be sacrificed."""
    return first.mode != second.mode or first.level != second.level


def hard_crash_test(name: str = "TestSynth.testWorkerCrash",
                    exit_code: int = 1) -> UnitTest:
    """Kills the hosting *process* on any heterogeneous execution —
    the supervised worker pool's poison-profile case."""
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        first = Service(conf)
        second = Service(conf)
        if _heterogeneous(first, second):
            os._exit(exit_code)

    return UnitTest(app="synth", name=name, fn=body)


def hanging_test(name: str = "TestSynth.testRealTimeHang") -> UnitTest:
    """Hangs in *real* time (sleep loop) on any heterogeneous execution:
    invisible to the simulated-time watchdog, so only the supervisor's
    wall-clock deadline can end it.  Heartbeats keep flowing (the child's
    side thread still runs), so this exercises the deadline path, not the
    frozen-process path."""
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        first = Service(conf)
        second = Service(conf)
        while _heterogeneous(first, second):
            time.sleep(0.01)

    return UnitTest(app="synth", name=name, fn=body)


def spinning_test(name: str = "TestSynth.testCpuSpin") -> UnitTest:
    """Burns CPU forever on any heterogeneous execution — bait for
    RLIMIT_CPU's SIGXCPU (or, failing that, the wall-clock deadline)."""
    def body(ctx: TestContext) -> None:
        conf = SynthConfiguration()
        first = Service(conf)
        second = Service(conf)
        while _heterogeneous(first, second):
            pass

    return UnitTest(app="synth", name=name, fn=body)


def make_corpus(tests: List[UnitTest]) -> Corpus:
    corpus = Corpus()
    for test in tests:
        corpus.register(test)
    return corpus
