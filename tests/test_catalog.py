"""Sanity tests over the application catalog and paper ground truth."""

from __future__ import annotations

import pytest

from repro.apps import catalog


class TestSpecs:
    @pytest.mark.parametrize("app", catalog.APP_NAMES)
    def test_expected_params_exist_in_registry(self, app):
        spec = catalog.spec_for(app)
        for param in spec.expected_unsafe + spec.expected_false_positives:
            assert param in spec.registry, param

    @pytest.mark.parametrize("app", catalog.APP_NAMES)
    def test_expected_sets_disjoint(self, app):
        spec = catalog.spec_for(app)
        assert not set(spec.expected_unsafe) & set(
            spec.expected_false_positives)

    def test_union_of_expected_unsafe_is_table3(self):
        union = set()
        for app in catalog.APP_NAMES:
            union |= set(catalog.spec_for(app).expected_unsafe)
        assert len(union) == 41

    def test_sixteen_unique_false_positives_expected(self):
        union = set()
        for app in catalog.APP_NAMES:
            union |= set(catalog.spec_for(app).expected_false_positives)
        assert len(union) == 16

    def test_table3_section_totals(self):
        union = set()
        for app in catalog.APP_NAMES:
            union |= set(catalog.spec_for(app).expected_unsafe)
        sections = {}
        for param in union:
            section = catalog.section_for_param(param)
            sections[section] = sections.get(section, 0) + 1
        assert sections == {"Flink": 3, "Hadoop Common": 2, "HBase": 2,
                            "HDFS": 21, "MapReduce": 8, "Yarn": 5}


class TestSectionMapping:
    @pytest.mark.parametrize("param,section", [
        ("dfs.heartbeat.interval", "HDFS"),
        ("mapreduce.job.maps", "MapReduce"),
        ("yarn.http.policy", "Yarn"),
        ("hbase.regionserver.thrift.compact", "HBase"),
        ("hadoop.rpc.protection", "Hadoop Common"),
        ("ipc.client.rpc-timeout.ms", "Hadoop Common"),
        ("io.file.buffer.size", "Hadoop Common"),
        ("akka.ssl.enabled", "Flink"),
        ("taskmanager.numberOfTaskSlots", "Flink"),
    ])
    def test_param_prefixes(self, param, section):
        assert catalog.section_for_param(param) == section


class TestPaperConstants:
    def test_table5_rows_monotone(self):
        for app, row in catalog.PAPER_TABLE5.items():
            assert row[0] >= row[1] >= row[2] >= row[3], app

    def test_statistics_cover_all_apps(self):
        for app in catalog.APP_NAMES:
            assert app in catalog.PAPER_STATISTICS

    def test_ground_truth_helper(self):
        truth = catalog.paper_ground_truth()
        assert set(truth) == set(catalog.APP_NAMES)
        assert "dfs.heartbeat.interval" in truth["hdfs"]["unsafe"]
