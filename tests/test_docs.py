"""Docs/CLI cross-reference checks (tools/check_docs.py) as tier-1.

The CI ``docs-check`` job runs the same checker standalone; running it
here too means a renamed flag or an undocumented subcommand fails the
ordinary test suite before the PR ever reaches CI.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402


def test_cli_surface_is_nonempty():
    flags, commands = check_docs.collect_cli_surface()
    assert "--store" in flags and "--serve-state" in flags
    assert {"campaign", "serve", "serve-token", "store"} <= commands


def test_docs_and_cli_agree():
    problems = check_docs.check(REPO_ROOT)
    assert not problems, "\n".join(problems)


def test_checker_catches_a_planted_unknown_flag(tmp_path):
    (tmp_path / "README.md").write_text(
        "Use `--definitely-not-a-real-flag` for campaign serve "
        "serve-token store worker audit why corpus evaluate list-apps "
        "list-params validate-obs.\n")
    problems = check_docs.check(str(tmp_path))
    assert any("--definitely-not-a-real-flag" in p for p in problems)


def test_checker_requires_the_docs_index(tmp_path):
    (tmp_path / "README.md").write_text("")
    problems = check_docs.check(str(tmp_path))
    assert any("docs/README.md: missing" in p for p in problems)
