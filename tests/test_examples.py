"""Smoke tests: the runnable examples must keep working end to end.

Each example's ``main()`` is imported and executed (they assert their own
expected outcomes internally).  The two slowest examples — the full HDFS
campaign and the whole-evaluation driver — are exercised through the
session-scoped campaign fixtures elsewhere, so they are only
import-checked here.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        "example_%s" % name, EXAMPLES_DIR / ("%s.py" % name))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRunnableExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "toy.codec" in out
        assert "OK" in out

    def test_remediation(self, capsys):
        load_example("remediation").main()
        out = capsys.readouterr().out
        assert out.count("BALANCER TIMEOUT") == 3
        assert out.count("OK (") == 3

    def test_dependency_inference(self, capsys):
        load_example("dependency_inference").main()
        out = capsys.readouterr().out
        assert "dfs.namenode.https-address" in out
        assert "OK" in out

    def test_rolling_reconfig_workaround(self, capsys):
        load_example("rolling_reconfig_workaround").main()
        out = capsys.readouterr().out
        assert "receiver (NameNode) first: 0" in out

    def test_balancer_case_study(self, capsys):
        load_example("balancer_case_study").main()
        out = capsys.readouterr().out
        assert "collapse factor" in out
        assert "BALANCER TIMEOUT" in out

    @pytest.mark.chaos
    def test_chaos_campaign(self, capsys):
        load_example("chaos_campaign").main()
        out = capsys.readouterr().out
        assert "byte-identical chaos report" in out
        assert "reproduces the uninterrupted report" in out

    def test_ci_regression_gate(self, capsys):
        load_example("ci_regression_gate").main()
        out = capsys.readouterr().out
        assert "baseline match" in out
        assert "FAIL the build" in out


class TestHeavyExamplesImportable:
    @pytest.mark.parametrize("name", ["find_hdfs_unsafe_params",
                                      "full_evaluation"])
    def test_module_loads_and_exposes_main(self, name):
        module = load_example(name)
        assert callable(module.main)
