"""Unit tests for ConfAgent: the §6.2 mapping rules and §6.3 machinery."""

from __future__ import annotations

import pytest

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.params import INT, ParamRegistry
from repro.core.confagent import (NO_OVERRIDE, UNCERTAIN, UNIT_TEST,
                                  ConfAgent, NullAgent, ThreadOwnershipAgent,
                                  current_agent)
from repro.core.testgen import HeteroAssignment, ParamAssignment


def make_conf_class():
    registry = ParamRegistry("agenttest")
    registry.define("x.alpha", INT, 1)
    registry.define("x.beta", INT, 2)

    class AgentTestConfiguration(Configuration):
        pass

    AgentTestConfiguration.registry = registry
    return AgentTestConfiguration


class FakeNode:
    """Minimal node following the Fig. 2b pattern."""

    node_type = "Server"

    def __init__(self, conf, node_type="Server", make_component_conf=False):
        self.node_type = node_type
        agent = current_agent()
        agent.start_init(self, node_type)
        try:
            self.conf = ref_to_clone(conf)
            if make_component_conf:
                # line 19 of Fig. 2b: a subcomponent creating its own conf
                self.component_conf = type(conf)()
        finally:
            agent.stop_init()


class TestRules:
    def test_rule_1_2_conf_before_nodes_belongs_to_unit_test(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            conf = cls()
            assert agent._resolve(conf) == (UNIT_TEST, 0)

    def test_rule_1_1_conf_during_init_belongs_to_node(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            shared = cls()
            node = FakeNode(shared, make_component_conf=True)
            assert agent._resolve(node.component_conf) == ("Server", 0)

    def test_rule_2_ref_to_clone_maps_clone_to_node(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            shared = cls()
            node = FakeNode(shared)
            assert node.conf is not shared
            assert agent._resolve(node.conf) == ("Server", 0)
            assert agent._resolve(shared) == (UNIT_TEST, 0)

    def test_rule_3_clone_follows_source_owner(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            shared = cls()
            clone = cls(shared)
            assert agent._resolve(clone) == (UNIT_TEST, 0)

    def test_conf_created_after_nodes_is_uncertain(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            shared = cls()
            FakeNode(shared)
            late = cls()
            assert agent._resolve(late) == (UNCERTAIN, 0)
            assert agent.has_uncertain_confs()

    def test_node_indexes_count_per_type(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            shared = cls()
            a = FakeNode(shared, node_type="Server")
            b = FakeNode(shared, node_type="Server")
            c = FakeNode(shared, node_type="Worker")
            assert agent._resolve(a.conf) == ("Server", 0)
            assert agent._resolve(b.conf) == ("Server", 1)
            assert agent._resolve(c.conf) == ("Worker", 0)
            assert agent.started_node_groups() == {"Server": 2, "Worker": 1}

    def test_nested_init_attributes_to_innermost_node(self):
        cls = make_conf_class()
        with ConfAgent() as agent:
            shared = cls()

            class Outer:
                def __init__(self):
                    agent.start_init(self, "Outer")
                    try:
                        self.conf = ref_to_clone(shared)
                        self.inner = FakeNode(shared, node_type="Inner",
                                              make_component_conf=True)
                        self.own_conf = cls()
                    finally:
                        agent.stop_init()

            outer = Outer()
            assert agent._resolve(outer.inner.component_conf) == ("Inner", 0)
            assert agent._resolve(outer.own_conf) == ("Outer", 0)


class TestInjection:
    def _assignment(self):
        return HeteroAssignment((ParamAssignment(
            param="x.alpha", group="Server", group_values=(100,),
            other_value=200),))

    def test_node_sees_group_value(self):
        cls = make_conf_class()
        with ConfAgent(assignment=self._assignment()):
            shared = cls()
            node = FakeNode(shared)
            assert node.conf.get("x.alpha") == 100

    def test_unit_test_sees_other_value(self):
        cls = make_conf_class()
        with ConfAgent(assignment=self._assignment()):
            shared = cls()
            FakeNode(shared)
            assert shared.get("x.alpha") == 200

    def test_untargeted_param_not_overridden(self):
        cls = make_conf_class()
        with ConfAgent(assignment=self._assignment()):
            shared = cls()
            node = FakeNode(shared)
            assert node.conf.get("x.beta") == 2

    def test_uncertain_conf_never_injected(self):
        cls = make_conf_class()
        with ConfAgent(assignment=self._assignment()):
            shared = cls()
            FakeNode(shared)
            late = cls()
            assert late.get("x.alpha") == 1  # registry default, no override

    def test_injected_reads_counted(self):
        cls = make_conf_class()
        with ConfAgent(assignment=self._assignment()) as agent:
            shared = cls()
            node = FakeNode(shared)
            node.conf.get("x.alpha")
            assert agent.injected_reads >= 1

    def test_shared_object_reads_attribute_by_object_not_thread(self):
        """The key §6.1 scenario: the unit test calls a node's function on
        the main thread; the read must still resolve to the node."""
        cls = make_conf_class()
        with ConfAgent(assignment=self._assignment()):
            shared = cls()
            node = FakeNode(shared)

            def fun_a():  # node-internal function called by the test
                return node.conf.get("x.alpha")

            assert fun_a() == 100


class TestInterceptSet:
    def test_write_through_to_parent(self):
        cls = make_conf_class()
        with ConfAgent():
            shared = cls()
            node = FakeNode(shared)
            # the node fills in a value; the unit test must see it through
            # its original object (§6.3 interceptSet)
            node.conf.set("x.beta", 77)
            assert shared.get("x.beta") == 77

    def test_unit_test_set_does_not_write_through(self):
        cls = make_conf_class()
        with ConfAgent():
            shared = cls()
            node = FakeNode(shared)
            shared.set("x.beta", 5)
            assert node.conf.get("x.beta") == 2  # clone made before the set


class TestPreRunRecording:
    def test_usage_recorded_per_owner(self):
        cls = make_conf_class()
        with ConfAgent(record_usage=True) as agent:
            shared = cls()
            shared.get("x.alpha")
            node = FakeNode(shared)
            node.conf.get("x.beta")
            assert "x.alpha" in agent.params_used_by(UNIT_TEST)
            assert "x.beta" in agent.params_used_by("Server")

    def test_uncertain_params_recorded(self):
        cls = make_conf_class()
        with ConfAgent(record_usage=True) as agent:
            shared = cls()
            FakeNode(shared)
            late = cls()
            late.get("x.alpha")
            assert "x.alpha" in agent.uncertain_params

    def test_no_recording_without_flag(self):
        cls = make_conf_class()
        with ConfAgent(record_usage=False) as agent:
            conf = cls()
            conf.get("x.alpha")
            assert agent.usage == {}


class TestScoping:
    def test_null_agent_outside_sessions(self):
        assert isinstance(current_agent(), NullAgent)
        assert current_agent().intercept_get(None, "x") is NO_OVERRIDE

    def test_agent_restored_after_session(self):
        with ConfAgent() as agent:
            assert current_agent() is agent
        assert isinstance(current_agent(), NullAgent)

    def test_sessions_nest(self):
        with ConfAgent() as outer:
            with ConfAgent() as inner:
                assert current_agent() is inner
            assert current_agent() is outer


class TestThreadOwnershipAblation:
    def test_misattributes_test_thread_calls(self):
        """The paper's failed third attempt: node functions called from
        the unit-test thread are attributed to whichever node 'owns' the
        thread — here the first node initialized on it."""
        cls = make_conf_class()
        with ThreadOwnershipAgent() as agent:
            shared = cls()
            first = FakeNode(shared, node_type="Server")
            second = FakeNode(shared, node_type="Worker")
            # a read through the *second* node's conf object...
            resolved = agent._resolve(second.conf)
            # ...is wrongly attributed to the first node (thread owner).
            assert resolved == ("Server", 0)
            assert agent.misattributions >= 1
