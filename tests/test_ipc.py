"""Unit tests for the RPC layer and the shared-IPC quirk."""

from __future__ import annotations

import pytest

import repro.perf as perf
from repro.common.configuration import Configuration
from repro.common.errors import RpcError, SaslError, SocketTimeout
from repro.common.ipc import (IPC_SHARED_PARAMS, IpcComponent, RpcClient,
                              RpcServer, ipc_sharing_enabled, set_ipc_sharing)
from repro.common.params import DURATION_MS, ENUM, INT, ParamRegistry
from repro.common.simulation import Simulator
from repro.core.confagent import ConfAgent


def make_conf_class():
    registry = ParamRegistry("ipctest")
    registry.define("hadoop.rpc.protection", ENUM, "authentication",
                    values=("authentication", "integrity", "privacy"))
    registry.define("ipc.client.rpc-timeout.ms", DURATION_MS, 0)
    for name in IPC_SHARED_PARAMS:
        registry.define(name, INT, 10)

    class IpcTestConfiguration(Configuration):
        pass

    IpcTestConfiguration.registry = registry
    return IpcTestConfiguration


@pytest.fixture()
def conf_class():
    return make_conf_class()


def make_endpoints(conf_class, client_overrides=None, server_overrides=None):
    client_conf = conf_class()
    server_conf = conf_class()
    for name, value in (client_overrides or {}).items():
        client_conf.set(name, value)
    for name, value in (server_overrides or {}).items():
        server_conf.set(name, value)
    server = RpcServer("TestServer", server_conf)
    server.register("echo", lambda value: value)
    server.register("add", lambda a, b: a + b)
    return RpcClient(client_conf), server


class TestRpcCall:
    def test_round_trip(self, conf_class):
        client, server = make_endpoints(conf_class)
        assert client.call(server, "echo", {"k": [1, 2]}) == {"k": [1, 2]}
        assert client.call(server, "add", 2, 3) == 5
        assert server.calls_served == 2

    def test_unknown_method(self, conf_class):
        client, server = make_endpoints(conf_class)
        with pytest.raises(RpcError):
            client.call(server, "nope")

    @pytest.mark.parametrize("level", ("authentication", "integrity",
                                       "privacy"))
    def test_matching_protection_works(self, conf_class, level):
        client, server = make_endpoints(
            conf_class, {"hadoop.rpc.protection": level},
            {"hadoop.rpc.protection": level})
        assert client.call(server, "echo", "x") == "x"

    def test_protection_mismatch_fails(self, conf_class):
        client, server = make_endpoints(
            conf_class, {"hadoop.rpc.protection": "privacy"},
            {"hadoop.rpc.protection": "authentication"})
        with pytest.raises(SaslError):
            client.call(server, "echo", "x")


class TestTimedCalls:
    def run_timed(self, conf_class, client_timeout_ms, server_timeout_ms,
                  duration):
        sim = Simulator()
        client, server = make_endpoints(
            conf_class, {"ipc.client.rpc-timeout.ms": client_timeout_ms},
            {"ipc.client.rpc-timeout.ms": server_timeout_ms})
        return sim.run_process(
            client.call_timed(server, "echo", ("ok",), duration=duration))

    def test_fast_call_unaffected(self, conf_class):
        assert self.run_timed(conf_class, 1000, 0, duration=0.3) == "ok"

    def test_no_timeout_waits_forever(self, conf_class):
        assert self.run_timed(conf_class, 0, 0, duration=500.0) == "ok"

    def test_matching_short_timeouts_keepalive_saves_call(self, conf_class):
        # server keepalive = timeout/2 = 0.5s < client deadline 1s
        assert self.run_timed(conf_class, 1000, 1000, duration=300.0) == "ok"

    def test_client_short_server_default_times_out(self, conf_class):
        # the Table-3 failure: server paces at 60s, client waits 1s
        with pytest.raises(SocketTimeout):
            self.run_timed(conf_class, 1000, 0, duration=300.0)

    def test_client_short_server_long_times_out(self, conf_class):
        with pytest.raises(SocketTimeout):
            self.run_timed(conf_class, 1000, 120000, duration=300.0)

    def test_client_long_server_short_is_fine(self, conf_class):
        assert self.run_timed(conf_class, 120000, 1000, duration=300.0) == "ok"


class TestSharedIpcComponent:
    def test_sharing_flag_toggles(self):
        previous = set_ipc_sharing(False)
        try:
            assert not ipc_sharing_enabled()
        finally:
            set_ipc_sharing(previous)

    def test_consistent_values_pass_cross_check(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        ipc.check_connection_params(conf_class())
        assert ipc.cross_check_failures == 0

    def test_heterogeneous_view_trips_cross_check(self, conf_class):
        """Simulates ConfAgent giving the caller's conf a different value
        than the component's own conf: the spurious failure behind the
        paper's four IPC false positives."""
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        caller.set("ipc.client.connect.max.retries", 1000)
        with pytest.raises(RpcError):
            ipc.check_connection_params(caller)
        assert ipc.cross_check_failures == 1

    def test_sharing_disabled_is_immune(self, conf_class):
        """The paper's one-line Hadoop fix."""
        ipc = IpcComponent(conf_class, shared=False)
        caller = conf_class()
        caller.set("ipc.client.connect.max.retries", 1000)
        ipc.check_connection_params(caller)
        assert ipc.cross_check_failures == 0

    def test_rpc_client_consults_component(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        client_conf = conf_class()
        client_conf.set("ipc.client.kill.max", 99)
        server = RpcServer("S", conf_class())
        server.register("echo", lambda v: v)
        client = RpcClient(client_conf, ipc=ipc)
        with pytest.raises(RpcError):
            client.call(server, "echo", 1)


class TestCrossCheckMemo:
    """The fast-path memo on IpcComponent.check_connection_params must be
    an invisible optimisation: passed checks are skipped on repeat, but
    any write to either conf (or any agent ownership change) re-runs the
    full cross-check, and failures always raise and count."""

    @pytest.fixture(autouse=True)
    def fast_path_on(self):
        previous = perf.set_fast_path(True)
        yield
        perf.set_fast_path(previous)

    def test_repeat_check_skips_the_gets(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        ipc.check_connection_params(caller)

        def boom(name):
            raise AssertionError("memoised check must not re-read %s" % name)

        caller.get = boom  # instance shadow: any get would blow up
        ipc.check_connection_params(caller)

    def test_fast_path_off_rechecks_every_call(self, conf_class):
        perf.set_fast_path(False)
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        ipc.check_connection_params(caller)
        assert not ipc._check_memo
        ipc.check_connection_params(caller)
        assert ipc.cross_check_failures == 0

    def test_caller_write_invalidates_memo(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        ipc.check_connection_params(caller)
        caller.set("ipc.client.kill.max", 99)
        with pytest.raises(RpcError):
            ipc.check_connection_params(caller)
        assert ipc.cross_check_failures == 1

    def test_component_conf_write_invalidates_memo(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        ipc.check_connection_params(caller)
        ipc._own_conf.set("ipc.client.idlethreshold", 77)
        with pytest.raises(RpcError):
            ipc.check_connection_params(caller)
        assert ipc.cross_check_failures == 1

    def test_failures_are_never_memoised(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        caller.set("ipc.client.connect.max.retries", 1000)
        for expected in (1, 2, 3):
            with pytest.raises(RpcError):
                ipc.check_connection_params(caller)
            assert ipc.cross_check_failures == expected
        assert not ipc._check_memo

    def test_record_usage_agent_disables_memo(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        with ConfAgent(record_usage=True):
            ipc.check_connection_params(caller)
            assert not ipc._check_memo

    def test_agent_ownership_change_invalidates_memo(self, conf_class):
        ipc = IpcComponent(conf_class, shared=True)
        caller = conf_class()
        with ConfAgent() as agent:
            ipc.check_connection_params(caller)
            assert ipc._check_memo
            agent.ownership_epoch += 1  # what any _forget_conf does
            reads = []
            real_get = caller.get
            caller.get = lambda name: (reads.append(name), real_get(name))[1]
            ipc.check_connection_params(caller)
            assert reads  # stale memo discarded: the cross-check re-ran
