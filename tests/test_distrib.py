"""Distributed campaign execution: transport, protocol, fault tolerance.

The headline invariant: **where a profile ran cannot change findings.**
Every end-to-end test compares a distributed report byte-for-byte
against the serial baseline — through worker kills, partitions, stolen
leases, duplicate results, and full degradation to the local pool.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.common import transport as net
from repro.core import distrib, parallel
from repro.core.distrib import (EXIT_OK, EXIT_RECONNECTS_EXHAUSTED,
                                EXIT_REJECTED, Coordinator, _Conn,
                                corpus_digest, run_worker)
from repro.core.orchestrator import Campaign, CampaignConfig, ProfileOutcome
from repro.core.prerun import prerun_corpus
from repro.core.report import app_report_to_dict
from repro.core.runner import WORKER_CRASH
from synthetic_app import SYNTH_REGISTRY, two_service_test
from test_orchestrator import synthetic_campaign

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def full_dict(report):
    record = app_report_to_dict(report)
    # Supervision and distribution counters are run-scoped operations
    # (workers joined, leases stolen...), not findings: execution
    # placement legitimately differs between backends.
    record.pop("supervision")
    record.pop("distribution")
    return json.dumps(record, sort_keys=True)


def decoupled_config(**kw):
    """Profiles fully independent (no cross-profile blacklist coupling),
    so any commit order must agree with serial byte for byte."""
    return CampaignConfig(blacklist_threshold=999, **kw)


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def synth_factory(app, config):
    return synthetic_campaign(config=config)


# ---------------------------------------------------------------------------
# transport framing
# ---------------------------------------------------------------------------
class TestFrameTransport:
    def _pair(self, **kw):
        left, right = socket.socketpair()
        return net.FrameTransport(left, **kw), net.FrameTransport(right)

    def test_round_trip(self):
        a, b = self._pair()
        a.send({"kind": "hello", "nested": {"x": [1, 2, 3]}})
        assert b.recv(timeout=2.0) == {"kind": "hello",
                                       "nested": {"x": [1, 2, 3]}}
        assert a.frames_sent == 1 and b.frames_received == 1

    def test_many_frames_in_order(self):
        a, b = self._pair()
        for i in range(50):
            a.send({"i": i})
        assert [b.recv(timeout=2.0)["i"] for i in range(50)] == list(range(50))

    def test_eof_is_transport_error(self):
        a, b = self._pair()
        a.close()
        with pytest.raises(net.TransportError):
            b.recv(timeout=2.0)

    def test_read_deadline_is_timeout(self):
        a, b = self._pair()
        with pytest.raises(net.TransportTimeout):
            b.recv(timeout=0.05)

    def test_oversized_frame_refused_on_send(self):
        a, b = self._pair()
        with pytest.raises(net.TransportError):
            a.send({"blob": "x" * (net.MAX_FRAME_BYTES + 1)})

    def test_hostile_length_prefix_refused(self):
        left, right = socket.socketpair()
        transport_ = net.FrameTransport(right)
        left.sendall(net._HEADER.pack(net.MAX_FRAME_BYTES + 1))
        with pytest.raises(net.TransportError):
            transport_.recv(timeout=2.0)

    def test_non_object_frame_refused(self):
        left, right = socket.socketpair()
        transport_ = net.FrameTransport(right)
        payload = json.dumps([1, 2]).encode()
        left.sendall(net._HEADER.pack(len(payload)) + payload)
        with pytest.raises(net.TransportError):
            transport_.recv(timeout=2.0)

    def test_send_after_close_fails(self):
        a, _ = self._pair()
        a.close()
        with pytest.raises(net.TransportError):
            a.send({"kind": "x"})

    def test_trickled_frame_survives_timeouts_in_sync(self):
        """Regression: a timeout mid-frame used to discard the bytes
        already read, so the retry parsed payload bytes as a header.
        The partial frame must be buffered and resumed across retries,
        and the *next* frame must still parse cleanly."""
        left, right = socket.socketpair()
        transport_ = net.FrameTransport(right)
        payload = json.dumps({"kind": "trickled"}).encode()
        header = net._HEADER.pack(len(payload))

        left.sendall(header[:2])  # half a header, then stall
        with pytest.raises(net.TransportTimeout):
            transport_.recv(timeout=0.05)
        left.sendall(header[2:] + payload[:3])  # rest of header + stall
        with pytest.raises(net.TransportTimeout):
            transport_.recv(timeout=0.05)
        left.sendall(payload[3:])
        assert transport_.recv(timeout=2.0) == {"kind": "trickled"}

        second = json.dumps({"kind": "next"}).encode()
        left.sendall(net._HEADER.pack(len(second)) + second)
        assert transport_.recv(timeout=2.0) == {"kind": "next"}

    @pytest.mark.chaos
    def test_close_unblocks_a_sender_stuck_in_sendall(self):
        """Regression: close() waited on _send_lock, which a sender
        blocked in sendall() on a full kernel buffer holds — so the
        supervisor's close hung too.  The shutdown must happen before
        the lock so the stuck sender errors out and close() returns."""
        left, right = socket.socketpair()
        left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        right.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        sender = net.FrameTransport(left)
        failed = threading.Event()

        def pump():
            try:
                while True:
                    sender.send({"blob": "x" * 65536})
            except net.TransportError:
                failed.set()

        thread = threading.Thread(target=pump, daemon=True)
        thread.start()
        deadline = time.time() + 5.0
        while sender.frames_sent == 0 and time.time() < deadline:
            time.sleep(0.01)  # let the pump fill the kernel buffer
        time.sleep(0.2)
        started = time.time()
        sender.close()
        assert time.time() - started < 2.0, "close() blocked behind a sender"
        assert failed.wait(timeout=5.0), "stuck sender never unblocked"
        thread.join(timeout=5.0)
        right.close()


class TestNetFaultPlan:
    def test_inert_by_default(self):
        assert not net.NetFaultPlan().active

    def test_decisions_are_deterministic(self):
        plan = net.NetFaultPlan(seed=7, drop_prob=0.5, delay_prob=0.5)
        drops = [plan.drop_decision("c1", i) for i in range(64)]
        delays = [plan.delay_decision("c1", i) for i in range(64)]
        assert drops == [plan.drop_decision("c1", i) for i in range(64)]
        assert delays == [plan.delay_decision("c1", i) for i in range(64)]
        assert any(drops) and not all(drops)

    def test_decisions_differ_across_connections(self):
        plan = net.NetFaultPlan(seed=7, drop_prob=0.5)
        a = [plan.drop_decision("c1", i) for i in range(64)]
        b = [plan.drop_decision("c2", i) for i in range(64)]
        assert a != b

    def test_partition_severs_after_n_frames(self):
        a, b = self._pair_with_plan(net.NetFaultPlan(partition_after=3))
        for i in range(3):
            a.send({"i": i})
        with pytest.raises(net.TransportError):
            a.send({"i": 3})
        assert a.fault_counts == {"partition": 1}
        assert a.closed

    def test_dropped_frame_vanishes_silently(self):
        plan = net.NetFaultPlan(seed=1, drop_prob=1.0)
        a, b = self._pair_with_plan(plan)
        a.send({"kind": "gone"})
        assert a.fault_counts == {"drop": 1}
        with pytest.raises(net.TransportTimeout):
            b.recv(timeout=0.05)

    def test_round_trip_through_dict(self):
        plan = net.NetFaultPlan(seed=3, drop_prob=0.1, delay_prob=0.2,
                                delay_range_s=(0.5, 1.5), partition_after=9)
        from dataclasses import asdict
        rebuilt = net.net_fault_plan_from_dict(
            json.loads(json.dumps(asdict(plan))))
        assert rebuilt == plan
        assert net.net_fault_plan_from_dict(None) is None

    def _pair_with_plan(self, plan):
        left, right = socket.socketpair()
        return (net.FrameTransport(left, conn_id="t", plan=plan),
                net.FrameTransport(right))


class TestParseAddress:
    def test_forms(self):
        assert net.parse_address("1.2.3.4:99") == ("1.2.3.4", 99)
        assert net.parse_address(":99") == ("127.0.0.1", 99)
        assert net.parse_address("99") == ("127.0.0.1", 99)

    def test_garbage_refused(self):
        with pytest.raises(net.TransportError):
            net.parse_address("nope")
        with pytest.raises(net.TransportError):
            net.parse_address("host:70000")


# ---------------------------------------------------------------------------
# coordinator protocol (no sockets: straight through _handle_message)
# ---------------------------------------------------------------------------
def make_coordinator(**config_kwargs):
    config = decoupled_config(distributed="0", **config_kwargs)
    campaign = synthetic_campaign(config=config)
    profiles = [p for p in prerun_corpus(campaign.tests) if p.usable]
    tests_by_name = {t.full_name: t for t in campaign.tests}
    campaign.distribution.enabled = True
    coordinator = Coordinator(campaign, profiles, None, tests_by_name)
    return campaign, coordinator, profiles


def join(coordinator, name="w1", slots=1, digest=None):
    conn = _Conn(None)
    with coordinator.lock:
        reply = coordinator._handle_message(
            conn, {"kind": "hello", "worker": name, "slots": slots,
                   "digest": digest})
    return conn, reply


def fetch(coordinator, conn, max_tasks=1):
    with coordinator.lock:
        return coordinator._handle_message(
            conn, {"kind": "fetch", "max": max_tasks})


def deliver(coordinator, conn, task):
    with coordinator.lock:
        return coordinator._handle_message(conn, {
            "kind": "result", "task": task,
            "outcome": parallel.profile_outcome_to_dict(ProfileOutcome())})


class TestCoordinatorProtocol:
    def test_first_contact_hello_gets_welcome_with_settings(self):
        campaign, coordinator, _ = make_coordinator()
        _, welcome = join(coordinator, digest=None)
        assert welcome["kind"] == "welcome"
        assert welcome["app"] == "synth"
        assert welcome["digest"] == corpus_digest(campaign)
        assert welcome["settings"] == campaign.config.checkpoint_settings()
        assert coordinator.stats.workers_joined == 1

    def test_reconnect_with_skewed_digest_rejected(self):
        _, coordinator, _ = make_coordinator()
        _, reply = join(coordinator, digest=12345)
        assert reply["kind"] == "reject"
        assert "digest" in reply["reason"]

    def test_fetch_before_hello_rejected(self):
        _, coordinator, _ = make_coordinator()
        reply = fetch(coordinator, _Conn(None))
        assert reply["kind"] == "reject"

    def test_lease_then_result_commits_once(self):
        campaign, coordinator, profiles = make_coordinator()
        conn, _ = join(coordinator)
        lease = fetch(coordinator, conn)
        assert lease["kind"] == "lease" and len(lease["tasks"]) == 1
        task = lease["tasks"][0]["task"]
        assert deliver(coordinator, conn, task) == {"kind": "ack",
                                                    "task": task}
        assert task in coordinator.outcomes
        assert coordinator.stats.remote_profiles == 1
        # the resend of a lost ack is acked again but never recommitted
        assert deliver(coordinator, conn, task)["kind"] == "ack"
        assert coordinator.stats.duplicates_suppressed == 1
        assert coordinator.stats.remote_profiles == 1

    def test_queue_drained_then_wait(self):
        _, coordinator, profiles = make_coordinator()
        conn, _ = join(coordinator)
        lease = fetch(coordinator, conn, max_tasks=len(profiles))
        assert len(lease["tasks"]) == len(profiles)
        assert fetch(coordinator, conn)["kind"] == "wait"

    def test_idle_worker_steals_a_copy_of_a_straggler(self):
        _, coordinator, profiles = make_coordinator()
        straggler, _ = join(coordinator, name="slow")
        fetch(coordinator, straggler, max_tasks=len(profiles))
        thief, _ = join(coordinator, name="fast")
        stolen = fetch(coordinator, thief)
        assert stolen["kind"] == "lease"
        task = stolen["tasks"][0]["task"]
        assert coordinator.stats.steals == 1
        # first finisher wins; the straggler's copy is suppressed
        deliver(coordinator, thief, task)
        deliver(coordinator, straggler, task)
        assert coordinator.stats.remote_profiles == 1
        assert coordinator.stats.duplicates_suppressed == 1

    def test_steal_bounded_by_max_copies(self):
        _, coordinator, profiles = make_coordinator(dist_max_copies=1)
        straggler, _ = join(coordinator, name="slow")
        fetch(coordinator, straggler, max_tasks=len(profiles))
        thief, _ = join(coordinator, name="fast")
        assert fetch(coordinator, thief)["kind"] == "wait"

    def test_lost_worker_leases_requeued(self):
        _, coordinator, _ = make_coordinator()
        conn, _ = join(coordinator)
        task = fetch(coordinator, conn)["tasks"][0]["task"]
        with coordinator.cond:
            coordinator._worker_lost_locked(conn.worker, "test kill")
        assert coordinator.stats.workers_lost == 1
        assert coordinator.stats.redeliveries == 1
        assert (task, 2) in coordinator.queue
        # the redelivered lease (queued behind the untouched profiles)
        # is granted to the next worker that drains the queue
        fresh, _ = join(coordinator, name="w2")
        lease = fetch(coordinator, fresh, max_tasks=len(coordinator.queue))
        granted = {t["task"]: t["delivery"] for t in lease["tasks"]}
        assert granted[task] == 2

    def test_graceful_bye_is_not_a_loss(self):
        _, coordinator, _ = make_coordinator()
        conn, _ = join(coordinator)
        with coordinator.cond:
            coordinator._worker_lost_locked(conn.worker, "bye",
                                            graceful=True)
        assert coordinator.stats.workers_lost == 0

    def test_poison_quarantined_after_redelivery_exhausted(self):
        campaign, coordinator, _ = make_coordinator(worker_redelivery=0)
        conn, _ = join(coordinator)
        task = fetch(coordinator, conn)["tasks"][0]["task"]
        with coordinator.cond:
            coordinator._worker_lost_locked(conn.worker, "crashed")
        assert coordinator.stats.quarantined == 1
        assert coordinator.outcomes[task].error_kind == WORKER_CRASH

    def test_heartbeat_expiry_declares_the_worker_dead(self):
        _, coordinator, _ = make_coordinator()
        conn, _ = join(coordinator)
        fetch(coordinator, conn)
        conn.worker.last_seen -= coordinator.heartbeat_timeout + 1
        with coordinator.cond:
            coordinator._police_locked(time.monotonic(), time.monotonic())
        assert coordinator.stats.heartbeat_expiries == 1
        assert coordinator.stats.redeliveries == 1

    def test_heartbeat_refreshes_liveness(self):
        _, coordinator, _ = make_coordinator()
        conn, _ = join(coordinator)
        conn.worker.last_seen -= coordinator.heartbeat_timeout + 1
        with coordinator.lock:
            assert coordinator._handle_message(
                conn, {"kind": "heartbeat"}) is None
        with coordinator.cond:
            coordinator._police_locked(time.monotonic(), time.monotonic())
        assert coordinator.stats.heartbeat_expiries == 0

    def test_lease_deadline_redelivers(self):
        _, coordinator, _ = make_coordinator(dist_lease_deadline_s=5.0)
        conn, _ = join(coordinator)
        task = fetch(coordinator, conn)["tasks"][0]["task"]
        coordinator.leases[task]["granted_at"] -= 10.0
        with coordinator.cond:
            coordinator._police_locked(time.monotonic(), time.monotonic())
        assert coordinator.stats.lease_expiries == 1
        assert coordinator.stats.redeliveries == 1

    def test_join_grace_expiry_degrades(self):
        _, coordinator, _ = make_coordinator(dist_join_grace_s=0.1)
        started = time.monotonic() - 1.0
        with coordinator.cond:
            coordinator._police_locked(time.monotonic(), started)
        assert coordinator.halted
        assert coordinator.stats.degraded_to_local

    def test_fleet_loss_degrades_after_grace(self):
        _, coordinator, _ = make_coordinator(dist_fleet_grace_s=0.1)
        conn, _ = join(coordinator)
        with coordinator.cond:
            coordinator._worker_lost_locked(conn.worker, "gone")
            now = time.monotonic()
            coordinator._police_locked(now, now)       # starts the clock
            assert not coordinator.halted
            coordinator._police_locked(now + 1.0, now)
        assert coordinator.halted
        assert coordinator.stats.degraded_to_local

    def test_fetch_after_halt_says_done(self):
        _, coordinator, _ = make_coordinator()
        conn, _ = join(coordinator)
        with coordinator.cond:
            coordinator._degrade_locked("test")
        assert fetch(coordinator, conn)["kind"] == "done"


# ---------------------------------------------------------------------------
# shared-secret HMAC handshake (protocol level)
# ---------------------------------------------------------------------------
def hello_message(name="w1", nonce="aabb"):
    return {"kind": "hello", "worker": name, "slots": 1, "digest": None,
            "nonce": nonce}


class TestAuthHandshake:
    def test_open_coordinator_ignores_nonce_and_welcomes(self):
        _, coordinator, _ = make_coordinator()
        conn = _Conn(None)
        with coordinator.lock:
            reply = coordinator._handle_message(conn, hello_message())
        assert reply["kind"] == "welcome"

    def test_hello_gets_challenge_with_coordinator_proof(self):
        from repro.core.distrib import _auth_mac
        _, coordinator, _ = make_coordinator(dist_secret="hunter2")
        conn = _Conn(None)
        with coordinator.lock:
            reply = coordinator._handle_message(conn, hello_message())
        assert reply["kind"] == "challenge"
        # mutual: the coordinator proves itself over the *worker's* nonce
        assert reply["mac"] == _auth_mac("hunter2", "coordinator", "aabb")
        assert reply["nonce"] != "aabb"
        assert coordinator.stats.workers_joined == 0  # not joined yet

    def test_correct_mac_joins(self):
        from repro.core.distrib import _auth_mac
        campaign, coordinator, _ = make_coordinator(dist_secret="hunter2")
        conn = _Conn(None)
        with coordinator.lock:
            challenge = coordinator._handle_message(conn, hello_message())
            welcome = coordinator._handle_message(conn, {
                "kind": "auth",
                "mac": _auth_mac("hunter2", "worker", challenge["nonce"])})
        assert welcome["kind"] == "welcome"
        assert welcome["digest"] == corpus_digest(campaign)
        assert coordinator.stats.workers_joined == 1
        assert coordinator.stats.auth_rejects == 0

    def test_wrong_mac_rejected_and_counted(self):
        _, coordinator, _ = make_coordinator(dist_secret="hunter2")
        conn = _Conn(None)
        with coordinator.lock:
            coordinator._handle_message(conn, hello_message())
            reply = coordinator._handle_message(
                conn, {"kind": "auth", "mac": "0" * 64})
        assert reply["kind"] == "reject"
        assert coordinator.stats.auth_rejects == 1
        assert coordinator.stats.workers_joined == 0
        # the stale challenge is spent: a retry cannot reuse it
        with coordinator.lock:
            again = coordinator._handle_message(
                conn, {"kind": "auth", "mac": "0" * 64})
        assert again["kind"] == "reject"

    def test_unsolicited_auth_rejected(self):
        _, coordinator, _ = make_coordinator()
        with coordinator.lock:
            reply = coordinator._handle_message(
                _Conn(None), {"kind": "auth", "mac": "whatever"})
        assert reply["kind"] == "reject"

    def test_fetch_without_completing_auth_rejected(self):
        _, coordinator, _ = make_coordinator(dist_secret="hunter2")
        conn = _Conn(None)
        with coordinator.lock:
            coordinator._handle_message(conn, hello_message())
        assert fetch(coordinator, conn)["kind"] == "reject"

    def test_secret_never_journaled(self):
        config = decoupled_config(dist_secret="hunter2")
        settings = config.checkpoint_settings()
        assert "hunter2" not in json.dumps(settings)


# ---------------------------------------------------------------------------
# end-to-end: coordinator + in-process workers over real TCP
# ---------------------------------------------------------------------------
def run_distributed(n_workers=2, worker_kwargs=None, config_kwargs=None,
                    factory=synth_factory):
    port = _free_port()
    address = "127.0.0.1:%d" % port
    config_kwargs = dict(config_kwargs or {})
    config_kwargs.setdefault("dist_join_grace_s", 20.0)
    config = decoupled_config(distributed=address, **config_kwargs)
    campaign = synthetic_campaign(config=config)
    box = {}

    def run_campaign():
        box["report"] = campaign.run()

    campaign_thread = threading.Thread(target=run_campaign, daemon=True)
    campaign_thread.start()
    # Start workers only once the coordinator is listening: the synth
    # campaign is so short that a worker still in connect-refused
    # backoff can otherwise miss it entirely.
    deadline = time.monotonic() + 30
    while not campaign.distribution.listen and time.monotonic() < deadline:
        time.sleep(0.002)
    assert campaign.distribution.listen
    exit_codes = {}
    threads = []
    for i in range(n_workers):
        kwargs = dict(worker_kwargs.get(i, {}) if worker_kwargs else {})
        kwargs.setdefault("name", "w%d" % i)

        def target(i=i, kwargs=kwargs):
            exit_codes[i] = run_worker(address, campaign_factory=factory,
                                       **kwargs)

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        threads.append(thread)
    campaign_thread.join(timeout=120)
    assert "report" in box, "campaign did not finish"
    for thread in threads:
        thread.join(timeout=60)
    return box["report"], campaign.distribution, exit_codes


@pytest.fixture(scope="module")
def serial_baseline():
    return full_dict(synthetic_campaign(config=decoupled_config()).run())


class TestDistributedEndToEnd:
    def test_two_workers_byte_identical_to_serial(self, serial_baseline):
        report, stats, exit_codes = run_distributed(n_workers=2)
        assert full_dict(report) == serial_baseline
        assert exit_codes == {0: EXIT_OK, 1: EXIT_OK}
        assert stats.enabled
        assert stats.workers_joined == 2
        assert stats.remote_profiles + stats.local_profiles \
            + stats.quarantined >= 1
        assert not stats.degraded_to_local
        assert sum(w.profiles for w in stats.fleet) == stats.remote_profiles

    def test_fleet_never_joins_degrades_to_local(self, serial_baseline):
        report, stats, _ = run_distributed(
            n_workers=0, config_kwargs={"dist_join_grace_s": 0.3})
        assert full_dict(report) == serial_baseline
        assert stats.degraded_to_local
        assert stats.remote_profiles == 0
        assert stats.local_profiles > 0

    def test_partitioned_worker_redelivers_to_survivor(self,
                                                       serial_baseline):
        # worker 0's link lets hello + one fetch through, then severs:
        # its first result is lost mid-lease and it never reconnects, so
        # the lease must be redelivered to worker 1.
        report, stats, exit_codes = run_distributed(
            n_workers=2,
            worker_kwargs={0: {"net_fault_plan":
                               net.NetFaultPlan(partition_after=2),
                               "max_reconnects": 0}})
        assert full_dict(report) == serial_baseline
        assert exit_codes[0] == EXIT_RECONNECTS_EXHAUSTED
        assert exit_codes[1] == EXIT_OK
        assert stats.workers_lost >= 1
        assert not stats.degraded_to_local

    def test_flapping_partition_single_worker_reconnects(self,
                                                         serial_baseline):
        # every connection dies after 5 frames; the worker reconnects
        # with backoff, resends unacked results, and still finishes.
        report, stats, exit_codes = run_distributed(
            n_workers=1,
            worker_kwargs={0: {"net_fault_plan":
                               net.NetFaultPlan(partition_after=5),
                               "max_reconnects": 10}},
            config_kwargs={"dist_fleet_grace_s": 30.0})
        assert full_dict(report) == serial_baseline
        assert stats.workers_joined >= 2  # at least one reconnect
        assert not stats.degraded_to_local

    def test_whole_fleet_lost_degrades_and_finishes(self, serial_baseline):
        report, stats, exit_codes = run_distributed(
            n_workers=1,
            worker_kwargs={0: {"net_fault_plan":
                               net.NetFaultPlan(partition_after=8),
                               "max_reconnects": 0}},
            config_kwargs={"dist_fleet_grace_s": 0.3})
        assert full_dict(report) == serial_baseline
        assert exit_codes[0] == EXIT_RECONNECTS_EXHAUSTED
        assert stats.degraded_to_local
        assert stats.local_profiles > 0

    def test_authenticated_fleet_byte_identical_to_serial(
            self, serial_baseline):
        secret = CampaignConfig(dist_secret="fleet-secret")
        report, stats, exit_codes = run_distributed(
            n_workers=2,
            worker_kwargs={0: {"worker_config": secret},
                           1: {"worker_config": secret}},
            config_kwargs={"dist_secret": "fleet-secret"})
        assert full_dict(report) == serial_baseline
        assert exit_codes == {0: EXIT_OK, 1: EXIT_OK}
        assert stats.workers_joined == 2
        assert stats.auth_rejects == 0

    def test_secretless_worker_refused_by_secret_coordinator(
            self, serial_baseline):
        report, stats, exit_codes = run_distributed(
            n_workers=1,
            config_kwargs={"dist_secret": "fleet-secret",
                           "dist_join_grace_s": 1.0})
        # the worker walks away at the challenge (it has nothing to
        # prove with), so the coordinator never even counts a reject
        assert exit_codes[0] == EXIT_REJECTED
        assert stats.remote_profiles == 0
        assert full_dict(report) == serial_baseline

    def test_wrong_secret_worker_refused(self, serial_baseline):
        # mutual verification: the worker checks the coordinator's proof
        # first, sees a mac built from a different secret, and refuses
        # before ever answering the challenge.
        report, stats, exit_codes = run_distributed(
            n_workers=1,
            worker_kwargs={0: {"worker_config":
                               CampaignConfig(dist_secret="wrong")}},
            config_kwargs={"dist_secret": "fleet-secret",
                           "dist_join_grace_s": 1.0})
        assert exit_codes[0] == EXIT_REJECTED
        assert stats.remote_profiles == 0
        assert full_dict(report) == serial_baseline

    def test_secret_worker_refuses_open_coordinator(self, serial_baseline):
        # mutual auth: the worker will not ship results to a coordinator
        # that cannot prove secret knowledge.
        report, stats, exit_codes = run_distributed(
            n_workers=1,
            worker_kwargs={0: {"worker_config":
                               CampaignConfig(dist_secret="mine")}},
            config_kwargs={"dist_join_grace_s": 1.0})
        assert exit_codes[0] == EXIT_REJECTED
        assert stats.remote_profiles == 0
        assert full_dict(report) == serial_baseline

    def test_worker_with_skewed_corpus_refused(self, serial_baseline):
        def skewed(app, config):
            return Campaign("synth", SYNTH_REGISTRY,
                            tests=[two_service_test()], config=config)

        report, stats, exit_codes = run_distributed(
            n_workers=1, factory=skewed,
            config_kwargs={"dist_join_grace_s": 1.0})
        assert exit_codes[0] == EXIT_REJECTED
        # nothing the skewed worker did can have touched the findings
        assert full_dict(report) == serial_baseline
        assert stats.remote_profiles == 0

    def test_distributed_checkpoint_resumes_serially(self, tmp_path,
                                                     serial_baseline):
        journal = str(tmp_path / "dist.ckpt.jsonl")
        report, stats, _ = run_distributed(
            n_workers=2, config_kwargs={"checkpoint_path": journal})
        assert full_dict(report) == serial_baseline
        # measured cost weights were journaled beside the checkpoint
        assert os.path.exists(journal + ".weights.json")
        resumed = synthetic_campaign(
            config=decoupled_config(checkpoint_path=journal)).run()
        assert full_dict(resumed) == serial_baseline

    def test_fleet_section_renders_in_markdown(self):
        from repro.core.reportmd import app_report_markdown
        report, _, _ = run_distributed(n_workers=2)
        text = app_report_markdown(report)
        assert "## Fleet" in text
        assert "workers joined" in text

    def test_dist_metrics_fold_into_snapshot(self):
        report, stats, _ = run_distributed(
            n_workers=2, config_kwargs={"observe": True})
        metrics = report.observation.metrics
        assert metrics.total("zc_dist_workers_joined_total") == \
            stats.workers_joined
        assert metrics.total("zc_dist_remote_profiles_total") == \
            stats.remote_profiles
        rendered = metrics.render_prometheus(include_volatile=True)
        assert "zc_dist_workers_joined_total" in rendered


# ---------------------------------------------------------------------------
# chaos: real app, subprocess workers, SIGKILL mid-lease
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestChaosSubprocessFleet:
    def test_sigkill_mid_campaign_stays_byte_identical(self):
        app = "mapreduce"
        from repro.apps import catalog
        spec = catalog.spec_for(app)

        def fresh(**kw):
            return Campaign(app, spec.registry,
                            dependency_rules=spec.dependency_rules,
                            config=decoupled_config(**kw))

        serial = full_dict(fresh().run())

        port = _free_port()
        address = "127.0.0.1:%d" % port
        campaign = fresh(distributed=address, dist_join_grace_s=60.0,
                         dist_fleet_grace_s=30.0)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", address, "--name", "w%d" % i, "--workers", "1"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
            for i in range(2)]

        def kill_when_working():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if campaign.distribution.remote_profiles >= 1:
                    workers[0].send_signal(signal.SIGKILL)
                    return
                time.sleep(0.005)

        killer = threading.Thread(target=kill_when_working, daemon=True)
        killer.start()
        try:
            report = campaign.run()
        finally:
            for proc in workers:
                proc.kill()
                proc.wait(timeout=30)
        killer.join(timeout=5)
        assert full_dict(report) == serial
        stats = campaign.distribution
        assert stats.workers_joined >= 2
        assert stats.workers_lost >= 1
        assert not stats.degraded_to_local
