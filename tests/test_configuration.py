"""Unit tests for Configuration, ParamDef/ParamRegistry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.errors import ConfigurationError
from repro.common.params import (BOOL, DURATION_MS, ENUM, FLOAT, INT, SIZE,
                                 STR, ParamDef, ParamRegistry,
                                 default_candidates)


@pytest.fixture()
def registry():
    reg = ParamRegistry("testapp")
    reg.define("app.flag", BOOL, False)
    reg.define("app.count", INT, 10)
    reg.define("app.rate", FLOAT, 0.5)
    reg.define("app.mode", ENUM, "fast", values=("fast", "safe"))
    reg.define("app.name", STR, "default-name")
    reg.define("app.buffer", SIZE, 4096)
    reg.define("app.delay", DURATION_MS, 1000)
    return reg


@pytest.fixture()
def conf(registry):
    class TestConfiguration(Configuration):
        pass

    TestConfiguration.registry = registry
    return TestConfiguration()


class TestGetSet:
    def test_registry_default_used(self, conf):
        assert conf.get("app.count") == 10

    def test_explicit_set_wins_over_default(self, conf):
        conf.set("app.count", 99)
        assert conf.get("app.count") == 99
        assert conf.is_explicitly_set("app.count")

    def test_argument_default_for_unknown_param(self, conf):
        assert conf.get("no.such.param", default=7) == 7

    def test_unknown_param_without_default_raises(self, conf):
        with pytest.raises(ConfigurationError):
            conf.get("no.such.param")

    def test_unset_restores_default(self, conf):
        conf.set("app.count", 1)
        conf.unset("app.count")
        assert conf.get("app.count") == 10

    def test_explicit_items_sorted(self, conf):
        conf.set("app.rate", 0.9)
        conf.set("app.count", 1)
        assert [k for k, _ in conf.explicit_items()] == ["app.count", "app.rate"]


class TestTypedAccessors:
    def test_get_bool_accepts_strings(self, conf):
        for text, expected in (("true", True), ("FALSE", False), ("1", True),
                               ("no", False), ("yes", True), ("0", False)):
            conf.set("app.flag", text)
            assert conf.get_bool("app.flag") is expected

    def test_get_bool_rejects_garbage(self, conf):
        conf.set("app.flag", "maybe")
        with pytest.raises(ConfigurationError):
            conf.get_bool("app.flag")

    def test_get_int_parses_strings(self, conf):
        conf.set("app.count", "42")
        assert conf.get_int("app.count") == 42

    def test_get_int_rejects_bool(self, conf):
        conf.set("app.count", True)
        with pytest.raises(ConfigurationError):
            conf.get_int("app.count")

    def test_get_int_rejects_garbage(self, conf):
        conf.set("app.count", "many")
        with pytest.raises(ConfigurationError):
            conf.get_int("app.count")

    def test_get_float(self, conf):
        conf.set("app.rate", "0.25")
        assert conf.get_float("app.rate") == 0.25

    def test_get_str_stringifies(self, conf):
        conf.set("app.name", 123)
        assert conf.get_str("app.name") == "123"

    def test_get_enum_validates_against_registry(self, conf):
        conf.set("app.mode", "safe")
        assert conf.get_enum("app.mode") == "safe"
        conf.set("app.mode", "warp")
        with pytest.raises(ConfigurationError):
            conf.get_enum("app.mode")


class TestCloning:
    def test_clone_copies_explicit_values(self, conf):
        conf.set("app.count", 5)
        clone = conf.clone()
        assert clone.get("app.count") == 5

    def test_clone_is_independent(self, conf):
        clone = conf.clone()
        clone.set("app.count", 1)
        assert conf.get("app.count") == 10

    def test_clone_inherits_registry(self, conf):
        assert conf.clone().registry is conf.registry

    def test_ref_to_clone_without_agent_returns_original(self, conf):
        # Outside a ZebraConf session the hook is inert: stock behaviour
        # keeps the shared reference.
        assert ref_to_clone(conf) is conf


class TestParamDefs:
    def test_bool_candidates(self):
        param = ParamDef("p", BOOL, False)
        assert param.candidate_values() == (True, False)

    def test_enum_candidates_are_values(self):
        param = ParamDef("p", ENUM, "a", values=("a", "b", "c"))
        assert param.candidate_values() == ("a", "b", "c")

    def test_enum_without_values_rejected(self):
        with pytest.raises(ValueError):
            ParamDef("p", ENUM, "a")

    def test_numeric_candidates_include_extremes(self):
        param = ParamDef("p", INT, 100)
        candidates = param.candidate_values()
        assert 100 in candidates
        assert max(candidates) >= 100 * 100
        assert min(candidates) <= 1

    def test_zero_default_still_gets_varied(self):
        param = ParamDef("p", DURATION_MS, 0)
        assert len(param.candidate_values()) >= 2

    def test_explicit_candidates_win(self):
        param = ParamDef("p", INT, 1, candidates=(1, 2, 3))
        assert param.candidate_values() == (1, 2, 3)

    def test_plain_string_not_varied(self):
        param = ParamDef("p", STR, "only")
        assert param.candidate_values() == ("only",)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            default_candidates(ParamDef("p", "mystery", 0))

    @given(st.integers(min_value=1, max_value=10 ** 9))
    @settings(max_examples=50, deadline=None)
    def test_numeric_candidates_unique_and_contain_default(self, default):
        candidates = ParamDef("p", INT, default).candidate_values()
        assert len(set(candidates)) == len(candidates)
        assert default in candidates


class TestParamRegistry:
    def test_duplicate_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.define("app.count", INT, 1)

    def test_contains_and_len(self, registry):
        assert "app.flag" in registry
        assert len(registry) == 7

    def test_merge_prefers_first(self, registry):
        other = ParamRegistry("other")
        other.define("app.count", INT, 999)
        other.define("other.param", INT, 1)
        merged = registry.merged_with(other)
        assert merged.default_of("app.count") == 10
        assert "other.param" in merged
        assert len(merged) == 8

    def test_tagged_lookup(self):
        reg = ParamRegistry("t")
        reg.define("a", BOOL, False, tags=("wire-format",))
        reg.define("b", BOOL, False)
        assert [p.name for p in reg.tagged("wire-format")] == ["a"]

    def test_maybe_get(self, registry):
        assert registry.maybe_get("nope") is None
        assert registry.maybe_get("app.flag").name == "app.flag"
