"""Focused unit tests for mini-HDFS internals: Namespace, BlockManager,
data-transfer envelopes, and the HBase thrift codec."""

from __future__ import annotations

import pytest

from repro.apps.hbase.thrift import thrift_decode, thrift_encode
from repro.apps.hdfs.blockmanager import BlockManager
from repro.apps.hdfs.datatransfer import open_envelope, seal_envelope
from repro.apps.hdfs.namespace import Namespace, split_path
from repro.common.errors import (DecodeError, HandshakeError,
                                 LimitExceededError, PlacementPolicyError,
                                 SnapshotError)


def make_namespace(max_component=255, max_items=1 << 20):
    return Namespace(max_component_length_fn=lambda: max_component,
                     max_directory_items_fn=lambda: max_items)


class TestSplitPath:
    def test_components(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_root(self):
        assert split_path("/") == []

    def test_trailing_slash_ignored(self):
        assert split_path("/a/b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            split_path("a/b")


class TestNamespace:
    def test_mkdirs_creates_intermediates(self):
        namespace = make_namespace()
        namespace.mkdirs("/a/b/c")
        assert namespace.exists("/a/b/c")
        assert namespace.exists("/a")

    def test_mkdirs_idempotent(self):
        namespace = make_namespace()
        namespace.mkdirs("/a/b")
        namespace.mkdirs("/a/b")
        assert len(namespace.lookup_dir("/a").children) == 1

    def test_create_file_and_lookup(self):
        namespace = make_namespace()
        inode = namespace.create_file("/dir/file.txt", replication=2)
        assert namespace.lookup_file("/dir/file.txt") is inode
        with pytest.raises(FileNotFoundError):
            namespace.lookup_file("/dir/missing")

    def test_file_over_existing_path_rejected(self):
        namespace = make_namespace()
        namespace.create_file("/x")
        with pytest.raises(FileExistsError):
            namespace.create_file("/x")

    def test_component_limit_enforced(self):
        namespace = make_namespace(max_component=8)
        with pytest.raises(LimitExceededError):
            namespace.mkdirs("/" + "c" * 9)
        namespace.mkdirs("/" + "c" * 8)  # boundary passes

    def test_fanout_limit_enforced(self):
        namespace = make_namespace(max_items=2)
        namespace.mkdirs("/d/a")
        namespace.mkdirs("/d/b")  # second child still fits
        with pytest.raises(LimitExceededError):
            namespace.mkdirs("/d/c")  # /d already holds 2 items

    def test_delete_returns_all_blocks(self):
        namespace = make_namespace()
        first = namespace.create_file("/t/a")
        first.block_ids.extend([1, 2])
        second = namespace.create_file("/t/sub/b")
        second.block_ids.append(3)
        assert sorted(namespace.delete("/t")) == [1, 2, 3]
        assert not namespace.exists("/t")

    def test_delete_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            make_namespace().delete("/nope")

    def test_snapshot_requires_snapshottable(self):
        namespace = make_namespace()
        namespace.mkdirs("/snap")
        with pytest.raises(SnapshotError):
            namespace.create_snapshot("/snap", "s0")

    def test_snapshot_diff_reports_additions(self):
        namespace = make_namespace()
        namespace.mkdirs("/snap")
        namespace.allow_snapshot("/snap")
        namespace.create_snapshot("/snap", "s0")
        namespace.mkdirs("/snap/new")
        diff = namespace.snapshot_diff("/snap", "/snap", "s0",
                                       allow_descendant_fn=lambda: True)
        assert diff == ["new"]

    def test_snapshot_diff_unknown_snapshot(self):
        namespace = make_namespace()
        namespace.mkdirs("/snap")
        namespace.allow_snapshot("/snap")
        with pytest.raises(SnapshotError):
            namespace.snapshot_diff("/snap", "/snap", "nope",
                                    allow_descendant_fn=lambda: True)

    def test_snapshot_diff_outside_root_rejected(self):
        namespace = make_namespace()
        namespace.mkdirs("/snap")
        namespace.mkdirs("/other")
        namespace.allow_snapshot("/snap")
        namespace.create_snapshot("/snap", "s0")
        with pytest.raises(SnapshotError):
            namespace.snapshot_diff("/snap", "/other", "s0",
                                    allow_descendant_fn=lambda: True)

    def test_rename_moves_subtree(self):
        namespace = make_namespace()
        inode = namespace.create_file("/a/b/file")
        inode.block_ids.append(42)
        namespace.rename("/a/b", "/moved/b")
        assert namespace.exists("/moved/b/file")
        assert not namespace.exists("/a/b")
        assert namespace.lookup_file("/moved/b/file").block_ids == [42]

    def test_rename_missing_source(self):
        with pytest.raises(FileNotFoundError):
            make_namespace().rename("/nope", "/dst")

    def test_rename_onto_existing_rejected(self):
        namespace = make_namespace()
        namespace.mkdirs("/a")
        namespace.mkdirs("/b")
        with pytest.raises(FileExistsError):
            namespace.rename("/a", "/b")

    def test_rename_enforces_component_limit(self):
        namespace = make_namespace(max_component=8)
        namespace.mkdirs("/ok")
        with pytest.raises(LimitExceededError):
            namespace.rename("/ok", "/" + "x" * 99)

    def test_image_round_trip_both_codecs(self):
        namespace = make_namespace()
        namespace.mkdirs("/img/a")
        plain = namespace.save_image(compress=False)
        packed = namespace.save_image(compress=True)
        assert Namespace.image_contents(plain) == \
            Namespace.image_contents(packed)
        assert len(plain) != len(packed)

    def test_image_contents_rejects_garbage(self):
        with pytest.raises(ValueError):
            Namespace.image_contents(b"not-an-image")


class TestBlockManager:
    def make(self, factor=3, cap=100):
        return BlockManager(upgrade_domain_factor_fn=lambda: factor,
                            max_corrupt_returned_fn=lambda: cap)

    def test_allocation_and_replicas(self):
        manager = self.make()
        info = manager.allocate("/f", 1024)
        manager.add_replica(info.block_id, "dn0")
        assert manager.live_block_count() == 1

    def test_deletion_visible_only_after_report(self):
        manager = self.make()
        info = manager.allocate("/f", 1024)
        manager.add_replica(info.block_id, "dn0")
        manager.begin_deletion(info.block_id, "dn0")
        assert manager.live_block_count() == 1  # the IBR has not arrived
        manager.apply_incremental_report("dn0", [info.block_id])
        assert manager.live_block_count() == 0
        assert info.block_id not in manager.blocks

    def test_report_for_unknown_block_ignored(self):
        manager = self.make()
        manager.apply_incremental_report("dn0", [999])

    def test_corrupt_listing_truncation(self):
        manager = self.make(cap=2)
        ids = []
        for _ in range(4):
            info = manager.allocate("/f", 1)
            manager.add_replica(info.block_id, "dn0")
            ids.append(info.block_id)
        manager.report_bad_blocks(ids)
        assert manager.list_corrupt_file_blocks() == sorted(ids)[:2]

    def test_validate_move_rejects_domain_collapse(self):
        manager = self.make(factor=3)
        info = manager.allocate("/f", 1)
        for dn, domain in (("dn0", "ud0"), ("dn1", "ud1"), ("dn2", "ud2")):
            manager.add_replica(info.block_id, dn)
            manager.set_upgrade_domain(dn, domain)
        manager.set_upgrade_domain("dn3", "ud0")
        with pytest.raises(PlacementPolicyError):
            manager.validate_move(info.block_id, "dn2", "dn3")

    def test_validate_move_requires_source_replica(self):
        manager = self.make()
        info = manager.allocate("/f", 1)
        manager.add_replica(info.block_id, "dn0")
        with pytest.raises(PlacementPolicyError):
            manager.validate_move(info.block_id, "dn5", "dn1")

    def test_apply_move_updates_locations(self):
        manager = self.make(factor=1)
        info = manager.allocate("/f", 1)
        manager.add_replica(info.block_id, "dn0")
        manager.apply_move(info.block_id, "dn0", "dn1")
        assert info.locations == {"dn1"}


class TestEnvelopes:
    KEY = {"key_id": 7, "material": b"material".hex()}

    def test_plaintext_round_trip(self):
        envelope = seal_envelope({"data": "00ff"}, None)
        assert open_envelope(envelope, expect_encrypted=False,
                             key_lookup=None)["data"] == "00ff"

    def test_encrypted_round_trip(self):
        envelope = seal_envelope({"data": "00ff"}, self.KEY)
        out = open_envelope(envelope, expect_encrypted=True,
                            key_lookup=lambda kid: b"material")
        assert out["data"] == "00ff"

    def test_expect_encrypted_plaintext_rejected(self):
        envelope = seal_envelope({"data": "00"}, None)
        with pytest.raises(HandshakeError):
            open_envelope(envelope, expect_encrypted=True,
                          key_lookup=lambda kid: b"k")

    def test_unexpected_encryption_garbles(self):
        envelope = seal_envelope({"data": "00"}, self.KEY)
        with pytest.raises(DecodeError):
            open_envelope(envelope, expect_encrypted=False, key_lookup=None)

    def test_missing_key_surfaces_lookup_error(self):
        envelope = seal_envelope({"data": "00"}, self.KEY)

        def lookup(kid):
            raise HandshakeError("block key %d is missing" % kid)

        with pytest.raises(HandshakeError, match="missing"):
            open_envelope(envelope, expect_encrypted=True, key_lookup=lookup)


class TestThriftCodec:
    @pytest.mark.parametrize("compact", (True, False))
    @pytest.mark.parametrize("framed", (True, False))
    def test_round_trip_matrix(self, compact, framed):
        wire = thrift_encode({"op": "get"}, compact=compact, framed=framed)
        assert thrift_decode(wire, compact=compact,
                             framed=framed) == {"op": "get"}

    def test_protocol_mismatch(self):
        wire = thrift_encode({"op": "get"}, compact=True, framed=False)
        with pytest.raises(DecodeError):
            thrift_decode(wire, compact=False, framed=False)

    def test_framed_to_unframed(self):
        wire = thrift_encode({"op": "get"}, compact=False, framed=True)
        with pytest.raises(DecodeError):
            thrift_decode(wire, compact=False, framed=False)

    def test_unframed_to_framed(self):
        wire = thrift_encode({"op": "get"}, compact=False, framed=False)
        with pytest.raises(DecodeError):
            thrift_decode(wire, compact=False, framed=True)

    def test_truncated_frame_detected(self):
        wire = thrift_encode({"op": "get"}, compact=False, framed=True)
        with pytest.raises(DecodeError):
            thrift_decode(wire[:-2], compact=False, framed=True)
