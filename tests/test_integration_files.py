"""Tests for the per-node configuration-file adapter (§3.2)."""

from __future__ import annotations

import pytest

from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.core.confagent import NO_OVERRIDE, UNIT_TEST
from repro.core.integration import FileAssignment, integration_session


class TestFileAssignment:
    def test_exact_index_wins(self):
        assignment = FileAssignment({
            "DataNode": {"p": 1},
            "DataNode[2]": {"p": 2},
        })
        assert assignment.value_for("DataNode", 2, "p") == 2
        assert assignment.value_for("DataNode", 0, "p") == 1

    def test_wildcard_fallback(self):
        assignment = FileAssignment({"*": {"p": 7}})
        assert assignment.value_for("NameNode", 0, "p") == 7
        assert assignment.value_for(UNIT_TEST, 0, "p") == 7

    def test_unlisted_param_not_overridden(self):
        assignment = FileAssignment({"DataNode": {"p": 1}})
        assert assignment.value_for("DataNode", 0, "q") is NO_OVERRIDE
        assert assignment.value_for("NameNode", 0, "p") is NO_OVERRIDE

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError):
            FileAssignment({"DataNode[x]": {}})


class TestIntegrationStyleCluster:
    def test_per_node_files_reach_the_right_nodes(self):
        files = {
            "NameNode": {"dfs.namenode.fs-limits.max-directory-items": 5},
            "DataNode[0]": {"dfs.datanode.du.reserved": 1024},
            "DataNode[1]": {"dfs.datanode.du.reserved": 2048},
        }
        with integration_session(files):
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            nn = cluster.namenode
            assert nn.conf.get_int(
                "dfs.namenode.fs-limits.max-directory-items") == 5
            assert cluster.datanodes[0]._reserved() == 1024
            assert cluster.datanodes[1]._reserved() == 2048
            # the client/test side sees defaults
            assert conf.get_int("dfs.datanode.du.reserved") == 0
            cluster.shutdown()

    def test_integration_files_reproduce_a_table3_failure(self):
        """The 'trivial in a real distributed setting' path: hand-written
        per-node files reproduce the heartbeat failure directly."""
        files = {
            "DataNode": {"dfs.heartbeat.interval": 3000},
            "NameNode": {"dfs.heartbeat.interval": 3},
        }
        with integration_session(files):
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            cluster.run_for(1000.0)
            stats = DFSClient(conf, cluster).get_stats()
            assert stats["dead"] == 2
            cluster.shutdown()

    def test_homogeneous_files_are_safe(self):
        files = {"*": {"dfs.heartbeat.interval": 3000}}
        with integration_session(files):
            conf = HdfsConfiguration()
            cluster = MiniDFSCluster(conf, num_datanodes=2)
            cluster.start()
            cluster.run_for(1000.0)
            assert DFSClient(conf, cluster).get_stats()["dead"] == 0
            cluster.shutdown()
