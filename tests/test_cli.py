"""Tests for the command-line interface."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main


class TestListing:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for app in ("flink", "hdfs", "yarn"):
            assert app in out

    def test_list_params(self, capsys):
        assert main(["list-params", "hdfs"]) == 0
        out = capsys.readouterr().out
        assert "dfs.heartbeat.interval" in out
        assert "UNSAFE (Table 3)" in out

    def test_list_params_unsafe_only(self, capsys):
        assert main(["list-params", "flink", "--unsafe-only"]) == 0
        out = capsys.readouterr().out
        assert "akka.ssl.enabled" in out
        assert "rest.port" not in out

    def test_corpus(self, capsys):
        assert main(["corpus", "mapreduce"]) == 0
        out = capsys.readouterr().out
        assert "TestMapReduceJob.testWordCount" in out
        assert "flaky" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["list-params", "cassandra"])

    def test_why_table3_param(self, capsys):
        assert main(["why", "dfs.heartbeat.interval"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous-UNSAFE" in out
        assert "falsely identifies" in out

    def test_why_safe_param(self, capsys):
        assert main(["why", "io.file.buffer.size"]) == 0
        out = capsys.readouterr().out
        assert "not listed" in out
        assert "Hadoop Common" in out

    def test_why_unknown_param(self, capsys):
        assert main(["why", "does.not.exist"]) == 1

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def test_flink_campaign_with_json(self, capsys, tmp_path):
        out_path = tmp_path / "flink.json"
        assert main(["campaign", "flink", "--workers", "2",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "TRUE PROBLEM" in out
        assert "akka.ssl.enabled" in out

        data = json.loads(out_path.read_text())
        assert data["app"] == "flink"
        assert set(data["true_problems"]) == {
            "akka.ssl.enabled", "taskmanager.data.ssl.enabled",
            "taskmanager.numberOfTaskSlots"}
        assert data["executions"] > 0
        assert data["hypothesis_testing"]["confirmed"] >= 3

    def test_campaign_flags_accepted(self, capsys):
        assert main(["campaign", "flink", "--pool-size", "4",
                     "--blacklist-threshold", "2",
                     "--disable-ipc-sharing"]) == 0
        assert "reported" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_campaign_exports_validate_and_reconcile(self, capsys, tmp_path):
        spans = str(tmp_path / "spans.jsonl")
        chrome = str(tmp_path / "chrome.json")
        metrics = str(tmp_path / "metrics.prom")
        report = str(tmp_path / "report.json")
        assert main(["campaign", "flink", "--exec-cache",
                     "--trace-spans", spans, "--trace-chrome", chrome,
                     "--metrics-out", metrics, "--json", report]) == 0
        out = capsys.readouterr().out
        assert "spans to" in out and "metric samples to" in out

        assert main(["validate-obs", "--spans", spans, "--chrome", chrome,
                     "--metrics", metrics, "--report", report]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") >= 3
        assert "reconciliation: OK" in out

    def test_validate_obs_flags_corrupt_artifact(self, capsys, tmp_path):
        spans = tmp_path / "spans.jsonl"
        spans.write_text('{"span_id": "not an int"}\n')
        assert main(["validate-obs", "--spans", str(spans)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_validate_obs_without_artifacts_is_usage_error(self, capsys):
        assert main(["validate-obs"]) == 2
        assert "nothing to validate" in capsys.readouterr().err

    def test_validate_obs_reports_reconciliation_mismatch(self, capsys,
                                                          tmp_path):
        metrics = tmp_path / "metrics.prom"
        metrics.write_text(
            "# HELP zc_executions_total x\n"
            "# TYPE zc_executions_total counter\n"
            "zc_executions_total 5\n")
        report = tmp_path / "report.json"
        report.write_text(json.dumps({"executions": 99}))
        assert main(["validate-obs", "--metrics", str(metrics),
                     "--report", str(report)]) == 1
        err = capsys.readouterr().err
        assert "MISMATCH" in err and "metrics say 5, report says 99" in err

    def test_progress_renders_a_live_line_on_stderr(self, capsys):
        assert main(["campaign", "flink", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[flink] profiles" in err
        assert err.endswith("\n")


class TestMachineReadableStoreAndServe:
    """--json on `repro store` / `repro serve-token` (docs/SERVICE.md)."""

    GOLDEN_STATS_KEYS = {
        "segments", "bytes", "entries", "deterministic", "seeded",
        "reports", "profiles", "corrupt_records", "truncated_tails",
        "salvaged_records", "substrates"}

    def _seeded_store(self, tmp_path):
        store = str(tmp_path / "results")
        assert main(["campaign", "flink", "--store", store]) == 0
        return store

    def test_store_stats_json_shape(self, capsys, tmp_path):
        store = self._seeded_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "stats", store, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert set(record) == self.GOLDEN_STATS_KEYS
        assert record["entries"] > 0 and record["reports"] == 1
        assert record["substrates"][0]["app"] == "flink"

    def test_store_verify_json_has_ok_flag(self, capsys, tmp_path):
        store = self._seeded_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "verify", store, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["ok"] is True
        assert set(record) == self.GOLDEN_STATS_KEYS | {"ok"}

    def test_store_gc_json_shape(self, capsys, tmp_path):
        store = self._seeded_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "gc", store, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert {"compacted_segments", "kept_segments", "entries",
                "reports", "dropped_damage"} <= set(record)

    def test_serve_token_matches_golden(self, capsys):
        golden = os.path.join(os.path.dirname(__file__), "golden",
                              "serve_token.json")
        with open(golden) as handle:
            expected = json.load(handle)["s3cret"]
        assert main(["serve-token", "--secret", "s3cret"]) == 0
        assert capsys.readouterr().out.strip() == expected
        assert main(["serve-token", "--secret", "s3cret", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == {"token": expected}

    def test_serve_token_without_secret_is_usage_error(self, capsys,
                                                       monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_SECRET", raising=False)
        monkeypatch.delenv("REPRO_DIST_SECRET", raising=False)
        assert main(["serve-token"]) == 2
        assert "no secret" in capsys.readouterr().err
