"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestListing:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for app in ("flink", "hdfs", "yarn"):
            assert app in out

    def test_list_params(self, capsys):
        assert main(["list-params", "hdfs"]) == 0
        out = capsys.readouterr().out
        assert "dfs.heartbeat.interval" in out
        assert "UNSAFE (Table 3)" in out

    def test_list_params_unsafe_only(self, capsys):
        assert main(["list-params", "flink", "--unsafe-only"]) == 0
        out = capsys.readouterr().out
        assert "akka.ssl.enabled" in out
        assert "rest.port" not in out

    def test_corpus(self, capsys):
        assert main(["corpus", "mapreduce"]) == 0
        out = capsys.readouterr().out
        assert "TestMapReduceJob.testWordCount" in out
        assert "flaky" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["list-params", "cassandra"])

    def test_why_table3_param(self, capsys):
        assert main(["why", "dfs.heartbeat.interval"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous-UNSAFE" in out
        assert "falsely identifies" in out

    def test_why_safe_param(self, capsys):
        assert main(["why", "io.file.buffer.size"]) == 0
        out = capsys.readouterr().out
        assert "not listed" in out
        assert "Hadoop Common" in out

    def test_why_unknown_param(self, capsys):
        assert main(["why", "does.not.exist"]) == 1

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def test_flink_campaign_with_json(self, capsys, tmp_path):
        out_path = tmp_path / "flink.json"
        assert main(["campaign", "flink", "--workers", "2",
                     "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "TRUE PROBLEM" in out
        assert "akka.ssl.enabled" in out

        data = json.loads(out_path.read_text())
        assert data["app"] == "flink"
        assert set(data["true_problems"]) == {
            "akka.ssl.enabled", "taskmanager.data.ssl.enabled",
            "taskmanager.numberOfTaskSlots"}
        assert data["executions"] > 0
        assert data["hypothesis_testing"]["confirmed"] >= 3

    def test_campaign_flags_accepted(self, capsys):
        assert main(["campaign", "flink", "--pool-size", "4",
                     "--blacklist-threshold", "2",
                     "--disable-ipc-sharing"]) == 0
        assert "reported" in capsys.readouterr().out
