"""Focused unit tests for mini-YARN and mini-Flink internals."""

from __future__ import annotations

import pytest

from repro.apps.flink import FlinkConfiguration, MiniFlinkCluster
from repro.apps.yarn import MiniYARNCluster, YarnClient, YarnConfiguration
from repro.common.errors import AllocationError, SlotAllocationError
from repro.common.wire import encode_payload


@pytest.fixture()
def yarn_cluster():
    conf = YarnConfiguration()
    cluster = MiniYARNCluster(conf, num_nodemanagers=2)
    cluster.start()
    yield conf, cluster
    cluster.shutdown()


class TestYarnPlacement:
    def test_first_fit_prefers_lowest_id(self, yarn_cluster):
        conf, cluster = yarn_cluster
        client = YarnClient(conf, cluster)
        client.submit_application("app")
        granted = client.request_container("app", memory_mb=512, vcores=1)
        assert granted["node"] == "nm0"

    def test_spillover_to_second_node(self, yarn_cluster):
        conf, cluster = yarn_cluster
        client = YarnClient(conf, cluster)
        client.submit_application("app")
        nm_capacity = conf.get_int("yarn.nodemanager.resource.memory-mb")
        first = client.request_container("app", memory_mb=nm_capacity,
                                         vcores=1)
        second = client.request_container("app", memory_mb=nm_capacity,
                                          vcores=1)
        assert {first["node"], second["node"]} == {"nm0", "nm1"}

    def test_cluster_exhaustion_rejected(self, yarn_cluster):
        conf, cluster = yarn_cluster
        client = YarnClient(conf, cluster)
        client.submit_application("app")
        nm_capacity = conf.get_int("yarn.nodemanager.resource.memory-mb")
        client.request_container("app", memory_mb=nm_capacity, vcores=1)
        client.request_container("app", memory_mb=nm_capacity, vcores=1)
        with pytest.raises(AllocationError, match="free"):
            client.request_container("app", memory_mb=1024, vcores=1)

    def test_vcore_exhaustion_rejected(self, yarn_cluster):
        conf, cluster = yarn_cluster
        client = YarnClient(conf, cluster)
        client.submit_application("app")
        vcores = conf.get_int("yarn.nodemanager.resource.cpu-vcores")
        rm_max = conf.get_int("yarn.scheduler.maximum-allocation-vcores")
        per_request = min(vcores, rm_max)
        for _ in range(2 * (vcores // per_request)):
            client.request_container("app", memory_mb=64, vcores=per_request)
        with pytest.raises(AllocationError):
            client.request_container("app", memory_mb=64, vcores=per_request)

    def test_release_returns_both_dimensions(self, yarn_cluster):
        conf, cluster = yarn_cluster
        rm = cluster.resourcemanager
        client = YarnClient(conf, cluster)
        client.submit_application("app")
        container = client.request_container("app", memory_mb=2048, vcores=2)
        node = rm.nodemanagers[container["node"]]
        assert node["used_mb"] == 2048 and node["used_vcores"] == 2
        rm.release_container("app", container)
        assert node["used_mb"] == 0 and node["used_vcores"] == 0
        assert rm.applications["app"]["containers"] == []


class TestFlinkInternals:
    @pytest.fixture()
    def flink_cluster(self):
        conf = FlinkConfiguration()
        cluster = MiniFlinkCluster(conf, num_taskmanagers=2)
        cluster.start()
        yield conf, cluster
        cluster.shutdown()

    def test_allocation_fills_taskmanagers_in_order(self, flink_cluster):
        conf, cluster = flink_cluster
        slots = conf.get_int("taskmanager.numberOfTaskSlots")
        allocations = cluster.jobmanager.allocate_slots(slots + 1)
        assert [a["tm_id"] for a in allocations[:slots]] == ["tm0"] * slots
        assert allocations[slots]["tm_id"] == "tm1"

    def test_capacity_error_names_the_numbers(self, flink_cluster):
        conf, cluster = flink_cluster
        with pytest.raises(SlotAllocationError, match="slots"):
            cluster.jobmanager.allocate_slots(999)

    def test_unknown_actor_message_rejected(self, flink_cluster):
        conf, cluster = flink_cluster
        wire = encode_payload({"kind": "poison-pill"},
                              ssl=conf.get_bool("akka.ssl.enabled"))
        with pytest.raises(ValueError, match="unknown actor message"):
            cluster.jobmanager.receive_akka_message(wire)

    def test_offer_slot_idempotent(self, flink_cluster):
        conf, cluster = flink_cluster
        taskmanager = cluster.taskmanagers[0]
        taskmanager.offer_slot(0)
        taskmanager.offer_slot(0)
        assert taskmanager.occupied_slots == [0]

    def test_taskmanager_lookup(self, flink_cluster):
        conf, cluster = flink_cluster
        assert cluster.taskmanager("tm1").tm_id == "tm1"
        assert cluster.taskmanager("tm9") is None
