"""Focused unit tests for mini-MapReduce internals."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mapreduce import JobConf, JobRunner, MiniMRCluster
from repro.apps.mapreduce.tasks import _partition
from repro.common.errors import CommitError, ShuffleError


@pytest.fixture()
def cluster():
    conf = JobConf()
    mini = MiniMRCluster(conf)
    mini.start()
    yield conf, mini
    mini.shutdown()


class TestPartitioner:
    @given(st.text(min_size=1, max_size=20), st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_partition_in_range(self, word, partitions):
        assert 0 <= _partition(word, partitions) < partitions

    @given(st.text(min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_partition_deterministic(self, word):
        assert _partition(word, 7) == _partition(word, 7)

    def test_zero_partitions_clamped(self):
        assert _partition("x", 0) == 0


class TestMapTask:
    def test_spills_cover_every_word(self, cluster):
        conf, mini = cluster
        task = mini.launch_map_task(0)
        task.run_map(["alpha beta", "beta gamma"])
        spilled = [pair for bucket in task._spills.values()
                   for pair in bucket]
        words = sorted(word for word, _ in spilled)
        assert words == ["alpha", "beta", "beta", "gamma"]

    def test_serve_unknown_partition_rejected(self, cluster):
        conf, mini = cluster
        task = mini.launch_map_task(0)
        task.run_map(["a b"])
        with pytest.raises(ShuffleError):
            task.serve_shuffle(conf.get_int("mapreduce.job.reduces"))

    def test_stopped_task_refuses_to_serve(self, cluster):
        conf, mini = cluster
        task = mini.launch_map_task(0)
        task.run_map(["a"])
        task.stop()
        with pytest.raises(Exception):
            task.serve_shuffle(0)


class TestJobRunner:
    def test_archive_rejects_missing_parts(self, cluster):
        conf, mini = cluster
        runner = JobRunner(conf, mini)
        output = runner.run_wordcount("job_u1", ["a b c"])
        parts = [p for p in output if p.startswith("part-r-")]
        output.pop(parts[0])
        with pytest.raises(CommitError, match="part files"):
            runner.archive_output(output)

    def test_archive_rejects_temporary_leftovers(self, cluster):
        conf, mini = cluster
        runner = JobRunner(conf, mini)
        output = runner.run_wordcount("job_u2", ["a b c"])
        output["_temporary/attempt_r_99999/part-r-99999"] = b"stray"
        with pytest.raises(CommitError, match="_temporary"):
            runner.archive_output(output)

    def test_read_output_ignores_non_part_files(self, cluster):
        conf, mini = cluster
        runner = JobRunner(conf, mini)
        output = runner.run_wordcount("job_u3", ["x y x"])
        output["_SUCCESS"] = b""
        merged = runner.read_output(output)
        assert merged == {"x": 2, "y": 1}

    def test_v1_commit_moves_every_task_file(self, cluster):
        conf, mini = cluster
        conf.set("mapreduce.fileoutputcommitter.algorithm.version", 1)
        runner = JobRunner(conf, mini)
        output = runner.run_wordcount("job_u4", ["a b", "b c"])
        assert not any(p.startswith("_temporary/") for p in output)
        assert len([p for p in output if p.startswith("part-r-")]) == \
            conf.get_int("mapreduce.job.reduces")


class TestHistoryServer:
    def test_unregistered_method_rejected(self, cluster):
        conf, mini = cluster
        runner = JobRunner(conf, mini)
        from repro.common.errors import RpcError
        with pytest.raises(RpcError):
            runner.rpc.call(mini.history_server.rpc, "drop_all_jobs")
