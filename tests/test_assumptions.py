"""Tests of ConfAgent under the §6.4 assumption violations.

The paper lists five assumptions; violating 2-5 "does not completely
prevent ConfAgent from working" — unmappable objects are excluded rather
than misattributed.  These tests pin that degradation behaviour.
"""

from __future__ import annotations

import pytest

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.params import INT, ParamRegistry
from repro.core.confagent import UNCERTAIN, UNIT_TEST, ConfAgent, current_agent

REGISTRY = ParamRegistry("assumptions")
REGISTRY.define("asm.alpha", INT, 1)
REGISTRY.define("asm.beta", INT, 2)


class AsmConfiguration(Configuration):
    registry = REGISTRY


#: assumption 4 violation: a configuration object stored as a global,
#: created at import time — no agent session exists, so no rule ever saw
#: its creation.
GLOBAL_CONF = AsmConfiguration()


class Server:
    node_type = "Server"

    def __init__(self, conf):
        agent = current_agent()
        agent.start_init(self, self.node_type)
        try:
            self.conf = ref_to_clone(conf)
        finally:
            agent.stop_init()


class TestGlobalConfAssumption:
    def test_global_conf_resolves_to_uncertain(self):
        with ConfAgent(record_usage=True) as agent:
            conf = AsmConfiguration()
            Server(conf)
            GLOBAL_CONF.get_int("asm.alpha")
            assert agent._resolve(GLOBAL_CONF) == (UNCERTAIN, 0)
            assert "asm.alpha" in agent.uncertain_params

    def test_global_conf_never_receives_injection(self):
        from repro.core.testgen import HeteroAssignment, ParamAssignment
        assignment = HeteroAssignment((ParamAssignment(
            param="asm.alpha", group="Server", group_values=(100,),
            other_value=200),))
        with ConfAgent(assignment=assignment):
            conf = AsmConfiguration()
            node = Server(conf)
            assert node.conf.get_int("asm.alpha") == 100
            # the unmappable global keeps its real value: no fabricated
            # intra-node inconsistency (§6.2 Observation 3)
            assert GLOBAL_CONF.get_int("asm.alpha") == 1


class TestInitWithoutAnnotation:
    def test_unannotated_node_conf_is_uncertain(self):
        """Assumption 3 violation: a 'node' whose init is not annotated —
        its conf objects cannot be attributed to it."""

        class SilentNode:
            def __init__(self, conf):
                self.conf = AsmConfiguration()  # fresh conf, no init scope

        with ConfAgent(record_usage=True) as agent:
            shared = AsmConfiguration()
            Server(shared)           # a properly annotated node exists
            silent = SilentNode(shared)
            silent.conf.get_int("asm.beta")
            assert agent._resolve(silent.conf) == (UNCERTAIN, 0)
            assert "asm.beta" in agent.uncertain_params

    def test_conf_before_any_node_still_maps_to_test(self):
        with ConfAgent() as agent:
            early = AsmConfiguration()
            Server(early)
            assert agent._resolve(early) == (UNIT_TEST, 0)


class TestSharedObjectAssumption:
    def test_component_shared_between_nodes_keeps_first_owner(self):
        """Assumption 5 violation: two nodes share a component whose conf
        was created inside the *first* node's init — reads through it get
        the first node's values (the IPC situation, §7.1)."""
        with ConfAgent() as agent:
            shared = AsmConfiguration()
            first = Server(shared)
            # re-entering the first node's init scope models a component
            # constructed by it and later shared with the second node
            agent.start_init(first, "Server")
            try:
                component_conf = AsmConfiguration()
            finally:
                agent.stop_init()
            second = Server(shared)
            assert agent._resolve(component_conf)[0] == "Server"
            assert agent._resolve(component_conf) != \
                agent._resolve(second.conf)
