"""Setuptools shim so `pip install -e .` works without the `wheel`
package (this environment is offline; modern PEP-660 editable installs
need wheel, the legacy path does not)."""

from setuptools import setup

setup()
