"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    code = main()
except BrokenPipeError:
    # output piped into a pager/head that closed early — not an error
    sys.stderr.close()
    code = 0
sys.exit(code)
