"""ZebraConf reproduction: find heterogeneous-unsafe configuration
parameters in (simulated) cloud systems.

Public API quick tour::

    from repro import run_full_campaign, CampaignConfig
    report = run_full_campaign(CampaignConfig())
    for app in report.apps:
        print(app.app, [v.param for v in app.true_problems])

See README.md for the architecture overview and DESIGN.md for the mapping
from the paper's evaluation to this package.
"""

from repro.core import (CORPUS, Campaign, CampaignConfig, CampaignReport,
                        ConfAgent, TestContext, TestGenerator, TestRunner,
                        UnitTest, current_agent, run_full_campaign, unit_test)
from repro.common import (Configuration, MiniCluster, Node, ParamDef,
                          ParamRegistry, Simulator)

__version__ = "1.0.0"

__all__ = [
    "Campaign", "CampaignConfig", "CampaignReport", "ConfAgent", "CORPUS",
    "Configuration", "MiniCluster", "Node", "ParamDef", "ParamRegistry",
    "Simulator", "TestContext", "TestGenerator", "TestRunner", "UnitTest",
    "current_agent", "run_full_campaign", "unit_test",
]
