"""Command-line interface: run ZebraConf campaigns from a shell.

Usage (installed as ``python -m repro``)::

    python -m repro list-apps
    python -m repro list-params hdfs --unsafe-only
    python -m repro corpus mapreduce
    python -m repro campaign yarn --json yarn.json --trace yarn-trace.jsonl
    python -m repro campaign yarn --store ./results   # warm-start next run
    python -m repro store stats ./results
    python -m repro evaluate --json full.json
    python -m repro serve --serve-state ./state --store ./results
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.apps import catalog
from repro.core.checkpoint import CheckpointError
from repro.core.orchestrator import Campaign, CampaignConfig, run_full_campaign
from repro.core.registry import load_all_suites
from repro.core.report import (AppReport, app_report_to_dict,
                               campaign_report_to_dict, render_stage_counts,
                               render_summary, render_table,
                               render_unsafe_params)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZebraConf: find heterogeneous-unsafe configuration "
                    "parameters by re-running whole-system unit tests with "
                    "heterogeneous configurations.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the target applications")

    params = sub.add_parser("list-params",
                            help="list an application's parameter registry")
    params.add_argument("app", choices=catalog.APP_NAMES)
    params.add_argument("--unsafe-only", action="store_true",
                        help="only the paper's Table-3 parameters")

    corpus = sub.add_parser("corpus",
                            help="list an application's unit-test corpus")
    corpus.add_argument("app", choices=catalog.APP_NAMES)

    why = sub.add_parser("why",
                         help="explain a parameter: kind, default, and the "
                              "paper's failure mechanism if it is in Table 3")
    why.add_argument("param")

    audit = sub.add_parser("audit",
                           help="registry wiring audit: flag parameters "
                                "that are UNREAD or READ_BUT_INERT across "
                                "an application's corpus "
                                "(docs/AUDIT.md)")
    audit.add_argument("app", choices=catalog.APP_NAMES)
    audit.add_argument("--param", action="append", dest="params",
                       metavar="NAME",
                       help="restrict the audit to this parameter "
                            "(repeatable)")
    audit.add_argument("--all", action="store_true",
                       help="print every verdict, not only the flagged "
                            "parameters")
    audit.add_argument("--json", metavar="PATH",
                       help="also write the machine-readable audit here")

    campaign = sub.add_parser("campaign",
                              help="run ZebraConf on one application")
    campaign.add_argument("app", choices=catalog.APP_NAMES)
    _add_campaign_flags(campaign)

    evaluate = sub.add_parser("evaluate",
                              help="run the paper's full evaluation "
                                   "(all six applications)")
    _add_campaign_flags(evaluate)

    worker = sub.add_parser("worker",
                            help="join a distributed campaign as a remote "
                                 "worker (the coordinator side is a normal "
                                 "campaign/evaluate run with --distributed)")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to join")
    worker.add_argument("--name", default="",
                        help="worker name shown in the coordinator's fleet "
                             "table (default: host#pid)")
    worker.add_argument("--workers", type=int, default=1,
                        help="local execution slots; >1 runs leased "
                             "profiles through the supervised process pool")
    worker.add_argument("--parallel-backend", choices=("thread", "process"),
                        default="process",
                        help="local backend for --workers > 1 "
                             "(default process)")
    worker.add_argument("--supervise", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="contain crashes of local pool workers "
                             "(default on)")
    worker.add_argument("--worker-redelivery", type=int, default=2,
                        metavar="N",
                        help="local in-pool redeliveries before a profile "
                             "is reported as quarantined (default 2)")
    worker.add_argument("--crash-loop-threshold", type=int, default=5,
                        metavar="K",
                        help="consecutive local worker deaths that trip the "
                             "local circuit breaker (default 5)")
    worker.add_argument("--profile-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget per profile in the local "
                             "pool (default: none)")
    worker.add_argument("--worker-rlimit-cpu", type=int, default=None,
                        metavar="SECONDS", help="RLIMIT_CPU per pool worker")
    worker.add_argument("--worker-rlimit-mem", type=int, default=None,
                        metavar="MB", help="RLIMIT_AS (MB) per pool worker")
    worker.add_argument("--reconnect-attempts", type=int, default=8,
                        metavar="N",
                        help="consecutive failed (re)connects before the "
                             "worker gives up (default 8; backoff is "
                             "exponential with jitter)")
    worker.add_argument("--store", metavar="DIR", default=None,
                        help="durable result store for this worker's own "
                             "executions (local directory; store paths "
                             "never travel over the wire)")
    worker.add_argument("--dist-secret", metavar="SECRET",
                        default=os.environ.get("REPRO_DIST_SECRET") or None,
                        help="shared secret for the HMAC handshake with the "
                             "coordinator (default: $REPRO_DIST_SECRET); a "
                             "worker with a secret refuses coordinators "
                             "that do not authenticate")
    _add_net_fault_flags(worker)

    store = sub.add_parser("store",
                           help="inspect or compact a durable result store "
                                "(docs/STORE.md)")
    store.add_argument("action", choices=("stats", "verify", "gc"),
                       help="stats: substrate and record totals; verify: "
                            "full integrity scan (exit 1 on any damage); "
                            "gc: compact quiescent segments, dropping "
                            "superseded duplicates and damaged spans")
    store.add_argument("dir", metavar="DIR", help="store directory")
    store.add_argument("--json", action="store_true",
                       help="print the machine-readable result on stdout "
                            "instead of the human rendering (exit codes "
                            "are unchanged)")

    serve = sub.add_parser("serve",
                           help="run the campaign-as-a-service HTTP/JSON "
                                "daemon: accept campaign submissions, "
                                "schedule them FIFO over a shared result "
                                "store, stream progress, serve reports "
                                "(docs/SERVICE.md)")
    serve.add_argument("listen", nargs="?", default="127.0.0.1:8787",
                       metavar="[HOST:]PORT",
                       help="listen address (default 127.0.0.1:8787; "
                            "port 0 binds an ephemeral port)")
    serve.add_argument("--serve-state", required=True, metavar="DIR",
                       help="persistent daemon state: job specs, status, "
                            "event feeds, reports, and the digest-keyed "
                            "checkpoint journals that make a SIGKILL'd "
                            "daemon resumable on restart")
    serve.add_argument("--serve-max-active", type=int, default=1,
                       metavar="N",
                       help="campaigns run concurrently (default 1); "
                            "queued jobs wait FIFO")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="durable result store shared by every "
                            "submission with \"store\": true (warm "
                            "resubmissions are served strictly cheaper; "
                            "docs/STORE.md)")
    serve.add_argument("--serve-secret", metavar="SECRET",
                       default=os.environ.get("REPRO_SERVE_SECRET")
                       or os.environ.get("REPRO_DIST_SECRET") or None,
                       help="require `Authorization: Bearer <token>` on "
                            "mutating endpoints, where the token is the "
                            "HMAC of this secret (print it with `repro "
                            "serve-token`; default: $REPRO_SERVE_SECRET, "
                            "then $REPRO_DIST_SECRET)")
    serve.add_argument("--dist-secret", metavar="SECRET",
                       default=os.environ.get("REPRO_DIST_SECRET") or None,
                       help="shared secret forwarded to campaigns that "
                            "request \"distributed\" dispatch over a "
                            "worker fleet (default: $REPRO_DIST_SECRET)")

    token = sub.add_parser("serve-token",
                           help="print the bearer token for a serve "
                                "secret (what clients must send in "
                                "`Authorization: Bearer <token>`)")
    token.add_argument("--secret", metavar="SECRET",
                       default=os.environ.get("REPRO_SERVE_SECRET")
                       or os.environ.get("REPRO_DIST_SECRET") or None,
                       help="the daemon's --serve-secret (default: "
                            "$REPRO_SERVE_SECRET, then $REPRO_DIST_SECRET)")
    token.add_argument("--json", action="store_true",
                       help="print {\"token\": ...} instead of the bare "
                            "hex token")

    validate = sub.add_parser("validate-obs",
                              help="schema-check observability artifacts "
                                   "(--trace-spans / --trace-chrome / "
                                   "--metrics-out outputs) and reconcile "
                                   "the metrics against a --json report")
    validate.add_argument("--spans", metavar="PATH",
                          help="span JSONL to validate")
    validate.add_argument("--chrome", metavar="PATH",
                          help="Chrome trace_event JSON to validate")
    validate.add_argument("--metrics", metavar="PATH",
                          help="Prometheus-style snapshot to validate")
    validate.add_argument("--report", metavar="JSON",
                          help="campaign --json report; with --metrics, "
                               "check that executions, cache hits, pool "
                               "voids and worker respawns match exactly")
    return parser


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel workers (default 1); combine with "
                             "--parallel-backend process for real speedup "
                             "on the CPU-bound simulations")
    parser.add_argument("--parallel-backend", choices=("thread", "process"),
                        default="thread",
                        help="how --workers fans out unit-test profiles: "
                             "GIL-bound threads (default) or forked "
                             "processes (true parallelism)")
    parser.add_argument("--schedule", choices=("lpt", "catalog"),
                        default="lpt",
                        help="dispatch order for --workers > 1: "
                             "longest-predicted-first from the cost model "
                             "(default) or legacy catalog order; findings "
                             "are identical either way")
    parser.add_argument("--exec-cache", action="store_true",
                        help="memoize executions in a content-addressed "
                             "cache, so identical homogeneous baselines and "
                             "repeated confirmation/pool runs execute once; "
                             "verdicts are byte-identical either way")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="durable cross-campaign result store: implies "
                             "--exec-cache semantics, persists outcomes and "
                             "reports to DIR so a second campaign starts "
                             "warm; findings are byte-identical warm or "
                             "cold (docs/STORE.md)")
    parser.add_argument("--incremental", action="store_true",
                        help="plan against the --store before running: "
                             "profiles whose parameters and settings are "
                             "unchanged since their stored run are folded "
                             "back with zero fresh executions; changed or "
                             "new profiles run fresh (docs/PLANNING.md)")
    from repro.core.plan import SAMPLE_MODES
    parser.add_argument("--sample", choices=SAMPLE_MODES, default=None,
                        help="test a deterministic, seeded subset of each "
                             "profile's hetero-assignments instead of the "
                             "exhaustive enumeration: pairwise coverage, "
                             "random-k, or greedy dissimilarity "
                             "(docs/PLANNING.md)")
    parser.add_argument("--sample-k", type=int, default=None, metavar="N",
                        help="cell budget per (test, group) for --sample "
                             "random-k/dissimilarity (default: the pairwise "
                             "budget, for equal-cost comparisons)")
    parser.add_argument("--sample-seed", type=int, default=0, metavar="SEED",
                        help="seed for the --sample subset (same seed = "
                             "identical subset on every backend, default 0)")
    parser.add_argument("--audit", action="store_true",
                        help="run the registry wiring audit after the "
                             "campaign (UNREAD / READ_BUT_INERT verdicts, "
                             "docs/AUDIT.md); probe executions are "
                             "accounted separately, so every other report "
                             "section is unchanged")
    parser.add_argument("--pool-size", type=int, default=None,
                        help="max pooled parameters per run "
                             "(default: all, the paper's setting)")
    parser.add_argument("--blacklist-threshold", type=int, default=3,
                        help="distinct failing tests before a parameter is "
                             "marked unsafe outright (default 3)")
    parser.add_argument("--disable-ipc-sharing", action="store_true",
                        help="apply the paper's one-line Hadoop IPC fix")
    parser.add_argument("--param", action="append", dest="params",
                        metavar="NAME",
                        help="restrict testing to this parameter "
                             "(repeatable); e.g. vet a planned "
                             "reconfiguration before rolling it out")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the machine-readable report here")
    parser.add_argument("--trace", metavar="PATH",
                        help="write a JSONL trace of every pre-run and "
                             "instance decision here")
    parser.add_argument("--compare", metavar="BASELINE_JSON",
                        help="diff the fresh report against a stored "
                             "--json baseline; exit 1 on new unsafe "
                             "parameters (regressions)")
    parser.add_argument("--markdown", metavar="PATH",
                        help="also write the report as a markdown document")
    resilience = parser.add_argument_group(
        "resilience", "checkpointing, crash containment, fault injection")
    resilience.add_argument("--checkpoint", metavar="PATH",
                            help="journal finished work to this JSONL file "
                                 "and resume from it on restart (already-"
                                 "finished unit tests are not re-executed)")
    resilience.add_argument("--infra-retries", type=int, default=2,
                            metavar="N",
                            help="retries (with backoff) for infrastructure "
                                 "errors per execution (default 2); test-"
                                 "oracle failures are never retried")
    resilience.add_argument("--watchdog", type=float, default=None,
                            metavar="SIM_SECONDS",
                            help="simulated-time budget per execution before "
                                 "it is killed as a timeout (default: 30 "
                                 "simulated days)")
    resilience.add_argument("--chaos", action="store_true",
                            help="inject the moderate fault preset (message "
                                 "drops/delays/duplicates, node crashes, "
                                 "slow I/O, clock jitter, infra errors)")
    resilience.add_argument("--fault-seed", type=int, default=0,
                            metavar="SEED",
                            help="seed for the deterministic fault schedule "
                                 "(same seed = identical chaos, default 0)")
    for flag, text in (
            ("--fault-drop", "message/RPC drop probability"),
            ("--fault-delay", "message delay probability"),
            ("--fault-duplicate", "RPC duplicate-delivery probability"),
            ("--fault-crash", "per-node crash/restart probability"),
            ("--fault-slow-io", "slow-I/O perturbation probability"),
            ("--fault-clock-jitter", "relative timer clock jitter"),
            ("--fault-infra", "injected infrastructure-error probability"),
            ("--fault-worker-crash", "probability a supervised worker "
                                     "process hard-crashes per delivery")):
        resilience.add_argument(flag, type=float, default=None,
                                metavar="PROB",
                                help="%s (overrides the --chaos preset)" % text)
    for flag, text in (
            ("--fault-disk-torn-write", "a store append is torn mid-record "
                                        "(prefix reaches disk, then EIO)"),
            ("--fault-disk-short-write", "a store append silently persists "
                                         "only a prefix"),
            ("--fault-disk-enospc", "a store append fails with ENOSPC "
                                    "before writing anything"),
            ("--fault-disk-crash-after-write", "the process crashes "
                                               "immediately after a durable "
                                               "store append")):
        resilience.add_argument(flag, type=float, default=0.0,
                                metavar="PROB",
                                help="probability %s; applies only to the "
                                     "--store disk layer, seeded by "
                                     "--fault-seed" % text)
    resilience.add_argument("--supervise", default=True,
                            action=argparse.BooleanOptionalAction,
                            help="supervise process workers: contain "
                                 "crashes, reap hung workers, quarantine "
                                 "poison profiles (default on; "
                                 "--no-supervise restores the bare "
                                 "executor, where one dead child aborts "
                                 "the campaign)")
    resilience.add_argument("--profile-deadline", type=float, default=None,
                            metavar="SECONDS",
                            help="real-time wall-clock budget per unit-test "
                                 "profile under supervision; on expiry the "
                                 "worker is SIGKILLed and the profile "
                                 "quarantined (default: none)")
    resilience.add_argument("--worker-rlimit-cpu", type=int, default=None,
                            metavar="SECONDS",
                            help="RLIMIT_CPU for each supervised worker; "
                                 "workers are recycled per profile so every "
                                 "profile gets a fresh CPU budget")
    resilience.add_argument("--worker-rlimit-mem", type=int, default=None,
                            metavar="MB",
                            help="RLIMIT_AS (address space, MB) for each "
                                 "supervised worker")
    resilience.add_argument("--worker-redelivery", type=int, default=2,
                            metavar="N",
                            help="times a profile is redelivered to a fresh "
                                 "worker after its worker crashed, before "
                                 "being quarantined (default 2)")
    resilience.add_argument("--crash-loop-threshold", type=int, default=5,
                            metavar="K",
                            help="consecutive worker deaths (no completed "
                                 "profile in between) that trip the "
                                 "supervisor's circuit breaker and halt the "
                                 "campaign with a partial report (default 5)")
    distributed = parser.add_argument_group(
        "distributed execution", "coordinator-side remote worker fleet "
                                 "(docs/DISTRIBUTED.md)")
    distributed.add_argument("--distributed", metavar="[HOST:]PORT",
                             default=None,
                             help="serve this campaign's profiles to remote "
                                  "`repro worker --connect` processes over "
                                  "TCP; falls back to the local pool if the "
                                  "fleet never joins or is lost")
    distributed.add_argument("--dist-heartbeat", type=float, default=1.0,
                             metavar="SECONDS",
                             help="worker heartbeat cadence (default 1.0)")
    distributed.add_argument("--dist-heartbeat-timeout", type=float,
                             default=10.0, metavar="SECONDS",
                             help="silence after which a worker is declared "
                                  "dead and its leases redelivered "
                                  "(default 10)")
    distributed.add_argument("--dist-lease-deadline", type=float,
                             default=None, metavar="SECONDS",
                             help="wall-clock budget per granted lease; on "
                                  "expiry the profile is redelivered "
                                  "(default: none)")
    distributed.add_argument("--dist-max-copies", type=int, default=2,
                             metavar="N",
                             help="max concurrent holders per profile when "
                                  "idle workers steal straggler leases "
                                  "(default 2; first finisher wins)")
    distributed.add_argument("--dist-join-grace", type=float, default=20.0,
                             metavar="SECONDS",
                             help="how long to wait for the first worker "
                                  "before degrading to the local pool "
                                  "(default 20)")
    distributed.add_argument("--dist-fleet-grace", type=float, default=10.0,
                             metavar="SECONDS",
                             help="how long to run with zero live workers "
                                  "(after some joined) before degrading to "
                                  "the local pool (default 10)")
    distributed.add_argument("--dist-secret", metavar="SECRET",
                             default=os.environ.get("REPRO_DIST_SECRET")
                             or None,
                             help="shared secret for the worker HMAC "
                                  "handshake (default: $REPRO_DIST_SECRET); "
                                  "unauthenticated workers are rejected and "
                                  "the secret never appears on the wire or "
                                  "in the checkpoint journal")
    _add_net_fault_flags(parser, group=distributed)
    observability = parser.add_argument_group(
        "observability", "span tracing, metrics, live progress "
                         "(docs/OBSERVABILITY.md)")
    observability.add_argument("--trace-spans", metavar="PATH",
                               help="write the hierarchical span trace "
                                    "(app > profile > pool > instance > "
                                    "trial, wall + modelled clocks) as "
                                    "JSONL")
    observability.add_argument("--trace-chrome", metavar="PATH",
                               help="write a Chrome trace_event JSON "
                                    "loadable in Perfetto / chrome://tracing")
    observability.add_argument("--metrics-out", metavar="PATH",
                               help="write a Prometheus-style metrics "
                                    "snapshot (counters reconcile exactly "
                                    "with the report)")
    observability.add_argument("--progress", action="store_true",
                               help="live one-line progress on stderr "
                                    "(profiles done, executions, cache "
                                    "hit-rate, voids, respawns)")


def _add_net_fault_flags(parser: argparse.ArgumentParser,
                         group: Optional[argparse._ArgumentGroup] = None
                         ) -> None:
    """Transport-level chaos knobs, shared by coordinator and worker."""
    target = group if group is not None else parser.add_argument_group(
        "network chaos", "deterministic transport-level fault injection")
    target.add_argument("--fault-net-drop", type=float, default=0.0,
                        metavar="PROB",
                        help="probability an outbound frame is silently "
                             "dropped (deterministic per frame)")
    target.add_argument("--fault-net-delay", type=float, default=0.0,
                        metavar="PROB",
                        help="probability an outbound frame is delayed")
    target.add_argument("--fault-net-partition", type=int, default=0,
                        metavar="N",
                        help="hard-close each connection after N outbound "
                             "frames (0 = never), simulating a partition")
    target.add_argument("--fault-net-seed", type=int, default=0,
                        metavar="SEED",
                        help="seed for the net fault schedule (same seed = "
                             "identical chaos, default 0)")


def _net_fault_plan(args: argparse.Namespace) -> "Optional[NetFaultPlan]":
    from repro.common.transport import NetFaultPlan
    plan = NetFaultPlan(seed=args.fault_net_seed,
                        drop_prob=args.fault_net_drop,
                        delay_prob=args.fault_net_delay,
                        partition_after=args.fault_net_partition)
    return plan if plan.active else None


def _fault_plan(args: argparse.Namespace) -> "Optional[FaultPlan]":
    from dataclasses import replace

    from repro.common.faults import FaultPlan
    base = (FaultPlan.moderate(args.fault_seed) if args.chaos
            else FaultPlan(seed=args.fault_seed))
    overrides = {}
    for flag, fieldname in (("fault_drop", "drop_prob"),
                            ("fault_delay", "delay_prob"),
                            ("fault_duplicate", "duplicate_prob"),
                            ("fault_crash", "crash_prob"),
                            ("fault_slow_io", "io_slowdown_prob"),
                            ("fault_clock_jitter", "clock_jitter"),
                            ("fault_infra", "infra_error_prob"),
                            ("fault_worker_crash", "worker_crash_prob")):
        value = getattr(args, flag)
        if value is not None:
            overrides[fieldname] = value
    plan = replace(base, **overrides) if overrides else base
    return plan if plan.active else None


def _disk_fault_plan(args: argparse.Namespace) -> "Optional[DiskFaultPlan]":
    from repro.common.faults import DiskFaultPlan
    plan = DiskFaultPlan(
        seed=args.fault_seed,
        torn_write_prob=args.fault_disk_torn_write,
        short_write_prob=args.fault_disk_short_write,
        enospc_prob=args.fault_disk_enospc,
        crash_after_write_prob=args.fault_disk_crash_after_write)
    return plan if plan.active else None


def _config(args: argparse.Namespace) -> CampaignConfig:
    from repro.core.tracelog import TraceLog
    only = frozenset(args.params) if args.params else None
    config = CampaignConfig(workers=args.workers,
                            max_pool_size=args.pool_size,
                            blacklist_threshold=args.blacklist_threshold,
                            disable_ipc_sharing=args.disable_ipc_sharing,
                            only_params=only,
                            trace=TraceLog() if args.trace else None,
                            fault_plan=_fault_plan(args),
                            checkpoint_path=args.checkpoint,
                            infra_retries=args.infra_retries,
                            exec_cache=args.exec_cache,
                            store_path=args.store,
                            incremental=args.incremental,
                            sample=args.sample,
                            sample_k=args.sample_k,
                            sample_seed=args.sample_seed,
                            disk_fault_plan=_disk_fault_plan(args),
                            dist_secret=args.dist_secret,
                            audit=args.audit,
                            parallel_backend=args.parallel_backend,
                            schedule=args.schedule,
                            supervise=args.supervise,
                            profile_deadline_s=args.profile_deadline,
                            worker_rlimit_cpu_s=args.worker_rlimit_cpu,
                            worker_rlimit_mem_mb=args.worker_rlimit_mem,
                            worker_redelivery=args.worker_redelivery,
                            crash_loop_threshold=args.crash_loop_threshold,
                            distributed=args.distributed,
                            dist_heartbeat_s=args.dist_heartbeat,
                            dist_heartbeat_timeout_s=args.dist_heartbeat_timeout,
                            dist_lease_deadline_s=args.dist_lease_deadline,
                            dist_max_copies=args.dist_max_copies,
                            dist_join_grace_s=args.dist_join_grace,
                            dist_fleet_grace_s=args.dist_fleet_grace,
                            net_fault_plan=_net_fault_plan(args),
                            observe=bool(args.trace_spans or args.trace_chrome
                                         or args.metrics_out),
                            progress_stream=(sys.stderr if args.progress
                                             else None))
    if args.watchdog is not None:
        config.watchdog_sim_s = args.watchdog
    return config


def _write_trace(args: argparse.Namespace, config: CampaignConfig) -> None:
    if args.trace and config.trace is not None:
        count = config.trace.write_jsonl(args.trace)
        print("wrote %d trace events to %s" % (count, args.trace))


def _write_observability(args: argparse.Namespace,
                         reports: "List[AppReport]") -> None:
    """Export spans/metrics collected by the campaign(s), if requested."""
    if not (args.trace_spans or args.trace_chrome or args.metrics_out):
        return
    from repro.core.observe import (write_chrome_trace, write_metrics_text,
                                    write_spans_jsonl)
    pairs = [(r.app, r.observation) for r in reports
             if r.observation is not None]
    if args.trace_spans:
        count = write_spans_jsonl(pairs, args.trace_spans)
        print("wrote %d spans to %s" % (count, args.trace_spans))
    if args.trace_chrome:
        count = write_chrome_trace(pairs, args.trace_chrome)
        print("wrote %d trace events to %s (open in Perfetto)"
              % (count, args.trace_chrome))
    if args.metrics_out:
        count = write_metrics_text(pairs, args.metrics_out)
        print("wrote %d metric samples to %s" % (count, args.metrics_out))


def _summed_report(record: dict) -> dict:
    """Collapse a campaign (multi-app) --json record into one app-shaped
    record so reconciliation can compare it against the merged metrics."""
    if "apps" not in record:
        return record
    total = {"executions": 0,
             "exec_cache": {"hits": 0, "misses": 0},
             "pool_stats": {"pool_voids": 0, "pool_runs": 0},
             "supervision": {"respawns": 0}}
    for app in record["apps"]:
        total["executions"] += app.get("executions", 0)
        cache = app.get("exec_cache", {})
        total["exec_cache"]["hits"] += cache.get("hits", 0)
        total["exec_cache"]["misses"] += cache.get("misses", 0)
        pool = app.get("pool_stats", {})
        total["pool_stats"]["pool_voids"] += pool.get("pool_voids", 0)
        total["pool_stats"]["pool_runs"] += pool.get("pool_runs", 0)
        supervision = app.get("supervision", {})
        total["supervision"]["respawns"] += supervision.get("respawns", 0)
    return total


def _validate_obs(args: argparse.Namespace) -> int:
    from repro.core.observe import (read_metrics_totals,
                                    reconcile_with_report,
                                    validate_chrome_trace,
                                    validate_metrics_text,
                                    validate_spans_jsonl)
    if not (args.spans or args.chrome or args.metrics):
        print("nothing to validate: pass --spans/--chrome/--metrics",
              file=sys.stderr)
        return 2
    failures = 0
    for label, path, validator in (
            ("spans", args.spans, validate_spans_jsonl),
            ("chrome trace", args.chrome, validate_chrome_trace),
            ("metrics", args.metrics, validate_metrics_text)):
        if not path:
            continue
        try:
            count = validator(path)
        except (OSError, ValueError) as exc:
            print("%s: INVALID — %s" % (label, exc), file=sys.stderr)
            failures += 1
        else:
            print("%s: OK (%d records) — %s" % (label, count, path))
    if args.report and args.metrics and failures == 0:
        with open(args.report) as handle:
            record = _summed_report(json.load(handle))
        problems = reconcile_with_report(read_metrics_totals(args.metrics),
                                         record)
        if problems:
            for problem in problems:
                print("reconciliation: MISMATCH — %s" % problem,
                      file=sys.stderr)
            failures += 1
        else:
            print("reconciliation: OK (metrics match the report exactly)")
    return 1 if failures else 0


def _store_command(args: argparse.Namespace) -> int:
    """``repro store {stats,verify,gc} DIR [--json]``.

    ``--json`` prints the machine-readable result (the same dict
    ``ResultStore.summary()``/``gc()`` return, plus an ``ok`` flag for
    ``verify``) on stdout; exit codes are identical either way, so
    scripts can both parse and gate in one call.
    """
    from repro.core.store import ResultStore, StoreError
    store = ResultStore(args.dir)
    try:
        if args.json:
            if args.action == "gc":
                record = store.gc()
            else:
                record = store.summary()
                if args.action == "verify":
                    record["ok"] = not (record["corrupt_records"]
                                        or record["truncated_tails"])
            print(json.dumps(record, indent=2, sort_keys=True))
            if args.action == "verify" and not record["ok"]:
                return 1
            return 0
        summary = store.summary()
        if args.action == "stats":
            print("store %s: %d segment(s), %s bytes"
                  % (args.dir, summary["segments"],
                     format(summary["bytes"], ",")))
            print("records: %d entries (%d deterministic, %d seeded), "
                  "%d report(s)"
                  % (summary["entries"], summary["deterministic"],
                     summary["seeded"], summary["reports"]))
            rows = [[s["app"], s["digest"], s["entries"], s["reports"]]
                    for s in summary["substrates"]]
            if rows:
                print(render_table(["App", "Corpus digest", "Entries",
                                    "Reports"], rows))
            if summary["corrupt_records"] or summary["truncated_tails"]:
                print("damage: %d corrupt record(s), %d truncated tail(s) "
                      "— %d record(s) salvaged around them; run "
                      "`repro store gc %s` to drop the damaged spans"
                      % (summary["corrupt_records"],
                         summary["truncated_tails"],
                         summary["salvaged_records"], args.dir))
            return 0
        if args.action == "verify":
            damage = summary["corrupt_records"] + summary["truncated_tails"]
            if damage:
                print("store %s: DAMAGED — %d corrupt record(s), %d "
                      "truncated tail(s); %d intact record(s) remain "
                      "readable" % (args.dir, summary["corrupt_records"],
                                    summary["truncated_tails"],
                                    summary["entries"] + summary["reports"]),
                      file=sys.stderr)
                return 1
            print("store %s: OK — %d record(s) across %d segment(s), "
                  "every frame intact"
                  % (args.dir, summary["entries"] + summary["reports"],
                     summary["segments"]))
            return 0
        result = store.gc()
        print("gc %s: compacted %d segment(s)%s, kept %d live segment(s) "
              "untouched; %d entries + %d report(s) survive, %d damaged "
              "span(s) dropped"
              % (args.dir, result["compacted_segments"],
                 " into %s" % result["segment"] if "segment" in result
                 else "",
                 result["kept_segments"], result["entries"],
                 result["reports"], result["dropped_damage"]))
        return 0
    except StoreError as exc:
        if args.json:
            print(json.dumps({"error": str(exc)}))
        print("error: %s" % exc, file=sys.stderr)
        return 2


def _print_app_report(report: AppReport) -> None:
    print("instance counts per stage:")
    for stage, count in report.stage_counts.rows():
        print("  %-32s %12s" % (stage, format(count, ",")))
    print()
    rows = [[v.param,
             "TRUE PROBLEM" if v.is_true_problem else "false positive",
             v.category if v.is_true_problem else v.fp_reason]
            for v in report.verdicts]
    if rows:
        print(render_table(["Parameter", "Verdict", "Category / FP cause"],
                           rows))
    else:
        print("no heterogeneous-unsafe parameters reported")
    print("\n%d reported (%d true problems, %d false positives); "
          "%d executions, %.1f modelled machine hours"
          % (len(report.verdicts), len(report.true_problems),
             len(report.false_positives), report.executions,
             report.machine_time_s / 3600))
    if report.audit is not None:
        audit = report.audit
        print("wiring audit: %d parameters — %d WIRED, %d UNREAD, "
              "%d READ_BUT_INERT (%d flagged; %d probe executions in a "
              "separate budget)"
              % (audit.params_total, audit.wired, audit.unread,
                 audit.inert, len(audit.flagged()),
                 audit.probe_executions))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "validate-obs":
        return _validate_obs(args)

    if args.command == "store":
        return _store_command(args)

    if args.command == "serve":
        from repro.core.service import run_service
        return run_service(args.listen, state_dir=args.serve_state,
                           store_path=args.store,
                           max_active=args.serve_max_active,
                           secret=args.serve_secret,
                           dist_secret=args.dist_secret)

    if args.command == "serve-token":
        from repro.core.service import service_token
        if not args.secret:
            print("error: no secret (pass --secret or set "
                  "$REPRO_SERVE_SECRET)", file=sys.stderr)
            return 2
        token = service_token(args.secret)
        if args.json:
            print(json.dumps({"token": token}))
        else:
            print(token)
        return 0

    if args.command == "list-apps":
        corpus = load_all_suites()
        rows = [[app, len(corpus.for_app(app)),
                 len(catalog.spec_for(app).registry)]
                for app in catalog.APP_NAMES]
        print(render_table(["App", "#unit tests", "#parameters"], rows))
        return 0

    if args.command == "list-params":
        spec = catalog.spec_for(args.app)
        unsafe = set(spec.expected_unsafe)
        rows = []
        for param in spec.registry:
            if args.unsafe_only and param.name not in unsafe:
                continue
            rows.append([param.name, param.kind, repr(param.default),
                         "UNSAFE (Table 3)" if param.name in unsafe else ""])
        print(render_table(["Parameter", "Kind", "Default", ""], rows))
        return 0

    if args.command == "corpus":
        corpus = load_all_suites()
        rows = [[t.name,
                 "flaky" if t.flaky else "",
                 "" if t.realistic else "unrealistic",
                 t.observability if t.observability != "public" else ""]
                for t in corpus.for_app(args.app)]
        print(render_table(["Unit test", "", "", ""], rows))
        return 0

    if args.command == "why":
        definition = None
        for app in catalog.APP_NAMES:
            definition = catalog.spec_for(app).registry.maybe_get(args.param)
            if definition is not None:
                break
        if definition is None:
            print("unknown parameter %r" % args.param, file=sys.stderr)
            return 1
        print("parameter : %s" % definition.name)
        print("section   : %s" % catalog.section_for_param(definition.name))
        print("kind      : %s   default: %r" % (definition.kind,
                                                definition.default))
        if definition.description:
            print("about     : %s" % definition.description)
        why_text = catalog.TABLE3_WHY.get(definition.name)
        if why_text is not None:
            print("TABLE 3   : heterogeneous-UNSAFE — %s" % why_text)
        else:
            print("table 3   : not listed (no known heterogeneous hazard)")
        return 0

    if args.command == "audit":
        from repro.core.audit import audit_app
        started = time.time()
        stats = audit_app(args.app, params=args.params)
        print("wiring audit over %r finished in %.1fs: %d parameters — "
              "%d WIRED, %d UNREAD, %d READ_BUT_INERT"
              % (args.app, time.time() - started, stats.params_total,
                 stats.wired, stats.unread, stats.inert))
        print("probe economy: %d executions, %d memo hits, %d collapsed "
              "onto the baseline (%.1f modelled machine hours)\n"
              % (stats.probe_executions, stats.probe_cache_hits,
                 stats.probes_collapsed, stats.machine_time_s / 3600))
        shown = stats.findings if args.all else stats.flagged()
        rows = [[f.param,
                 f.verdict + (" (exempt)" if f.exempt else ""),
                 len(f.read_sites), f.detail] for f in shown]
        if rows:
            print(render_table(["Parameter", "Verdict", "Read sites",
                                "Detail"], rows))
        else:
            print("every audited parameter is wired")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(stats.to_dict(), handle, indent=2)
            print("\nwrote %s" % args.json)
        return 0

    if args.command == "worker":
        from repro.core.distrib import run_worker
        worker_config = CampaignConfig(
            workers=args.workers,
            parallel_backend=args.parallel_backend,
            supervise=args.supervise,
            worker_redelivery=args.worker_redelivery,
            crash_loop_threshold=args.crash_loop_threshold,
            profile_deadline_s=args.profile_deadline,
            worker_rlimit_cpu_s=args.worker_rlimit_cpu,
            worker_rlimit_mem_mb=args.worker_rlimit_mem,
            store_path=args.store,
            dist_secret=args.dist_secret)
        return run_worker(args.connect, worker_config=worker_config,
                          name=args.name,
                          net_fault_plan=_net_fault_plan(args),
                          max_reconnects=args.reconnect_attempts,
                          log=sys.stderr)

    if args.command == "campaign":
        if args.incremental and not args.store:
            print("error: --incremental requires --store (the plan is a "
                  "diff against stored profile records)", file=sys.stderr)
            return 2
        spec = catalog.spec_for(args.app)
        config = _config(args)
        started = time.time()
        from repro.core.store import StoreError
        try:
            report = Campaign(args.app, spec.registry,
                              dependency_rules=spec.dependency_rules,
                              config=config).run()
        except (CheckpointError, StoreError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print("campaign over %r finished in %.1fs\n"
              % (args.app, time.time() - started))
        _print_app_report(report)
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(app_report_to_dict(report), handle, indent=2)
            print("\nwrote %s" % args.json)
        if args.markdown:
            from repro.core.reportmd import app_report_markdown
            with open(args.markdown, "w") as handle:
                handle.write(app_report_markdown(report))
            print("wrote %s" % args.markdown)
        _write_trace(args, config)
        _write_observability(args, [report])
        if args.compare:
            from repro.core.baseline import compare_to_baseline, load_baseline
            diff = compare_to_baseline(report, load_baseline(args.compare))
            print("\n" + diff.render())
            if diff.has_regressions:
                return 1
        return 0

    if args.command == "evaluate":
        if args.compare:
            print("--compare works with per-application baselines; use "
                  "`repro campaign <app> --compare ...`", file=sys.stderr)
            return 2
        if args.incremental and not args.store:
            print("error: --incremental requires --store (the plan is a "
                  "diff against stored profile records)", file=sys.stderr)
            return 2
        config = _config(args)
        started = time.time()
        from repro.core.store import StoreError
        try:
            report = run_full_campaign(config)
        except (CheckpointError, StoreError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        print("full evaluation finished in %.1fs\n" % (time.time() - started))
        print(render_unsafe_params(report))
        print()
        print(render_stage_counts(report.apps))
        print()
        print(render_summary(report))
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(campaign_report_to_dict(report), handle, indent=2)
            print("\nwrote %s" % args.json)
        if args.markdown:
            from repro.core.reportmd import campaign_report_markdown
            with open(args.markdown, "w") as handle:
                handle.write(campaign_report_markdown(report))
            print("wrote %s" % args.markdown)
        _write_trace(args, config)
        _write_observability(args, report.apps)
        return 0

    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
