"""TestGenerator: which tests to run, with which heterogeneous values (§4).

Responsibilities, in the paper's order:

* **Test parameters independently** — each test instance varies one
  parameter (or, with pooled testing, one *pool* of parameters, each still
  independent of the others); dependency rules let a developer pin
  companion parameters (e.g. set the https address when testing the https
  policy).
* **Select parameter values** — via :meth:`ParamDef.candidate_values`.
* **Select representative value assignments** — nodes are grouped by
  type; for each group and value pair we emit the cross-type strategy
  (group gets v1, everyone else v2, and the swap) and, for groups with at
  least two nodes, the round-robin-within-group strategy (§4).
* **Analytic instance counting** — the "Original" row of Table 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple)

import repro.perf as perf
from repro.common.params import ParamDef, ParamRegistry
from repro.core.confagent import NO_OVERRIDE, UNIT_TEST
from repro.core.registry import UnitTest

#: assignment strategies from §4
CROSS = "cross"              # group -> v1, all others -> v2
CROSS_SWAPPED = "cross-swapped"
ROUND_ROBIN = "round-robin"  # alternate v1/v2 within group, others -> v2
ROUND_ROBIN_SWAPPED = "round-robin-swapped"

ALL_STRATEGIES = (CROSS, CROSS_SWAPPED, ROUND_ROBIN, ROUND_ROBIN_SWAPPED)


@dataclass(frozen=True)
class DependencyRule:
    """When testing ``param`` with ``value``, also set ``companion=companion_value``
    on every node (§4: e.g. set the https address when the policy is https)."""

    param: str
    value: Any
    companion: str
    companion_value: Any


@dataclass(frozen=True)
class ParamAssignment:
    """Heterogeneous values of one parameter, plus pinned companions.

    ``group`` nodes get values from ``group_values`` (length 1 for the
    cross strategies, length 2 for round-robin, indexed by node index
    parity); every other entity — other node types *and the unit test,
    which ZebraConf treats as a client node* — gets ``other_value``.
    """

    param: str
    group: str
    group_values: Tuple[Any, ...]
    other_value: Any
    pinned: Tuple[Tuple[str, Any], ...] = ()

    def value_for(self, node_type: str, node_index: int, name: str) -> Any:
        if perf.FAST_PATH:
            # Lazily built first-wins pinned map, cached on the instance
            # (via object.__setattr__ — the dataclass is frozen, and the
            # cache must survive copies/pickles that skip __post_init__).
            pinned_map = self.__dict__.get("_pinned_map")
            if pinned_map is None:
                pinned_map = {}
                for pinned_name, pinned_value in self.pinned:
                    if pinned_name not in pinned_map:
                        pinned_map[pinned_name] = pinned_value
                object.__setattr__(self, "_pinned_map", pinned_map)
            if name in pinned_map:
                return pinned_map[name]
        else:
            for pinned_name, pinned_value in self.pinned:
                if name == pinned_name:
                    return pinned_value
        if name != self.param:
            return NO_OVERRIDE
        if node_type == self.group:
            return self.group_values[node_index % len(self.group_values)]
        return self.other_value

    def canonical(self) -> Tuple[Any, ...]:
        """Stable content form: equal canonicals inject identically.

        Pinned companions keep first-wins semantics (``value_for`` scans
        in order) but are sorted afterwards so incidental ordering does
        not split cache slots or seeds.
        """
        pinned = _first_wins_pairs(self.pinned)
        return ("param", self.param, self.group, tuple(self.group_values),
                self.other_value,
                tuple(sorted(pinned, key=lambda kv: (kv[0], repr(kv[1])))))

    def distinct_values(self) -> Tuple[Any, ...]:
        out: List[Any] = []
        for value in self.group_values + (self.other_value,):
            if value not in out:
                out.append(value)
        return tuple(out)


@dataclass(frozen=True)
class HeteroAssignment:
    """A (possibly pooled) set of per-parameter heterogeneous assignments.

    This is what ConfAgent consults on every intercepted ``get``.
    """

    assignments: Tuple[ParamAssignment, ...]

    def __post_init__(self) -> None:
        params = [a.param for a in self.assignments]
        if len(set(params)) != len(params):
            raise ValueError("duplicate parameter in pooled assignment")

    @property
    def params(self) -> Tuple[str, ...]:
        return tuple(a.param for a in self.assignments)

    def value_for(self, node_type: str, node_index: int, name: str) -> Any:
        if perf.FAST_PATH:
            # Hot path of every intercepted config get: a pooled scan over
            # all members is O(pool size) per get, but only assignments
            # that *mention* ``name`` (as the tested param or a pinned
            # companion) can ever answer — index them once, first-wins
            # order preserved.  Unknown names exit in one dict probe.
            by_name = self.__dict__.get("_by_name")
            if by_name is None:
                by_name = {}
                for assignment in self.assignments:
                    names = [p for p, _ in assignment.pinned]
                    names.append(assignment.param)
                    for mentioned in names:
                        hits = by_name.get(mentioned)
                        if hits is None:
                            by_name[mentioned] = [assignment]
                        elif assignment is not hits[-1]:
                            hits.append(assignment)
                object.__setattr__(self, "_by_name", by_name)
            hits = by_name.get(name)
            if hits is None:
                return NO_OVERRIDE
            for assignment in hits:
                value = assignment.value_for(node_type, node_index, name)
                if value is not NO_OVERRIDE:
                    return value
            return NO_OVERRIDE
        for assignment in self.assignments:
            value = assignment.value_for(node_type, node_index, name)
            if value is not NO_OVERRIDE:
                return value
        return NO_OVERRIDE

    def canonical(self) -> Tuple[Any, ...]:
        """Stable content form; pooled order is irrelevant to injection
        (parameters are unique), so members are sorted by parameter."""
        return ("hetero", tuple(sorted((a.canonical() for a in self.assignments),
                                       key=lambda c: c[1])))

    def sides(self) -> int:
        """Number of homogeneous variants implied (max distinct values)."""
        return max(len(a.distinct_values()) for a in self.assignments)

    def homo_variant(self, side: int) -> "HomoAssignment":
        """Homogeneous configuration i of Definition 3.1: every entity gets
        parameter p's i-th distinct value (clamped per parameter)."""
        values = {}
        pinned: Dict[str, Any] = {}
        for assignment in self.assignments:
            distinct = assignment.distinct_values()
            values[assignment.param] = distinct[min(side, len(distinct) - 1)]
            pinned.update(dict(assignment.pinned))
        return HomoAssignment(values=tuple(values.items()),
                              pinned=tuple(pinned.items()))

    def subset(self, params: Sequence[str]) -> "HeteroAssignment":
        keep = set(params)
        return HeteroAssignment(tuple(a for a in self.assignments
                                      if a.param in keep))


@dataclass(frozen=True)
class HomoAssignment:
    """Every entity sees the same value for every parameter."""

    values: Tuple[Tuple[str, Any], ...]
    pinned: Tuple[Tuple[str, Any], ...] = ()

    def value_for(self, node_type: str, node_index: int, name: str) -> Any:
        if perf.FAST_PATH:
            merged = self.__dict__.get("_merged")
            if merged is None:
                merged = {}
                for param, value in self.pinned + self.values:
                    if param not in merged:
                        merged[param] = value
                object.__setattr__(self, "_merged", merged)
            return merged.get(name, NO_OVERRIDE)
        for param, value in self.pinned:
            if name == param:
                return value
        for param, value in self.values:
            if name == param:
                return value
        return NO_OVERRIDE

    def canonical(self) -> Tuple[Any, ...]:
        """Stable content form (see also
        :func:`repro.core.execcache.canonical_assignment`, which folds
        default-value injections onto the original configuration)."""
        effective = _first_wins_pairs(self.pinned + self.values)
        return ("homo", tuple(sorted(effective,
                                     key=lambda kv: (kv[0], repr(kv[1])))))


def _first_wins_pairs(pairs: Tuple[Tuple[str, Any], ...]
                      ) -> Tuple[Tuple[str, Any], ...]:
    """Drop later duplicates, matching ``value_for``'s scan order."""
    seen: Set[str] = set()
    out: List[Tuple[str, Any]] = []
    for name, value in pairs:
        if name not in seen:
            seen.add(name)
            out.append((name, value))
    return tuple(out)


@dataclass(frozen=True)
class TestInstance:
    """One runnable tuple: unit test + target group + strategy + params."""

    test: UnitTest
    group: str
    strategy: str
    assignment: HeteroAssignment

    @property
    def params(self) -> Tuple[str, ...]:
        return self.assignment.params

    def describe(self) -> str:
        return "%s [%s/%s] %s" % (self.test.full_name, self.group,
                                  self.strategy, ",".join(self.params))


class TestGenerator:
    """Builds test instances for one application."""

    def __init__(self, registry: ParamRegistry,
                 dependency_rules: Iterable[DependencyRule] = (),
                 max_value_pairs: int = 3) -> None:
        self.registry = registry
        self.dependency_rules = list(dependency_rules)
        #: cap on value pairs per parameter, keeping instance counts sane
        #: for parameters with many candidate values.
        self.max_value_pairs = max_value_pairs

    # ------------------------------------------------------------------
    # value selection
    # ------------------------------------------------------------------
    def value_pairs(self, param: ParamDef) -> List[Tuple[Any, Any]]:
        """Unordered pairs of candidate values, default-first."""
        candidates = param.candidate_values()
        pairs = [pair for pair in itertools.combinations(candidates, 2)
                 if pair[0] != pair[1]]
        return pairs[:self.max_value_pairs]

    def pinned_for(self, param: str, value: Any) -> Tuple[Tuple[str, Any], ...]:
        return tuple((rule.companion, rule.companion_value)
                     for rule in self.dependency_rules
                     if rule.param == param and rule.value == value)

    # ------------------------------------------------------------------
    # assignment strategies (§4 "select representative value assignment")
    # ------------------------------------------------------------------
    def strategies_for_group(self, group_size: int) -> List[str]:
        strategies = [CROSS, CROSS_SWAPPED]
        if group_size >= 2:
            strategies += [ROUND_ROBIN, ROUND_ROBIN_SWAPPED]
        return strategies

    def assignment(self, param: ParamDef, group: str, strategy: str,
                   pair: Tuple[Any, Any]) -> ParamAssignment:
        v1, v2 = pair
        if strategy == CROSS:
            group_values: Tuple[Any, ...] = (v1,)
            other = v2
        elif strategy == CROSS_SWAPPED:
            group_values, other = (v2,), v1
        elif strategy == ROUND_ROBIN:
            group_values, other = (v1, v2), v2
        elif strategy == ROUND_ROBIN_SWAPPED:
            group_values, other = (v2, v1), v1
        else:
            raise ValueError("unknown strategy %r" % strategy)
        # The dominant heterogeneous value is what the group sees first;
        # pin companions for both sides so either side is self-consistent.
        pinned = self.pinned_for(param.name, v1) + self.pinned_for(param.name, v2)
        return ParamAssignment(param=param.name, group=group,
                               group_values=group_values, other_value=other,
                               pinned=pinned)

    # ------------------------------------------------------------------
    # instance enumeration
    # ------------------------------------------------------------------
    def instances_for_test(self, test: UnitTest, groups: Mapping[str, int],
                           params_by_group: Mapping[str, Set[str]]) -> List[TestInstance]:
        """All single-parameter instances for a pre-run-profiled test.

        ``groups`` maps started node types to their counts; ``params_by_group``
        maps each node type to the parameters it actually read during the
        pre-run (§4 "pre-run unit tests" rule: only test parameter p on
        node type A if A used p).
        """
        instances: List[TestInstance] = []
        for group, count in sorted(groups.items()):
            used = params_by_group.get(group, set())
            for name in sorted(used):
                param = self.registry.maybe_get(name)
                if param is None:
                    continue
                for pair in self.value_pairs(param):
                    for strategy in self.strategies_for_group(count):
                        assignment = HeteroAssignment(
                            (self.assignment(param, group, strategy, pair),))
                        instances.append(TestInstance(
                            test=test, group=group, strategy=strategy,
                            assignment=assignment))
        return instances

    # ------------------------------------------------------------------
    # analytic counting (Table 5, "Original" row)
    # ------------------------------------------------------------------
    def count_original_instances(self, num_tests: int,
                                 node_types: Sequence[str],
                                 assumed_group_size: int = 2) -> int:
        """Instances a user would run with our §4 strategies but *without*
        pre-running (Table 5 row 1): every test is assumed to exercise
        every node type of the application on every parameter."""
        per_param = sum(len(self.value_pairs(p)) for p in self.registry)
        strategies = len(self.strategies_for_group(assumed_group_size))
        return num_tests * per_param * len(node_types) * strategies

    def enumerate_original_instances(self, test_names: Sequence[str],
                                     node_types: Sequence[str],
                                     assumed_group_size: int = 2
                                     ) -> "Iterator[Tuple[str, str, str, str, Tuple[Any, Any]]]":
        """Materialise the Table-5 "Original" universe lazily.

        Yields ``(test, node_type, strategy, param, value_pair)`` tuples —
        the combinations a user without pre-run knowledge would enqueue.
        Useful for sampling and for validating
        :meth:`count_original_instances` (they agree by construction, and
        a test pins that).
        """
        strategies = self.strategies_for_group(assumed_group_size)
        for test_name in test_names:
            for node_type in node_types:
                for param in self.registry:
                    for pair in self.value_pairs(param):
                        for strategy in strategies:
                            yield (test_name, node_type, strategy,
                                   param.name, pair)
