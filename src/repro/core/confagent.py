"""ConfAgent: map configuration objects to nodes and inject values (§6).

ConfAgent is the bottom layer of ZebraConf.  Its job during a unit test is
to answer, for every ``Configuration.get(name)`` call, *which node is
asking* — so that different nodes can be given different values for the
same parameter even though the unit test runs every node in one process
and freely shares configuration objects between them.

The implementation follows §6.3 of the paper literally.  It maintains:

* ``node_table``      — per-node records (type, index, owned conf ids,
  parent conf id);
* ``unit_test_confs`` — conf ids owned by the unit test itself (which is
  treated as a "client" node);
* ``uncertain_confs`` — conf ids the rules could not map anywhere;
* ``parent_to_child`` — clone relationships;
* ``thread_context``  — which node's initialization function is currently
  executing on which thread (a stack per thread, so nested node inits are
  handled).

and applies the paper's mapping rules:

* **Rule 1.1** — a conf created while a node's init function is running on
  the same thread belongs to that node.
* **Rule 1.2** — a conf created before any node has initialized belongs to
  the unit test.
* **Rule 2**   — a conf reference replaced by a clone inside an init
  function: the original belongs to the unit test, the clone to the node.
* **Rule 3**   — a cloned conf belongs to the same entity as its source.

A conf that no rule can place lands in ``uncertain_confs``; during the
pre-run, parameters read through uncertain confs are recorded so that
TestGenerator can exclude the (unit test, parameter) combinations that
would otherwise produce false positives (§6.2, Observation 3).

Agents are scoped with a :mod:`contextvars` context variable so that
parallel TestRunner workers (threads) each see their own session; when no
session is active, a shared inert :class:`NullAgent` makes the hook points
in :class:`repro.common.configuration.Configuration` free.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import repro.perf as perf

#: Pseudo node type representing the unit test itself (§6.1: "the unit
#: test itself is treated as a 'client' node in ZebraConf").
UNIT_TEST = "__unit_test__"

#: Owner marker for configuration objects no rule could place.
UNCERTAIN = "__uncertain__"

#: Sentinel returned by ``intercept_get`` when no value is injected.
NO_OVERRIDE = object()

#: Distinct miss marker for the per-(conf, name) get memo — NO_OVERRIDE
#: itself is a legitimate memoised value.
_MEMO_MISS = object()


@dataclass
class NodeRecord:
    """One row of the paper's ``nodeTable``."""

    node_id: int
    node_type: str
    node_index: int
    conf_ids: Set[int] = field(default_factory=set)
    parent_conf_id: Optional[int] = None


class NullAgent:
    """Inert agent used outside ZebraConf sessions.

    Behaviour matches the *unmodified* application: no tracking, no value
    injection, and ``ref_to_clone_conf`` keeps the original reference
    (i.e. nodes share the unit test's conf object, as the raw code in
    Fig. 2b line 16 would).
    """

    active = False

    def start_init(self, node: Any, node_type: str) -> None:
        pass

    def stop_init(self) -> None:
        pass

    def new_conf(self, conf: Any) -> None:
        pass

    def clone_conf(self, orig: Any, new: Any) -> None:
        pass

    def ref_to_clone_conf(self, conf: Any) -> Any:
        return conf

    def intercept_get(self, conf: Any, name: str) -> Any:
        return NO_OVERRIDE

    def intercept_set(self, conf: Any, name: str, value: Any) -> None:
        pass


NULL_AGENT = NullAgent()

_current_agent: ContextVar[Any] = ContextVar("zebraconf_agent", default=NULL_AGENT)


def current_agent() -> Any:
    """The agent for the calling context (a :class:`NullAgent` if none)."""
    return _current_agent.get()


#: Bound method for hot paths (``Configuration.get`` reads the agent on
#: every configuration lookup): calling the contextvar's ``get`` directly
#: skips one Python frame per call.  Semantically identical to
#: :func:`current_agent`; gated behind ``perf.FAST_PATH`` at call sites
#: so the A/B benches can measure and verify the equivalence.
agent_getter = _current_agent.get


class ConfAgent:
    """One ZebraConf session: tracks conf ownership for a single test run.

    Parameters
    ----------
    assignment:
        A :class:`repro.core.testgen.HeteroAssignment` (or ``None``) giving
        injected values per ``(node_type, node_index, parameter)``.  During
        a pre-run no assignment is given and the agent only records.
    record_usage:
        When true (the pre-run), every ``get`` is recorded against the
        owner of the conf object it went through.
    """

    active = True

    #: Whether intercept_get may memoise its decision per (conf, name).
    #: Subclasses with call-dependent resolution must disable this.
    _memo_gets = True

    def __init__(self, assignment: Optional[Any] = None,
                 record_usage: bool = False) -> None:
        self.assignment = assignment
        self.record_usage = record_usage

        self.node_table: Dict[int, NodeRecord] = {}
        self.unit_test_confs: Set[int] = set()
        self.uncertain_confs: Set[int] = set()
        self.parent_to_child: Dict[int, int] = {}  # child conf id -> parent conf id
        self.thread_context: Dict[int, List[int]] = {}  # thread id -> node-id stack

        #: node_type -> number of nodes of that type started (node indexes).
        self.node_counts: Dict[str, int] = {}
        #: owner key (node type, UNIT_TEST, or UNCERTAIN) -> params read.
        self.usage: Dict[str, Set[str]] = {}
        #: read-site attribution: (node_type, node_index) -> {param -> get
        #: count}.  Only populated while recording usage; the wiring audit
        #: (repro.core.audit) inverts it into per-parameter read sites and
        #: folds the counts into its behavioural fingerprints.
        self.read_sites: Dict[Tuple[str, int], Dict[str, int]] = {}
        #: params read through uncertain conf objects.
        self.uncertain_params: Set[str] = set()
        #: params the test execution explicitly ``set`` on any conf.  An
        #: injected value shadows explicit sets in ``Configuration.get``,
        #: so the execution cache's homogeneous default-value collapse
        #: must exempt these (see repro.core.execcache).
        self.set_params: Set[str] = set()
        #: count of get() calls answered with an injected value.
        self.injected_reads = 0
        #: Bumped on every conf-ownership mutation; external memos (e.g.
        #: the IPC cross-check) fold it into their keys so any remapping
        #: conservatively invalidates them.
        self.ownership_epoch = 0

        # Strong references so Python ids stay unique for the session.
        self._pinned: List[Any] = []
        self._in_ref_clone = False
        self._token = None
        self._conf_factory: Optional[Any] = None
        #: conf id -> (node_type, node_index) memo for _resolve, the
        #: hottest lookup in the system (once per intercepted get).  Every
        #: ownership mutation below pops the affected ids.
        self._resolve_cache: Dict[int, Tuple[str, int]] = {}
        #: conf id -> {param name -> injected value or NO_OVERRIDE}: the
        #: full injection decision per (conf, name).  Exact because the
        #: assignment is immutable for the agent's lifetime and the
        #: decision otherwise depends only on the conf's owner — every
        #: ownership mutation invalidates through _forget_conf.  Not used
        #: while recording usage (pre-run) nor by ThreadOwnershipAgent,
        #: whose resolution is thread-dependent.
        self._get_memo: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # session scoping
    # ------------------------------------------------------------------
    def __enter__(self) -> "ConfAgent":
        self._token = _current_agent.set(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _current_agent.reset(self._token)
        self._token = None

    # ------------------------------------------------------------------
    # node lifecycle annotations (Fig. 2b lines 14/21)
    # ------------------------------------------------------------------
    def start_init(self, node: Any, node_type: str) -> None:
        node_id = id(node)
        if node_id not in self.node_table:
            index = self.node_counts.get(node_type, 0)
            self.node_counts[node_type] = index + 1
            self.node_table[node_id] = NodeRecord(node_id, node_type, index)
            self._pinned.append(node)
        stack = self.thread_context.setdefault(threading.get_ident(), [])
        stack.append(node_id)

    def stop_init(self) -> None:
        stack = self.thread_context.get(threading.get_ident())
        if stack:
            stack.pop()

    def _initializing_node(self) -> Optional[NodeRecord]:
        stack = self.thread_context.get(threading.get_ident())
        if stack:
            return self.node_table[stack[-1]]
        return None

    # ------------------------------------------------------------------
    # configuration-object tracking (Fig. 2a lines 3/9, Fig. 2b line 17)
    # ------------------------------------------------------------------
    def new_conf(self, conf: Any) -> None:
        if self._in_ref_clone:
            return  # the clone made by ref_to_clone_conf is registered there
        # A brand-new conf may reuse the id of a dead, never-pinned conf
        # (one created outside the agent scope) that already has a memo.
        self._forget_conf(id(conf))
        self._pinned.append(conf)
        record = self._initializing_node()
        if record is not None:  # Rule 1.1
            record.conf_ids.add(id(conf))
        elif not self.node_table:  # Rule 1.2
            self.unit_test_confs.add(id(conf))
        else:
            self.uncertain_confs.add(id(conf))

    def clone_conf(self, orig: Any, new: Any) -> None:
        if self._in_ref_clone:
            return
        self._pinned.append(new)
        self._forget_conf(id(orig))
        self._forget_conf(id(new))
        self.parent_to_child[id(new)] = id(orig)
        # Rule 3: the clone belongs wherever the source belongs (or vice
        # versa if only the clone is known, which cannot happen for a
        # brand-new object but keeps the rule symmetric as in the paper).
        owner = self._owner_of(id(orig))
        if owner is None:
            owner = self._owner_of(id(new))
        if owner is None:
            self.uncertain_confs.add(id(orig))
            self.uncertain_confs.add(id(new))
        else:
            self._assign(id(new), owner)
            self._assign(id(orig), owner)

    def ref_to_clone_conf(self, conf: Any) -> Any:
        record = self._initializing_node()
        if record is None:
            # Called outside any node init (e.g. application main() path in
            # a real deployment); keep the reference semantics.
            return conf
        self._in_ref_clone = True
        try:
            clone = conf.clone()
        finally:
            self._in_ref_clone = False
        self._pinned.append(clone)
        # Rule 2: clone -> node; original -> unit test.
        self._forget_conf(id(clone))
        record.conf_ids.add(id(clone))
        if record.parent_conf_id is None:
            record.parent_conf_id = id(conf)
            self._pinned.append(conf)
        self._move_to_unit_test(id(conf))
        self.parent_to_child[id(clone)] = id(conf)
        return clone

    def _move_to_unit_test(self, conf_id: int) -> None:
        """Assign ``conf_id`` and its clone ancestors to the unit test."""
        seen = set()
        while conf_id is not None and conf_id not in seen:
            seen.add(conf_id)
            self._forget_conf(conf_id)
            self.uncertain_confs.discard(conf_id)
            if not self._owned_by_node(conf_id):
                self.unit_test_confs.add(conf_id)
            conf_id = self.parent_to_child.get(conf_id)

    def _owned_by_node(self, conf_id: int) -> bool:
        return any(conf_id in rec.conf_ids for rec in self.node_table.values())

    def _owner_of(self, conf_id: int) -> Optional[str]:
        """Owner key for a conf id: a node-table node id (as str marker),
        UNIT_TEST, or None if unknown."""
        for rec in self.node_table.values():
            if conf_id in rec.conf_ids:
                return "node:%d" % rec.node_id
        if conf_id in self.unit_test_confs:
            return UNIT_TEST
        return None

    def _assign(self, conf_id: int, owner: str) -> None:
        self._forget_conf(conf_id)
        self.uncertain_confs.discard(conf_id)
        if owner == UNIT_TEST:
            self.unit_test_confs.add(conf_id)
        elif owner.startswith("node:"):
            self.node_table[int(owner[5:])].conf_ids.add(conf_id)

    # ------------------------------------------------------------------
    # get/set interception (Fig. 2a lines 17/22)
    # ------------------------------------------------------------------
    def _resolve(self, conf: Any) -> Tuple[str, int]:
        """(node_type, node_index) owning ``conf``; UNIT_TEST/UNCERTAIN
        pseudo-entities use index 0."""
        conf_id = id(conf)
        if perf.FAST_PATH:
            cached = self._resolve_cache.get(conf_id)
            if cached is not None:
                return cached
        for rec in self.node_table.values():
            if conf_id in rec.conf_ids:
                result = (rec.node_type, rec.node_index)
                break
        else:
            if conf_id in self.unit_test_confs:
                result = (UNIT_TEST, 0)
            else:
                result = (UNCERTAIN, 0)
        if perf.FAST_PATH:
            self._resolve_cache[conf_id] = result
        return result

    def _forget_conf(self, conf_id: int) -> None:
        """Drop every per-conf memo; called on any ownership mutation."""
        self.ownership_epoch += 1
        self._resolve_cache.pop(conf_id, None)
        self._get_memo.pop(conf_id, None)

    def intercept_get(self, conf: Any, name: str) -> Any:
        memoize = (perf.FAST_PATH and self._memo_gets
                   and not self.record_usage)
        if memoize:
            memo = self._get_memo.get(id(conf))
            if memo is not None:
                value = memo.get(name, _MEMO_MISS)
                if value is not _MEMO_MISS:
                    return value
        node_type, node_index = self._resolve(conf)
        if self.record_usage:
            self.usage.setdefault(node_type, set()).add(name)
            site = self.read_sites.setdefault((node_type, node_index), {})
            site[name] = site.get(name, 0) + 1
            if node_type == UNCERTAIN:
                self.uncertain_params.add(name)
        result = NO_OVERRIDE
        if self.assignment is not None and node_type != UNCERTAIN:
            value = self.assignment.value_for(node_type, node_index, name)
            if value is not NO_OVERRIDE:
                self.injected_reads += 1
                result = value
        if memoize:
            self._get_memo.setdefault(id(conf), {})[name] = result
        return result

    def intercept_set(self, conf: Any, name: str, value: Any) -> None:
        """Write-through to the parent conf (§6.3, interceptSet logic).

        When the unit test handed a conf to a node and ZebraConf replaced
        the reference with a clone, values the node fills in must still be
        visible to the unit test through its original object.
        """
        self.set_params.add(name)
        conf_id = id(conf)
        for rec in self.node_table.values():
            if conf_id in rec.conf_ids and rec.parent_conf_id is not None:
                parent = self._find_pinned_conf(rec.parent_conf_id)
                if parent is not None and id(parent) != conf_id:
                    parent.raw_set(name, value)
                return

    def _find_pinned_conf(self, conf_id: int) -> Optional[Any]:
        for obj in self._pinned:
            if id(obj) == conf_id:
                return obj
        return None

    # ------------------------------------------------------------------
    # pre-run results
    # ------------------------------------------------------------------
    def started_node_groups(self) -> Dict[str, int]:
        """node_type -> number of started nodes (excludes the unit test)."""
        return dict(self.node_counts)

    def params_used_by(self, node_type: str) -> Set[str]:
        return set(self.usage.get(node_type, set()))

    def has_uncertain_confs(self) -> bool:
        return bool(self.uncertain_confs)


class ThreadOwnershipAgent(ConfAgent):
    """The paper's *failed third attempt* (§6.1): attribute every
    ``get`` to the node whose init... no — to the node that owns the
    *calling thread*.

    We keep it for the ablation benchmark: on unit tests that call node
    internals directly from the test thread (ubiquitous, per the paper),
    this agent misattributes reads to the unit test.  The ablation
    measures how often its answer differs from the rule-based agent's.
    """

    #: Resolution depends on the calling thread and every call counts a
    #: potential misattribution — per-(conf, name) memoisation would
    #: change both, so it stays off.
    _memo_gets = False

    def __init__(self, assignment: Optional[Any] = None,
                 record_usage: bool = False) -> None:
        super().__init__(assignment=assignment, record_usage=record_usage)
        #: thread id -> node id, set when a node's init runs on a thread
        #: and *never popped* (the thread is deemed owned by the node).
        self.thread_owner: Dict[int, int] = {}
        self.misattributions = 0

    def start_init(self, node: Any, node_type: str) -> None:
        super().start_init(node, node_type)
        self.thread_owner.setdefault(threading.get_ident(), id(node))

    def _resolve(self, conf: Any) -> Tuple[str, int]:
        rule_answer = super()._resolve(conf)
        owner_node = self.thread_owner.get(threading.get_ident())
        if owner_node is None:
            thread_answer: Tuple[str, int] = (UNIT_TEST, 0)
        else:
            rec = self.node_table[owner_node]
            thread_answer = (rec.node_type, rec.node_index)
        if thread_answer != rule_answer:
            self.misattributions += 1
        return thread_answer
