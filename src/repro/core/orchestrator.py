"""Campaign orchestration: pre-run -> generate -> pool -> run -> triage.

:class:`Campaign` drives ZebraConf end-to-end for one application, and
:func:`run_full_campaign` reproduces the paper's whole evaluation across
all target applications.  Unit tests are independent, so campaigns can
fan out across a thread pool (the paper used up to 100 machines; §4
"Test in parallel").
"""

from __future__ import annotations

import traceback
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.faults import FaultPlan
from repro.common.node import NODE_TYPES
from repro.common.params import ParamRegistry
from repro.common.simulation import kernel_stats_snapshot
from repro.core.confagent import UNIT_TEST
from repro.core.checkpoint import (CampaignCheckpoint, result_from_dict,
                                   result_to_dict)
from repro.core.costmodel import CostModel
from repro.core.execcache import ExecutionCache
from repro.core.observe import MetricsRegistry, Observation, ProgressReporter
from repro.core.plan import (PLAN_DECISIONS, PLAN_REUSE, SAMPLE_MODES,
                             CampaignPlan, build_plan, profile_key,
                             sample_cells)
from repro.core.pooling import FrequentFailureTracker, PooledTester, PoolStats
from repro.core.prerun import PreRunSummary, TestProfile, prerun_corpus
from repro.core.registry import CORPUS, Corpus, UnitTest
from repro.core.report import (AppReport, CampaignReport, CostCenter,
                               DistributionStats, HypothesisTestingStats,
                               StageCounts, SupervisionStats)
from repro.core.runner import (CONFIRMED_UNSAFE, DEFAULT_WATCHDOG_SIM_S,
                               FLAKY_DISMISSED, WORKER_CRASH, InstanceResult,
                               TestRunner)
from repro.core.stats import DEFAULT_ALPHA
from repro.core.testgen import DependencyRule, TestGenerator
from repro.core.triage import ParamVerdict, triage_report

#: ProfileOutcome.error_kind for an exception contained *in-process*
#: (the worker/thread survived; partial accounting was preserved).
HARNESS_ERROR = "harness-error"


class CampaignCancelled(BaseException):
    """Cooperative cancellation requested via CampaignConfig.cancel_event.

    A BaseException (like KeyboardInterrupt) so the graceful-degradation
    ``except Exception`` containment in the profile runners lets it
    propagate instead of folding it into a degraded outcome.  Profiles
    committed before the cancel are already journaled through the
    checkpoint layer, so a cancelled campaign resumes exactly like a
    crashed one.
    """

#: PoolStats field -> deterministic metric name.  Driven off the stats
#: object so the observability layer and the report always agree (the
#: reconciliation check in repro.core.observe depends on it).
_POOL_METRICS = {
    "pool_runs": "zc_pool_runs_total",
    "bisection_runs": "zc_bisection_runs_total",
    "singleton_instances": "zc_singleton_instances_total",
    "pools_cleared": "zc_pools_cleared_total",
    "params_cleared_in_pools": "zc_params_cleared_in_pools_total",
    "interference_events": "zc_interference_events_total",
    "blacklist_skips": "zc_blacklist_skips_total",
    "already_confirmed_skips": "zc_already_confirmed_skips_total",
    "pool_voids": "zc_pool_voids_total",
    "pool_infra_giveups": "zc_pool_infra_giveups_total",
    "exec_cache_hits": "zc_exec_cache_hits_total",
    "exec_cache_misses": "zc_exec_cache_misses_total",
    "exec_cache_bypasses": "zc_exec_cache_bypasses_total",
}

#: DistributionStats field -> volatile (run-scoped) metric name.
_DIST_METRICS = {
    "workers_joined": "zc_dist_workers_joined_total",
    "workers_lost": "zc_dist_workers_lost_total",
    "leases_granted": "zc_dist_leases_granted_total",
    "redeliveries": "zc_dist_redeliveries_total",
    "steals": "zc_dist_lease_steals_total",
    "duplicates_suppressed": "zc_dist_duplicate_outcomes_total",
    "heartbeat_expiries": "zc_dist_heartbeat_expiries_total",
    "lease_expiries": "zc_dist_lease_expiries_total",
    "quarantined": "zc_dist_quarantined_total",
    "auth_rejects": "zc_dist_auth_rejects_total",
    "remote_profiles": "zc_dist_remote_profiles_total",
    "local_profiles": "zc_dist_local_fallback_profiles_total",
}

#: SupervisionStats field -> volatile (run-scoped) metric name.
_SUPERVISION_METRICS = {
    "workers_spawned": "zc_runtime_workers_spawned_total",
    "crashes": "zc_runtime_worker_crashes_total",
    "respawns": "zc_runtime_respawns_total",
    "redeliveries": "zc_runtime_redeliveries_total",
    "deadline_kills": "zc_runtime_deadline_kills_total",
    "heartbeat_kills": "zc_runtime_heartbeat_kills_total",
    "recycles": "zc_runtime_worker_recycles_total",
    "quarantined": "zc_runtime_quarantined_total",
}


@dataclass
class CampaignConfig:
    """Tunables; defaults reproduce the paper's settings."""

    alpha: float = DEFAULT_ALPHA
    max_trials: int = 40
    blacklist_threshold: int = 3
    max_value_pairs: int = 3
    #: None = pool size equals the number of parameters (paper's setting).
    max_pool_size: Optional[int] = None
    #: modelled seconds of machine time per unit-test execution.
    run_cost_s: float = 60.0
    workers: int = 1
    #: the paper's one-line Hadoop fix for the shared IPC component; off by
    #: default so campaigns reproduce the IPC false positives first.
    disable_ipc_sharing: bool = False
    #: restrict the campaign to these parameters (None = all).  Useful to
    #: vet a specific reconfiguration plan before rolling it out.
    only_params: Optional[frozenset] = None
    #: optional structured event log (see repro.core.tracelog).
    trace: Optional[Any] = None
    #: deterministic chaos schedule applied to every execution (None or an
    #: all-zero plan = clean runs).  See repro.common.faults.
    fault_plan: Optional[FaultPlan] = None
    #: JSONL journal for checkpoint/resume (None = no checkpointing).
    checkpoint_path: Optional[str] = None
    #: bounded retries for infrastructure errors per execution.
    infra_retries: int = 2
    #: simulated-seconds budget per execution before TEST_TIMEOUT.
    watchdog_sim_s: float = DEFAULT_WATCHDOG_SIM_S
    #: memoize executions in a content-addressed cache (see
    #: repro.core.execcache); verdicts are byte-identical either way.
    exec_cache: bool = False
    #: directory of the durable cross-campaign result store (see
    #: repro.core.store).  Implies the execution cache: lookups fall
    #: through to persisted entries and fresh outcomes are appended
    #: durably, so a second campaign against the same store starts warm.
    #: Findings are byte-identical warm or cold.
    store_path: Optional[str] = None
    #: deterministic disk chaos applied to the store's own writes
    #: (repro.common.faults.DiskFaultPlan; None = clean disk).  Exercises
    #: the store's salvage/degradation paths, never the simulated app.
    disk_fault_plan: Optional[Any] = None
    #: plan the campaign against the store before running (requires
    #: store_path): profiles whose parameter substrate and settings are
    #: unchanged since a stored run are folded back with zero fresh
    #: executions; the rest rerun.  Findings are byte-identical to a
    #: full cold campaign (see repro.core.plan / docs/PLANNING.md).
    incremental: bool = False
    #: configuration-sampling strategy for test generation (None =
    #: exhaustive): "pairwise", "random-k" or "dissimilarity" keep a
    #: deterministic, seeded subset of hetero cells per profile, trading
    #: findings recall for executions (bench: BENCH_sampling.json).
    sample: Optional[str] = None
    #: sampling budget per (test, group) for random-k/dissimilarity
    #: (None = the pairwise budget: one cell per value-pair layer).
    sample_k: Optional[int] = None
    #: seed for the sampling draw (part of the checkpoint header, so a
    #: resume cannot silently sample a different subset).
    sample_seed: int = 0
    #: shared secret for the distributed transport's HMAC challenge-
    #: response handshake (None = unauthenticated).  Deliberately NOT
    #: part of checkpoint_settings(): secrets must never be journaled.
    dist_secret: Optional[str] = None
    #: run the registry wiring audit (repro.core.audit) after the main
    #: loop and attach its AuditStats to the report.  Audit probes are
    #: accounted in their own zc_audit_* budget, so findings and
    #: execution accounting are unchanged.  Deliberately NOT part of
    #: checkpoint_settings(): a resumed campaign may toggle it freely
    #: because the audit never touches the journal.
    audit: bool = False
    #: how ``workers > 1`` fans out profiles: "thread" (GIL-bound, cheap)
    #: or "process" (fork-based, true parallelism over the pure-Python
    #: simulation).  Ignored at workers == 1.
    parallel_backend: str = "thread"
    #: dispatch order for ``workers > 1``: "lpt" hands profiles to the
    #: pool longest-predicted-first (see repro.core.costmodel), "catalog"
    #: keeps corpus order.  Results are folded in catalog order either
    #: way, so findings and deterministic metrics are identical; only
    #: wall-clock makespan changes.  Ignored at workers == 1.
    schedule: str = "lpt"
    #: run the process backend under the supervisor (repro.core.supervise):
    #: crashed/hung workers are killed, reaped and respawned instead of
    #: aborting the campaign.  ``False`` restores the bare executor.
    supervise: bool = True
    #: wall-clock seconds a worker may spend on one profile before the
    #: supervisor SIGKILLs it and quarantines the profile (None = no
    #: deadline).  This is *real* time — it catches CPU-bound hangs the
    #: simulated-time watchdog cannot see.
    profile_deadline_s: Optional[float] = None
    #: OS resource limits applied inside each worker (None = unlimited):
    #: CPU seconds per profile (workers are recycled between profiles so
    #: the budget does not accumulate) and address space in MiB.
    worker_rlimit_cpu_s: Optional[int] = None
    worker_rlimit_mem_mb: Optional[int] = None
    #: how many times a profile whose worker died is re-sent to a fresh
    #: worker before it is quarantined as WORKER_CRASH.
    worker_redelivery: int = 2
    #: consecutive worker deaths (without a completed profile in between)
    #: that trip the crash-loop circuit breaker and halt the campaign
    #: gracefully with a salvaged partial report.
    crash_loop_threshold: int = 5
    #: seconds of heartbeat silence from a BUSY worker before the
    #: supervisor declares it frozen and kills it.  Heartbeats come from
    #: a side thread, so plain CPU-bound work keeps beating; only a
    #: genuinely stopped process (SIGSTOP, stuck syscall) goes silent.
    heartbeat_timeout_s: float = 30.0
    #: serve pending profiles to remote workers from this listen address
    #: ("[HOST:]PORT"; see repro.core.distrib).  None = single-host run.
    distributed: Optional[str] = None
    #: cadence workers are told to heartbeat at.
    dist_heartbeat_s: float = 1.0
    #: seconds of heartbeat silence before a remote worker is declared
    #: lost and its leases redelivered.
    dist_heartbeat_timeout_s: float = 10.0
    #: wall-clock bound on one lease before it is re-queued even though
    #: its holder still heartbeats (None = no deadline; late results are
    #: still accepted idempotently).
    dist_lease_deadline_s: Optional[float] = None
    #: work stealing: maximum concurrent holders of one lease.
    dist_max_copies: int = 2
    #: seconds to wait for the first worker before degrading to the
    #: local pool.
    dist_join_grace_s: float = 20.0
    #: seconds to wait for a lost fleet to rejoin before degrading.
    dist_fleet_grace_s: float = 10.0
    #: deterministic transport chaos on coordinator-side connections
    #: (repro.common.transport.NetFaultPlan; None = clean links).
    net_fault_plan: Optional[Any] = None
    #: collect spans + metrics (repro.core.observe).  The campaign's
    #: Observation lands on AppReport.observation; the CLI's
    #: --trace-spans/--trace-chrome/--metrics-out flags export it.
    observe: bool = False
    #: stream for the live one-line progress display (usually stderr;
    #: None = no progress line).  Implies observation: the line is fed
    #: from the metrics registry at every profile commit.
    progress_stream: Optional[Any] = None
    #: callable(snapshot_dict) invoked on the committing thread after
    #: every profile commit (same snapshot the progress line renders).
    #: Implies observation.  Exceptions from the hook are swallowed — a
    #: broken consumer must not degrade the campaign.  Used by the
    #: service layer (repro.core.jobqueue) to stream NDJSON events.
    progress_hook: Optional[Any] = None
    #: threading.Event polled between profiles; when set the campaign
    #: raises CampaignCancelled instead of starting the next profile.
    #: Checked in the serial loop and at the start of every profile on
    #: the thread backend; the process/distributed backends only observe
    #: it between pool drains, so in-flight profiles there finish first.
    #: Deliberately NOT part of checkpoint_settings(): cancellation is a
    #: runtime act, not a campaign setting.
    cancel_event: Optional[Any] = None

    def param_allowed(self, name: str) -> bool:
        return self.only_params is None or name in self.only_params

    def checkpoint_settings(self) -> Dict[str, Any]:
        """The settings a resumed campaign must match (JSON-friendly)."""
        return {
            "alpha": self.alpha,
            "max_trials": self.max_trials,
            "blacklist_threshold": self.blacklist_threshold,
            "max_value_pairs": self.max_value_pairs,
            "max_pool_size": self.max_pool_size,
            "disable_ipc_sharing": self.disable_ipc_sharing,
            "only_params": (None if self.only_params is None
                            else sorted(self.only_params)),
            "fault_plan": (None if self.fault_plan is None
                           else asdict(self.fault_plan)),
            "infra_retries": self.infra_retries,
            "watchdog_sim_s": self.watchdog_sim_s,
            # Cache mode is part of the header: a journal written with the
            # cache on records content-derived dedup in its counters, and a
            # resume that silently flipped the mode would mix them.
            "exec_cache": self.exec_cache,
            # Same argument for the persistent store: a warm store serves
            # cached outcomes, so the journal's execution counters were
            # produced under a specific store mode.  Only presence is
            # recorded — the path itself may move between hosts.
            "store": bool(self.store_path),
            # Plan settings: a resume that flipped incremental mode or
            # sampled a different subset would journal outcomes produced
            # under a different work selection — refuse instead.
            "incremental": self.incremental,
            "sample": self.sample,
            "sample_k": self.sample_k,
            "sample_seed": self.sample_seed,
        }


@dataclass
class ProfileOutcome:
    """What one unit-test profile contributed to the campaign."""

    results: List[InstanceResult] = field(default_factory=list)
    stats: PoolStats = field(default_factory=PoolStats)
    executions: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    #: non-empty when the profile run itself crashed (harness bug or
    #: unrecoverable environment failure): the campaign degrades to
    #: reporting the error instead of aborting the whole run.  Carries
    #: the full child/parent traceback, or the exit-signal description
    #: for a dead worker process.
    error: str = ""
    #: classifies a non-empty ``error``: HARNESS_ERROR for a contained
    #: in-process exception, runner.WORKER_CRASH for a worker process
    #: that died (quarantine, deadline kill, circuit-breaker halt).
    error_kind: str = ""
    #: Observation.to_wire() dict from the profile's runner when the
    #: observability layer is on (crosses the process/supervision wire
    #: with the rest of the outcome); None otherwise.
    observation: Optional[Dict[str, Any]] = None


class Campaign:
    """ZebraConf campaign over one application's corpus and registry."""

    def __init__(self, app: str, registry: ParamRegistry,
                 tests: Optional[Sequence[UnitTest]] = None,
                 dependency_rules: Iterable[DependencyRule] = (),
                 config: Optional[CampaignConfig] = None,
                 corpus: Corpus = CORPUS) -> None:
        self.app = app
        self.registry = registry
        self.tests = list(tests) if tests is not None else corpus.for_app(app)
        self.config = config if config is not None else CampaignConfig()
        self.generator = TestGenerator(registry,
                                       dependency_rules=dependency_rules,
                                       max_value_pairs=self.config.max_value_pairs)
        self.tracker = FrequentFailureTracker(self.config.blacklist_threshold)
        #: per-run execution cache (built in _run when config.exec_cache).
        self._cache: Optional[ExecutionCache] = None
        #: durable cross-campaign result store (opened lazily by
        #: _build_cache when config.store_path; closed after each run).
        self._store: Optional[Any] = None
        #: per-run scheduler cost model (rebuilt in _run_inner once the
        #: pre-run profiles exist).
        self.cost_model = CostModel(self)
        #: per-run incremental plan (repro.core.plan.CampaignPlan; built
        #: in _run_inner when config.incremental, else None).  The cost
        #: model reads it to price REUSE profiles at zero.
        self._plan: Optional[CampaignPlan] = None
        #: supervised-pool counters for the current run (reset in _run;
        #: filled by repro.core.supervise when the supervisor is used).
        self.supervision = SupervisionStats()
        #: distributed-coordinator counters for the current run (filled
        #: by repro.core.distrib when --distributed is on).
        self.distribution = DistributionStats()
        #: EWMA-smoothed measured costs persisted beside the checkpoint
        #: journal (set by _open_checkpoint; None without a checkpoint).
        self.cost_book = None
        #: campaign-level Observation for the current run (None when the
        #: observability layer is off).
        self.observation: Optional[Observation] = None
        self._progress: Optional[ProgressReporter] = None
        self._app_span: Optional[Any] = None

    # ------------------------------------------------------------------
    def run(self) -> AppReport:
        from repro.common.ipc import set_ipc_sharing
        previous_sharing = set_ipc_sharing(not self.config.disable_ipc_sharing)
        try:
            return self._run()
        finally:
            set_ipc_sharing(previous_sharing)
            if self._store is not None:
                self._store.close()
                self._store = None

    def _observing(self) -> bool:
        return (self.config.observe
                or self.config.progress_stream is not None
                or self.config.progress_hook is not None)

    def _check_cancelled(self) -> None:
        """Raise CampaignCancelled if the config's cancel event is set."""
        event = self.config.cancel_event
        if event is not None and event.is_set():
            raise CampaignCancelled(self.app)

    def _run(self) -> AppReport:
        if not self._observing():
            self.observation = None
            return self._run_inner()
        self.observation = Observation(metrics=MetricsRegistry(
            constant_labels={"app": self.app}))
        if self.config.progress_stream is not None:
            self._progress = ProgressReporter(self.config.progress_stream,
                                              self.app)
        try:
            with self.observation.span(self.app, kind="app") as root:
                self._app_span = root
                return self._run_inner()
        finally:
            self._app_span = None
            if self._progress is not None:
                self._progress.close(self._progress_snapshot())
                self._progress = None

    def _run_inner(self) -> AppReport:
        self._check_cancelled()
        obs = self.observation
        if obs is not None:
            with obs.span("prerun", kind="prerun") as prerun_span:
                profiles = prerun_corpus(self.tests)
                # one instrumented execution per corpus test
                obs.advance_sim(len(profiles) * self.config.run_cost_s)
                prerun_span.attrs["tests"] = len(profiles)
            obs.metrics.counter_inc("zc_prerun_executions_total",
                                    len(profiles))
            obs.metrics.counter_inc("zc_machine_seconds_total",
                                    len(profiles) * self.config.run_cost_s)
        else:
            profiles = prerun_corpus(self.tests)
        usable = [p for p in profiles if p.usable]
        stage_counts = self._stage_counts(profiles, usable)
        if self.config.sample is not None \
                and self.config.sample not in SAMPLE_MODES:
            raise ValueError("unknown sampling mode %r (expected one of %s)"
                             % (self.config.sample, ", ".join(SAMPLE_MODES)))
        checkpoint = self._open_checkpoint()
        self._cache = self._build_cache()
        # Built once per run: checkpoint restore and the process backend
        # both need it, and rebuilding it per restored profile made large
        # resumes quadratic.
        tests_by_name = {t.full_name: t for t in self.tests}
        self._plan = self._build_plan(usable, checkpoint)

        # Partition tests into already-journaled (restore + replay their
        # blacklist effects), plan-REUSE (fold from the store, journal as
        # done, replay blacklist effects — zero fresh executions) and
        # still-pending (run for real).  Outcomes are assembled keyed by
        # test and folded back in the original profile order so a resumed
        # campaign reproduces the interrupted one bit for bit.
        outcome_by_test: Dict[str, ProfileOutcome] = {}
        pending: List[TestProfile] = []
        if self._progress is not None:
            self._progress.total = len(usable)
        for profile in usable:
            name = profile.test.full_name
            if checkpoint is not None and checkpoint.has_test(name):
                outcome = self._restore_profile(checkpoint, name,
                                                tests_by_name)
                outcome_by_test[name] = outcome
                self._profile_committed(outcome, restored=True)
                continue
            if self._plan is not None \
                    and self._plan.decision(name) == PLAN_REUSE:
                outcome = self._fold_planned_profile(profile, checkpoint,
                                                     tests_by_name)
                if outcome is not None:
                    outcome_by_test[name] = outcome
                    self._profile_committed(outcome, reused=True)
                    continue
            pending.append(profile)

        backend = self.config.parallel_backend
        if backend not in ("thread", "process"):
            raise ValueError("unknown parallel backend %r" % backend)
        schedule = self.config.schedule
        if schedule not in ("lpt", "catalog"):
            raise ValueError("unknown schedule %r" % schedule)
        self.cost_model = CostModel(self)
        self.supervision = SupervisionStats()
        self.distribution = DistributionStats()
        if self.config.distributed is not None and pending:
            # Remote fleet first; whatever it cannot finish degrades to
            # the local pool inside run_profiles_distributed.  Outcomes
            # are keyed by test and folded in catalog order below, so
            # where a profile ran cannot change findings.
            from repro.core.distrib import run_profiles_distributed
            fresh = run_profiles_distributed(self, pending, checkpoint,
                                             tests_by_name)
        elif self.config.workers > 1 and pending:
            # Dispatch order is a pure makespan concern: outcomes are
            # keyed by test and folded back in catalog order below, so
            # reordering here cannot change findings or deterministic
            # metrics.
            if schedule == "lpt":
                pending = self.cost_model.lpt_order(pending)
            # Both backends share the supervisor module's as-completed
            # collection: each finished profile is journaled immediately,
            # so a crash loses at most the in-flight profiles.
            from repro.core.supervise import run_profiles_parallel
            fresh = run_profiles_parallel(self, pending, checkpoint,
                                          tests_by_name)
        else:
            fresh = []
            for profile in pending:
                self._check_cancelled()
                outcome = self._run_profile_contained(profile, checkpoint)
                self._profile_committed(outcome)
                fresh.append(outcome)
        for profile, outcome in zip(pending, fresh):
            outcome_by_test[profile.test.full_name] = outcome
        self._persist_profile_records(usable, outcome_by_test)

        results: List[InstanceResult] = []
        pool_stats = PoolStats()
        executions = len(profiles)  # pre-run executions count as runs too
        fault_counts: Dict[str, int] = {}
        retries = 0
        degraded: List[str] = []
        quarantined: List[str] = []
        degraded_errors: Dict[str, str] = {}
        predicted_total = 0
        prediction_error = 0
        for profile in usable:
            name = profile.test.full_name
            outcome = outcome_by_test[name]
            results.extend(outcome.results)
            _merge_stats(pool_stats, outcome.stats)
            executions += outcome.executions
            prediction = self.cost_model.predict(profile)
            predicted_total += prediction.predicted_executions
            prediction_error += abs(prediction.predicted_executions
                                    - outcome.executions)
            for kind, count in outcome.fault_counts.items():
                fault_counts[kind] = fault_counts.get(kind, 0) + count
            retries += outcome.retries
            if outcome.error:
                degraded.append(name)
                degraded_errors[name] = outcome.error
                if outcome.error_kind == WORKER_CRASH:
                    quarantined.append(name)
        if self.observation is not None:
            # Predicted-vs-actual bookkeeping is computed here in the
            # parent, identically for every backend (and for restored
            # profiles), so the deterministic snapshot stays
            # backend-invariant.
            metrics = self.observation.metrics
            metrics.counter_inc("zc_sched_predicted_executions_total",
                                predicted_total)
            metrics.counter_inc("zc_sched_prediction_error_executions_total",
                                prediction_error)

        stage_counts.after_pooling = pool_stats.total_instances_run
        hypothesis_stats = _hypothesis_stats(results)
        results_by_param = _group_confirmed(results)
        verdicts = triage_report(results_by_param, self.registry,
                                 blacklisted=self.tracker.blacklisted)
        self._emit_trace(profiles, results, verdicts, executions)
        cost_centers = self._cost_centers(usable, outcome_by_test)
        audit_stats = self._run_audit(profiles)
        if self.observation is not None:
            self._assemble_spans(usable, outcome_by_test)
            self._finalize_runtime_metrics()
        report = AppReport(
            app=self.app,
            stage_counts=stage_counts,
            prerun_summary=PreRunSummary.from_profiles(profiles),
            pool_stats=pool_stats,
            hypothesis_stats=hypothesis_stats,
            verdicts=verdicts,
            results_by_param=results_by_param,
            blacklisted=tuple(sorted(self.tracker.blacklisted)),
            executions=executions,
            machine_time_s=executions * self.config.run_cost_s,
            fault_counts=dict(sorted(fault_counts.items())),
            infra_retries_performed=retries,
            degraded_tests=tuple(degraded),
            quarantined_tests=tuple(quarantined),
            degraded_errors=degraded_errors,
            exec_cache_enabled=(self.config.exec_cache
                                or bool(self.config.store_path)),
            audit=audit_stats,
            supervision=self.supervision,
            distribution=self.distribution,
            store=(None if self._store is None
                   else replace(self._store.stats)),
            cost_centers=cost_centers,
            plan=self._plan,
            observation=self.observation)
        if self._store is not None:
            # the finished report is itself a store record, so a later
            # campaign (or ``repro store stats``) can read past findings
            # without re-running anything.
            from repro.core.report import app_report_to_dict
            self._store.put_report(app_report_to_dict(report))
        return report

    # ------------------------------------------------------------------
    # wiring audit (--audit)
    # ------------------------------------------------------------------
    def _run_audit(self, profiles: List[TestProfile]) -> Optional[Any]:
        """Registry wiring audit over the pre-run profiles (see
        repro.core.audit).  Probe executions land in their own
        ``zc_audit_*`` metrics and AuditStats.machine_time_s — never in
        campaign execution accounting — so every other report section is
        byte-identical with the audit on or off."""
        if not self.config.audit:
            return None
        from repro.core.audit import (READ_BUT_INERT, UNREAD, WIRED,
                                      audit_campaign)
        if self.observation is None:
            return audit_campaign(self, profiles)
        with self.observation.span("audit", kind="audit") as span:
            stats = audit_campaign(self, profiles)
            span.attrs["params"] = stats.params_total
            span.attrs["flagged"] = len(stats.flagged())
        metrics = self.observation.metrics
        for verdict, count in ((WIRED, stats.wired), (UNREAD, stats.unread),
                               (READ_BUT_INERT, stats.inert)):
            if count:
                metrics.counter_inc("zc_audit_params_total", count,
                                    verdict=verdict)
        if stats.probe_executions:
            metrics.counter_inc("zc_audit_probe_executions_total",
                                stats.probe_executions)
        if stats.probe_cache_hits:
            metrics.counter_inc("zc_audit_probe_cache_hits_total",
                                stats.probe_cache_hits)
        if stats.probes_collapsed:
            metrics.counter_inc("zc_audit_probes_collapsed_total",
                                stats.probes_collapsed)
        if stats.machine_time_s:
            metrics.counter_inc("zc_audit_machine_seconds_total",
                                stats.machine_time_s)
        return stats

    # ------------------------------------------------------------------
    # execution cache
    # ------------------------------------------------------------------
    def _build_cache(self) -> Optional[ExecutionCache]:
        """A fresh per-run cache keyed by everything that shapes a single
        execution's behaviour (so stale outcomes can never be served)."""
        if not self.config.exec_cache and not self.config.store_path:
            return None
        context = {
            "app": self.app,
            "fault_plan": (None if self.config.fault_plan is None
                           else asdict(self.config.fault_plan)),
            "watchdog_sim_s": self.config.watchdog_sim_s,
            "infra_retries": self.config.infra_retries,
            "disable_ipc_sharing": self.config.disable_ipc_sharing,
        }
        store = self._open_store()
        if store is not None:
            from repro.core.store import StoreBackedExecutionCache
            return StoreBackedExecutionCache(context, store)
        return ExecutionCache(context=context)

    def _open_store(self) -> Optional[Any]:
        """Open (once per run) the durable result store for this
        campaign's substrate.  The disk may be damaged — open() salvages
        and counts; only an unusable root or a store written by a newer
        format raises (StoreError, surfaced like a checkpoint refusal)."""
        if not self.config.store_path:
            return None
        if self._store is None:
            # the distribution handshake digest doubles as the store's
            # substrate guard: same app name + same corpus/registry shape.
            from repro.core.distrib import corpus_digest
            from repro.core.store import ResultStore
            store = ResultStore(self.config.store_path,
                                disk_fault_plan=self.config.disk_fault_plan)
            store.open(self.app, corpus_digest(self))
            self._store = store
        return self._store

    # ------------------------------------------------------------------
    # checkpoint/resume
    # ------------------------------------------------------------------
    def _open_checkpoint(self) -> Optional[CampaignCheckpoint]:
        if not self.config.checkpoint_path:
            self.cost_book = None
            return None
        # Measured LPT cost weights live beside the journal so a resumed
        # campaign reschedules from measured, not analytic, costs.
        from repro.core.costmodel import CostBook
        self.cost_book = CostBook(
            CostBook.beside_checkpoint(self.config.checkpoint_path))
        self.cost_book.load()
        checkpoint = CampaignCheckpoint(self.config.checkpoint_path)
        finished = checkpoint.load()
        checkpoint.check_header(self.app, self.config.checkpoint_settings())
        trace = self.config.trace
        if trace is not None:
            trace.emit("checkpoint-open", app=self.app,
                       path=self.config.checkpoint_path,
                       finished_tests=finished,
                       partial_tests=sorted(checkpoint.partial_tests))
        return checkpoint

    def _restore_profile(self, checkpoint: CampaignCheckpoint, name: str,
                         tests_by_name: Mapping[str, UnitTest]
                         ) -> ProfileOutcome:
        (results, stats, executions, fault_counts, retries,
         error, error_kind) = checkpoint.restore_test(name, tests_by_name)
        # Replay blacklist bookkeeping: confirmations from journaled
        # tests must count toward the frequent-failure threshold exactly
        # as they did in the interrupted run.
        for result in results:
            if result.verdict == CONFIRMED_UNSAFE:
                for param in result.instance.params:
                    self.tracker.record_unsafe(param, name)
        trace = self.config.trace
        if trace is not None:
            trace.emit("checkpoint-restore", app=self.app, test=name,
                       instances=len(results), executions=executions)
        return ProfileOutcome(results=results, stats=stats,
                              executions=executions,
                              fault_counts=fault_counts, retries=retries,
                              error=error, error_kind=error_kind)

    # ------------------------------------------------------------------
    # incremental planning (--incremental) and store profile records
    # ------------------------------------------------------------------
    def _build_plan(self, usable: List[TestProfile],
                    checkpoint: Optional[CampaignCheckpoint]
                    ) -> Optional[CampaignPlan]:
        """Build (or replay) the incremental campaign plan.

        A resumed campaign replays the journaled plan rather than
        replanning: the interrupted run already appended fresh profile
        records to the store, so a replan would silently reclassify its
        RERUN/NEW work as REUSE and change the reported plan summary.
        """
        if not self.config.incremental:
            return None
        store = self._open_store()
        if store is None:
            raise ValueError("incremental planning requires a result store "
                             "(set store_path / --store)")
        if checkpoint is not None:
            journaled = checkpoint.plan_record(self.app)
            if journaled is not None:
                plan = CampaignPlan.from_dict(journaled)
                trace = self.config.trace
                if trace is not None:
                    trace.emit("plan-replayed", app=self.app,
                               reused=plan.count(PLAN_REUSE),
                               demoted=plan.demoted)
                return plan
        plan = build_plan(self, usable, store)
        if checkpoint is not None:
            checkpoint.record_plan(self.app, plan.to_dict())
        trace = self.config.trace
        if trace is not None:
            trace.emit("plan-built", app=self.app,
                       reused=plan.count(PLAN_REUSE),
                       demoted=plan.demoted,
                       executions_saved=plan.executions_saved)
        return plan

    def _fold_planned_profile(self, profile: TestProfile,
                              checkpoint: Optional[CampaignCheckpoint],
                              tests_by_name: Mapping[str, UnitTest]
                              ) -> Optional[ProfileOutcome]:
        """Fold one plan-REUSE profile from its stored record.

        Returns None when the stored record has vanished since planning
        (store GC raced, disk fault ate the segment) — the caller then
        runs the profile for real, which is always correct, just slower.
        Mirrors :meth:`_restore_profile`: blacklist confirmations replay
        exactly as they did in the stored run, and the fold is journaled
        as a finished test so a crash + resume restores it identically.
        """
        name = profile.test.full_name
        stored = self._store.lookup_profile(self._plan.plan_for(name).key)
        if stored is None:
            return None
        record = stored["record"]
        try:
            results = [result_from_dict(r, tests_by_name)
                       for r in record["results"]]
            stats = PoolStats(**record["pool_stats"])
        except (KeyError, TypeError, ValueError):
            # damaged or schema-drifted record: fall back to running.
            return None
        for result in results:
            if result.verdict == CONFIRMED_UNSAFE:
                for param in result.instance.params:
                    self.tracker.record_unsafe(param, name)
        fault_counts = {str(k): int(v)
                        for k, v in record.get("fault_counts", {}).items()}
        retries = int(record.get("retries", 0))
        # Zero fresh executions: the whole point of the plan.  The stored
        # pool statistics are preserved so the findings projection is
        # byte-identical to the campaign that produced them.
        outcome = ProfileOutcome(results=results, stats=stats, executions=0,
                                 fault_counts=fault_counts, retries=retries)
        if checkpoint is not None:
            checkpoint.record_test_done(name, results, stats, 0,
                                        fault_counts=fault_counts,
                                        retries=retries)
        trace = self.config.trace
        if trace is not None:
            trace.emit("plan-reuse", app=self.app, test=name,
                       instances=len(results),
                       executions_saved=int(record.get("executions", 0)))
        return outcome

    def _persist_profile_records(self, profiles: Sequence[TestProfile],
                                 outcome_by_test: Mapping[str,
                                                          "ProfileOutcome"]
                                 ) -> None:
        """Append per-profile result records to the store.

        Runs on *every* stored campaign (not just ``--incremental``) so a
        plain ``--store`` run seeds the profiles a later incremental run
        reuses.  Checkpoint-restored profiles are included — a resumed
        campaign must leave the store exactly as warm as an uninterrupted
        one.  Only clean outcomes are recorded (degraded or quarantined
        profiles must be re-run, never reused), and REUSE folds are
        skipped: their authoritative record — with the *original*
        execution count the planner prices — is already durable.
        """
        if self._store is None:
            return
        for profile in profiles:
            name = profile.test.full_name
            if self._plan is not None \
                    and self._plan.decision(name) == PLAN_REUSE:
                continue
            outcome = outcome_by_test.get(name)
            if outcome is None or outcome.error:
                continue
            key = profile_key(self, profile)
            confirmed = sorted({param
                                for r in outcome.results
                                if r.verdict == CONFIRMED_UNSAFE
                                for param in r.instance.params})
            record = {
                "results": [result_to_dict(r) for r in outcome.results],
                "pool_stats": asdict(outcome.stats),
                "executions": outcome.executions,
                "fault_counts": dict(outcome.fault_counts),
                "retries": outcome.retries,
            }
            stored = self._store.lookup_profile(key)
            if stored is not None \
                    and stored.get("record") == record \
                    and list(stored.get("confirmed", [])) == confirmed:
                continue  # identical record already durable
            self._store.append_profile(key, name, record,
                                       confirmed=confirmed)

    def _record_measured_cost(self, name: str, outcome: ProfileOutcome
                              ) -> None:
        """Feed one freshly *run* profile's measured cost into the cost
        book (scheduling weights only — findings never read it).

        Quarantined WORKER_CRASH outcomes are excluded: the profile did
        not run to completion, so its numbers would poison the EWMA.
        Wall time comes from the profile's shipped observation when the
        observability layer is on; executions are always available.
        """
        book = self.cost_book
        if book is None or outcome.error_kind == WORKER_CRASH:
            return
        wall_s = None
        wire = outcome.observation
        if wire is not None:
            root = next((s for s in wire.get("spans", ())
                         if s.get("parent_id") is None), None)
            if root is not None:
                wall_s = max(root["wall_end"] - root["wall_start"], 0.0)
        book.observe(name, outcome.executions, wall_s=wall_s)
        book.save()

    def _run_profile_contained(self, profile: TestProfile,
                               checkpoint: Optional[CampaignCheckpoint]
                               ) -> ProfileOutcome:
        """Run one profile; contain harness crashes; journal the outcome."""
        try:
            outcome = self._run_test_profile(profile, checkpoint)
        except Exception:  # noqa: BLE001 - graceful degradation
            outcome = ProfileOutcome(error=traceback.format_exc(),
                                     error_kind=HARNESS_ERROR)
            trace = self.config.trace
            if trace is not None:
                trace.emit("test-error", app=self.app,
                           test=profile.test.full_name, error=outcome.error)
        if checkpoint is not None:
            checkpoint.record_test_done(
                profile.test.full_name, outcome.results, outcome.stats,
                outcome.executions, fault_counts=outcome.fault_counts,
                retries=outcome.retries, error=outcome.error,
                error_kind=outcome.error_kind)
        self._record_measured_cost(profile.test.full_name, outcome)
        return outcome

    # ------------------------------------------------------------------
    # observability (repro.core.observe)
    # ------------------------------------------------------------------
    def _fill_profile_metrics(self, metrics: MetricsRegistry,
                              runner: TestRunner, stats: PoolStats) -> None:
        """Bulk metric fill for one fresh profile, sourced from the same
        runner/PoolStats counters the report totals use — that is what
        makes the snapshot reconcile with the report *exactly*."""
        machine = runner.machine_time_s
        if runner.executions:
            metrics.counter_inc("zc_executions_total", runner.executions)
        if machine:
            metrics.counter_inc("zc_machine_seconds_total", machine)
        if runner.backoff_cost_s:
            metrics.counter_inc("zc_backoff_seconds_total",
                                runner.backoff_cost_s)
        if runner.retries_performed:
            metrics.counter_inc("zc_infra_retries_total",
                                runner.retries_performed)
        for kind, count in sorted(runner.fault_counts.items()):
            metrics.counter_inc("zc_faults_injected_total", count, kind=kind)
        for field_name, metric in _POOL_METRICS.items():
            value = getattr(stats, field_name)
            if value:
                metrics.counter_inc(metric, value)
        metrics.hist_observe("zc_profile_machine_seconds", machine)

    def _replay_profile_metrics(self, metrics: MetricsRegistry,
                                outcome: ProfileOutcome) -> None:
        """Rebuild a profile's metrics from its journaled numbers (a
        checkpoint-restored profile, or a crashed worker that never
        shipped an observation).  Backoff cost is not journaled, so the
        machine-seconds replay is executions x run_cost_s — the same
        definition the report's machine_time_s uses."""
        run_cost = self.config.run_cost_s
        if outcome.executions:
            metrics.counter_inc("zc_executions_total", outcome.executions)
            metrics.counter_inc("zc_machine_seconds_total",
                                outcome.executions * run_cost)
        if outcome.retries:
            metrics.counter_inc("zc_infra_retries_total", outcome.retries)
        for kind, count in sorted(outcome.fault_counts.items()):
            metrics.counter_inc("zc_faults_injected_total", count, kind=kind)
        for field_name, metric in _POOL_METRICS.items():
            value = getattr(outcome.stats, field_name)
            if value:
                metrics.counter_inc(metric, value)
        for result in outcome.results:
            metrics.counter_inc("zc_instance_verdicts_total",
                                verdict=result.verdict)
            metrics.hist_observe("zc_instance_executions",
                                 result.executions)
            metrics.hist_observe("zc_instance_machine_seconds",
                                 result.executions * run_cost)
        metrics.hist_observe("zc_profile_machine_seconds",
                             outcome.executions * run_cost)

    def _profile_committed(self, outcome: ProfileOutcome,
                           restored: bool = False,
                           reused: bool = False) -> None:
        """Fold one finished profile into the live campaign observation.

        Called from the serial loop, checkpoint restore, and
        ``parallel.commit_outcome`` (thread/process/supervised backends)
        — always on the parent's committing thread, in completion order.
        Metric merges are commutative, so that order does not affect the
        final snapshot; spans are adopted later, in profile order.
        """
        obs = self.observation
        if obs is not None:
            wire = outcome.observation
            if wire is not None:
                obs.metrics.merge_wire(wire.get("metrics", {}))
                root = next((s for s in wire.get("spans", ())
                             if s.get("parent_id") is None), None)
                if root is not None:
                    obs.metrics.hist_observe(
                        "zc_runtime_profile_wall_seconds",
                        max(root["wall_end"] - root["wall_start"], 0.0))
            else:
                self._replay_profile_metrics(obs.metrics, outcome)
            if restored:
                status = "restored"
            elif reused:
                status = "reused"
            elif outcome.error_kind == WORKER_CRASH:
                status = "quarantined"
            elif outcome.error:
                status = "degraded"
            else:
                status = "completed"
            obs.metrics.counter_inc("zc_profiles_total", status=status)
        if self._progress is not None:
            self._progress.tick(self._progress_snapshot())
        hook = self.config.progress_hook
        if hook is not None and self.observation is not None:
            try:
                hook(self._progress_snapshot())
            except Exception:  # noqa: BLE001 - consumer must not hurt us
                pass

    def _progress_snapshot(self) -> Dict[str, Any]:
        metrics = self.observation.metrics
        return {
            "done": int(metrics.total("zc_profiles_total")),
            "executions": int(metrics.total("zc_executions_total")
                              + metrics.total("zc_prerun_executions_total")),
            "cache_hits": int(metrics.total("zc_exec_cache_hits_total")),
            "cache_misses": int(metrics.total("zc_exec_cache_misses_total")),
            "pool_voids": int(metrics.total("zc_pool_voids_total")),
            "respawns": self.supervision.respawns,
            "quarantined": self.supervision.quarantined,
        }

    def _assemble_spans(self, usable: Sequence[TestProfile],
                        outcome_by_test: Mapping[str, ProfileOutcome]
                        ) -> None:
        """Graft per-profile span trees under the app root in *profile*
        order (not completion order), laying them on one modelled
        timeline so the span tree is identical across backends."""
        obs = self.observation
        run_cost = self.config.run_cost_s
        for profile in usable:
            name = profile.test.full_name
            outcome = outcome_by_test[name]
            wire = outcome.observation
            if wire is not None:
                obs.adopt_spans(wire, parent=self._app_span)
            else:
                # restored from a checkpoint, or the worker died before
                # shipping spans: account the modelled time it burned
                attrs: Dict[str, Any] = {"synthetic": True}
                if outcome.error_kind:
                    attrs["error_kind"] = outcome.error_kind
                with obs.span(name, kind="profile", **attrs):
                    obs.advance_sim(outcome.executions * run_cost)

    def _finalize_runtime_metrics(self) -> None:
        """End-of-run volatile metrics: supervision counters and cache
        occupancy (both depend on how the campaign ran, not on what it
        found — hence the zc_runtime_* namespace)."""
        metrics = self.observation.metrics
        for field_name, metric in _SUPERVISION_METRICS.items():
            value = getattr(self.supervision, field_name)
            if value:
                metrics.counter_inc(metric, value)
        for field_name, metric in _DIST_METRICS.items():
            value = getattr(self.distribution, field_name)
            if value:
                metrics.counter_inc(metric, value)
        for kind, count in sorted(self.distribution.net_faults.items()):
            metrics.counter_inc("zc_dist_net_faults_total", count, kind=kind)
        if self._cache is not None:
            for tier, size in sorted(self._cache.tier_sizes().items()):
                metrics.gauge_max("zc_runtime_exec_cache_entries", size,
                                  tier=tier)
        if self._store is not None:
            stats = self._store.stats
            for value, metric in (
                    (stats.hits, "zc_store_hits_total"),
                    (stats.misses, "zc_store_misses_total"),
                    (stats.appends, "zc_store_appends_total"),
                    (stats.salvaged_records, "zc_store_salvaged_records_total"),
                    (stats.corrupt_records, "zc_store_corrupt_records_total"),
                    (stats.truncated_tails, "zc_store_truncated_tails_total"),
                    (stats.stale_refused, "zc_store_stale_refused_total"),
                    (stats.write_errors, "zc_store_write_errors_total")):
                if value:
                    metrics.counter_inc(metric, value)
            metrics.gauge_max("zc_store_entries_loaded",
                              stats.entries_loaded)
        if self._plan is not None:
            plan = self._plan
            for decision in PLAN_DECISIONS:
                count = plan.count(decision)
                if count:
                    metrics.counter_inc("zc_plan_profiles_total", count,
                                        decision=decision)
            if plan.demoted:
                metrics.counter_inc("zc_plan_demoted_profiles_total",
                                    plan.demoted)
            if plan.executions_saved:
                metrics.counter_inc("zc_plan_executions_saved_total",
                                    plan.executions_saved)

    def _cost_centers(self, usable: Sequence[TestProfile],
                      outcome_by_test: Mapping[str, ProfileOutcome],
                      limit: int = 10) -> Tuple[CostCenter, ...]:
        """The most expensive unit tests, by executions burned."""
        centers = [CostCenter(test=profile.test.full_name,
                              executions=outcome.executions,
                              machine_time_s=(outcome.executions
                                              * self.config.run_cost_s),
                              instances=len(outcome.results),
                              predicted_executions=self.cost_model.predict(
                                  profile).predicted_executions)
                   for profile in usable
                   for outcome in (outcome_by_test[profile.test.full_name],)]
        centers.sort(key=lambda center: (-center.executions, center.test))
        return tuple(centers[:limit])

    # ------------------------------------------------------------------
    def _emit_trace(self, profiles, results, verdicts, executions) -> None:
        trace = self.config.trace
        if trace is None:
            return
        # Campaign-summary events all fire after the last execution, so
        # they share the campaign's final modelled timestamp (each
        # event's ``seq`` keeps their relative order deterministic).
        sim_end = executions * self.config.run_cost_s
        for profile in profiles:
            trace.emit("prerun", sim_at=sim_end,
                       app=self.app, test=profile.test.full_name,
                       usable=profile.usable,
                       groups=dict(profile.groups),
                       uncertain_params=sorted(profile.uncertain_params),
                       baseline_error=profile.baseline_error)
        for result in results:
            tally = result.tally
            trace.emit("instance", sim_at=sim_end, app=self.app,
                       test=result.instance.test.full_name,
                       params=list(result.instance.params),
                       group=result.instance.group,
                       strategy=result.instance.strategy,
                       verdict=result.verdict,
                       hetero_error=result.hetero_error,
                       trials=None if tally is None else {
                           "hetero": [tally.hetero_failures,
                                      tally.hetero_trials],
                           "homo": [tally.homo_failures, tally.homo_trials],
                           "p_value": tally.p_value()})
        for param in sorted(self.tracker.blacklisted):
            trace.emit("blacklist", sim_at=sim_end, app=self.app,
                       param=param,
                       failing_tests=self.tracker.failure_count(param))
        trace.emit("campaign", sim_at=sim_end, app=self.app,
                   executions=executions,
                   reported=[v.param for v in verdicts],
                   true_problems=[v.param for v in verdicts
                                  if v.is_true_problem])

    # ------------------------------------------------------------------
    def _run_test_profile(self, profile: TestProfile,
                          checkpoint: Optional[CampaignCheckpoint] = None
                          ) -> ProfileOutcome:
        """All pooled testing for one unit test (parallelism granule).

        With observation on, the profile gets its *own* Observation —
        single-threaded by construction whether it runs in the serial
        loop, a worker thread, or a forked worker — serialised onto the
        outcome so the parent can merge it deterministically.
        """
        self._check_cancelled()
        if not self._observing():
            return self._profile_body(profile, checkpoint, None)
        obs = Observation(metrics=MetricsRegistry(
            constant_labels={"app": self.app}))
        with obs.span(profile.test.full_name, kind="profile") as span:
            outcome = self._profile_body(profile, checkpoint, obs)
            if outcome.error_kind:
                span.attrs["error_kind"] = outcome.error_kind
        outcome.observation = obs.to_wire()
        return outcome

    def _profile_body(self, profile: TestProfile,
                      checkpoint: Optional[CampaignCheckpoint],
                      obs: Optional[Observation]) -> ProfileOutcome:
        runner = TestRunner(alpha=self.config.alpha,
                            max_trials=self.config.max_trials,
                            run_cost_s=self.config.run_cost_s,
                            fault_plan=self.config.fault_plan,
                            infra_retries=self.config.infra_retries,
                            watchdog_sim_s=self.config.watchdog_sim_s,
                            trace=self.config.trace,
                            registry=self.registry,
                            cache=self._cache,
                            collapse_exclude=profile.explicit_sets,
                            observe=obs)
        on_result = None if checkpoint is None else checkpoint.record_instance
        tester = PooledTester(runner, tracker=self.tracker,
                              max_pool_size=self.config.max_pool_size,
                              on_result=on_result)
        kernel_before = kernel_stats_snapshot()
        results: List[InstanceResult] = []
        error = ""
        error_kind = ""
        try:
            for group in sorted(profile.groups):
                group_size = profile.groups[group]
                params = sorted(name for name in profile.testable_params(group)
                                if name in self.registry
                                and self.config.param_allowed(name))
                if not params:
                    continue
                pairs_by_param = {name: self.generator.value_pairs(self.registry.get(name))
                                  for name in params}
                layers = max((len(p) for p in pairs_by_param.values()), default=0)
                # Deterministic, seeded subset of (strategy, layer, param)
                # cells (--sample); None = exhaustive.  The cost model
                # mirrors this exact filter so its forecast stays honest.
                kept = sample_cells(
                    self.config.sample, self.config.sample_seed,
                    self.config.sample_k, profile.test.full_name, group,
                    list(self.generator.strategies_for_group(group_size)),
                    {name: len(pairs_by_param[name]) for name in params})
                for strategy in self.generator.strategies_for_group(group_size):
                    for layer in range(layers):
                        units = [self.generator.assignment(
                                     self.registry.get(name), group, strategy,
                                     pairs_by_param[name][layer])
                                 for name in params
                                 if layer < len(pairs_by_param[name])
                                 and (kept is None
                                      or (strategy, layer, name) in kept)]
                        if units:
                            results.extend(tester.run(profile.test, group,
                                                      strategy, units))
        except Exception:  # noqa: BLE001 - graceful degradation
            # The profile degrades, but the machine time it burned is
            # real: keep the partial runner's executions, fault counts,
            # and retries in the outcome instead of dropping them.
            error = traceback.format_exc()
            error_kind = HARNESS_ERROR
            trace = self.config.trace
            if trace is not None:
                trace.emit("test-error", app=self.app,
                           test=profile.test.full_name, error=error)
        stats = tester.stats
        stats.exec_cache_hits += runner.cache_hits
        stats.exec_cache_misses += runner.cache_misses
        stats.exec_cache_bypasses += runner.cache_bypasses
        if obs is not None:
            self._fill_profile_metrics(obs.metrics, runner, stats)
            kernel_after = kernel_stats_snapshot()
            for delta, metric in zip(
                    (after - before for after, before
                     in zip(kernel_after, kernel_before)),
                    ("zc_runtime_sim_timers_cancelled_total",
                     "zc_runtime_sim_heap_compactions_total",
                     "zc_runtime_sim_timers_compacted_total")):
                if delta:
                    obs.metrics.counter_inc(metric, delta)
        return ProfileOutcome(results=results, stats=stats,
                              executions=runner.executions,
                              fault_counts=dict(runner.fault_counts),
                              retries=runner.retries_performed,
                              error=error, error_kind=error_kind)

    # ------------------------------------------------------------------
    def _stage_counts(self, profiles: Sequence[TestProfile],
                      usable: Sequence[TestProfile]) -> StageCounts:
        node_types = NODE_TYPES.get(self.app, []) or [UNIT_TEST]
        counts = StageCounts()
        counts.original = self.generator.count_original_instances(
            len(profiles), node_types)
        for profile in usable:
            for group, size in profile.groups.items():
                strategies = len(self.generator.strategies_for_group(size))
                for name in profile.params_by_group.get(group, set()):
                    param = self.registry.maybe_get(name)
                    if param is None or not self.config.param_allowed(name):
                        continue
                    instances = len(self.generator.value_pairs(param)) * strategies
                    counts.after_prerun += instances
                    if name not in profile.uncertain_params:
                        counts.after_uncertainty += instances
        return counts


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _merge_stats(into: PoolStats, other: PoolStats) -> None:
    # Field-generic so new PoolStats counters can never be silently
    # dropped from the campaign roll-up again (already_confirmed_skips
    # was, before this).
    for spec in fields(PoolStats):
        setattr(into, spec.name,
                getattr(into, spec.name) + getattr(other, spec.name))


def _hypothesis_stats(results: Sequence[InstanceResult]) -> HypothesisTestingStats:
    stats = HypothesisTestingStats()
    for result in results:
        if result.verdict == CONFIRMED_UNSAFE:
            stats.suspicious_first_trial += 1
            stats.confirmed += 1
        elif result.verdict == FLAKY_DISMISSED:
            stats.suspicious_first_trial += 1
            stats.filtered_as_flaky += 1
    return stats


def _group_confirmed(results: Sequence[InstanceResult]
                     ) -> Dict[str, List[InstanceResult]]:
    grouped: Dict[str, List[InstanceResult]] = {}
    for result in results:
        if result.verdict != CONFIRMED_UNSAFE:
            continue
        for param in result.instance.params:
            grouped.setdefault(param, []).append(result)
    return grouped


# ---------------------------------------------------------------------------
# full evaluation over every target application
# ---------------------------------------------------------------------------
def application_campaigns(config: Optional[CampaignConfig] = None
                          ) -> List[Campaign]:
    """One configured campaign per target application (imports suites)."""
    from repro.apps import catalog
    config = config if config is not None else CampaignConfig()
    campaigns = []
    for app in catalog.APP_NAMES:
        spec = catalog.spec_for(app)
        campaigns.append(Campaign(app=app, registry=spec.registry,
                                  dependency_rules=spec.dependency_rules,
                                  config=config))
    return campaigns


def run_full_campaign(config: Optional[CampaignConfig] = None) -> CampaignReport:
    report = CampaignReport()
    for campaign in application_campaigns(config):
        report.apps.append(campaign.run())
    return report
