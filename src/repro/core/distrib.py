"""Distributed campaign execution: coordinator + remote-worker protocol.

The paper ran its campaigns across ~100 CloudLab machines; this module
grows the harness past one host.  A **coordinator** (the campaign
parent) serves unit-test profiles over the length-prefixed JSON TCP
protocol in :mod:`repro.common.transport`, and any number of **workers**
(``repro worker --connect HOST:PORT``) pull leases, run the profiles
with the existing supervised pool, and stream outcomes back in the
checkpoint wire format (:func:`repro.core.parallel.profile_outcome_to_dict`).

Robustness is the design driver — a worker that disconnects, hangs,
crashes, or answers late must never corrupt findings:

* **Liveness.**  Workers heartbeat on a side thread; a worker silent
  past ``dist_heartbeat_timeout_s`` is declared lost and its leases are
  redelivered.  An optional per-lease deadline (``dist_lease_deadline_s``)
  bounds a lease even while its holder keeps beating.
* **At-least-once + idempotent.**  A worker treats a result as delivered
  only when the coordinator acks it; unacked results are resent after
  reconnect.  The coordinator commits each profile exactly once — a
  duplicate (resend, or a stolen copy finishing second) is acked and
  dropped, never double-counted.
* **Bounded reconnect.**  Workers reconnect with exponential backoff and
  jitter, at most ``--reconnect-attempts`` consecutive failures.
* **Redelivery with quarantine.**  A lease lost to a dead worker is
  re-queued at most ``worker_redelivery`` times (the supervised pool's
  own bound) before the profile is quarantined as a
  :data:`~repro.core.runner.WORKER_CRASH` outcome — poison cannot starve
  the fleet.
* **Work stealing.**  When the queue drains, an idle worker is granted a
  *copy* of the oldest outstanding lease (at most ``dist_max_copies``
  holders): a straggler or silently-dead holder cannot stall campaign
  completion; the first copy to finish wins, the rest are suppressed.
* **Graceful degradation.**  If no worker joins within
  ``dist_join_grace_s``, or the whole fleet is lost and nobody rejoins
  within ``dist_fleet_grace_s``, the coordinator closes shop and the
  campaign finishes the remaining profiles on the local pool — a lost
  fleet degrades, it never aborts.

Findings stay byte-identical to serial runs because the coordinator
commits outcomes through the same :func:`repro.core.parallel.commit_outcome`
path every backend uses, and the campaign folds them back in catalog
order (:meth:`Campaign._run_inner`).  The lease queue is LPT-ordered
(:mod:`repro.core.costmodel`), which — like every dispatch-order choice
— affects wall-clock makespan only.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import random
import socket
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.common import transport as net
from repro.common.faults import fault_seed
from repro.core import parallel
from repro.core.prerun import prerun_corpus
from repro.core.registry import UnitTest
from repro.core.runner import WORKER_CRASH

#: read deadline for a control reply (welcome, lease, ack) before the
#: worker declares the connection wedged and reconnects.
CONTROL_TIMEOUT_S = 30.0
#: delay a worker is told to idle before re-fetching when the queue is
#: momentarily empty but the campaign is not finished.
WAIT_DELAY_S = 0.2
#: how long a finished coordinator keeps answering ``fetch`` with
#: ``done`` so workers exit cleanly instead of hitting a closed port.
LINGER_S = 1.5

#: worker exit codes.
EXIT_OK = 0
EXIT_RECONNECTS_EXHAUSTED = 1
EXIT_REJECTED = 2


def _auth_mac(secret: str, role: str, nonce: str) -> str:
    """HMAC-SHA256 proof of secret knowledge over the *other* side's
    nonce.  The role string domain-separates the two directions so a
    coordinator's proof can never be replayed back as a worker's."""
    return hmac.new(secret.encode("utf-8"),
                    ("%s:%s" % (role, nonce)).encode("utf-8"),
                    hashlib.sha256).hexdigest()


def corpus_digest(campaign: Any) -> int:
    """Fingerprint of (app, corpus, registry): a worker whose checkout
    disagrees with the coordinator's must be refused, not trusted to
    produce mergeable outcomes."""
    return fault_seed(campaign.app,
                      *sorted(t.full_name for t in campaign.tests),
                      *sorted(campaign.registry.names()))


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------
class _RemoteWorker:
    """One live worker connection, as the coordinator sees it."""

    _sequence = 0

    def __init__(self, name: str, slots: int) -> None:
        _RemoteWorker._sequence += 1
        #: unique per connection; a reconnect gets a fresh key, so a
        #: stale connection's lease cleanup can never hit the new one.
        self.key = _RemoteWorker._sequence
        self.name = name
        self.slots = max(slots, 1)
        self.alive = True
        self.last_seen = time.monotonic()
        #: test full names currently leased to this connection.
        self.tasks: Set[str] = set()


class _Conn:
    """Per-connection handler state (transport + registered worker)."""

    def __init__(self, transport_: Optional[net.FrameTransport]) -> None:
        self.transport = transport_
        self.worker: Optional[_RemoteWorker] = None
        #: server nonce issued with this connection's auth challenge.
        self.auth_nonce: str = ""
        #: the hello stashed while its sender proves secret knowledge.
        self.pending_hello: Optional[Dict[str, Any]] = None


class Coordinator:
    """Serves one campaign's pending profiles to remote workers.

    All shared state (queue, leases, outcomes, fleet bookkeeping) is
    guarded by one lock; message handling is funnelled through
    :meth:`_handle_message`, which takes and returns plain dicts so the
    protocol is unit-testable without sockets.
    """

    def __init__(self, campaign: Any, profiles: Sequence[Any],
                 checkpoint: Optional[Any],
                 tests_by_name: Mapping[str, UnitTest],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        config = campaign.config
        self.campaign = campaign
        self.profiles = list(profiles)
        self.checkpoint = checkpoint
        self.tests_by_name = tests_by_name
        self.host, self.port = host, port
        self.stats = campaign.distribution
        self.digest = corpus_digest(campaign)
        self.heartbeat_s = config.dist_heartbeat_s
        self.heartbeat_timeout = max(config.dist_heartbeat_timeout_s,
                                     2 * config.dist_heartbeat_s)
        self.lease_deadline = config.dist_lease_deadline_s
        self.max_copies = max(config.dist_max_copies, 1)
        self.join_grace = config.dist_join_grace_s
        self.fleet_grace = config.dist_fleet_grace_s
        self.redelivery = max(config.worker_redelivery, 0)
        self.net_plan = config.net_fault_plan
        #: shared secret for the HMAC challenge-response handshake
        #: (None/"" = open coordinator, legacy hello/welcome).
        self.secret = config.dist_secret

        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        #: (test full name, delivery number), grant order = LPT order.
        self.queue: List[Tuple[str, int]] = [
            (p.test.full_name, 1) for p in self.profiles]
        #: test name -> {"delivery", "holders": {worker keys}, "granted_at"}.
        self.leases: Dict[str, Dict[str, Any]] = {}
        self.outcomes: Dict[str, Any] = {}
        self.workers: List[_RemoteWorker] = []
        from repro.core.report import FleetWorker
        self._fleet: Dict[str, FleetWorker] = {}
        self.halted = False  # degradation tripped: stop granting
        self.closed = False  # serve() is tearing down
        self._fleet_lost_at: Optional[float] = None
        self.address: Tuple[str, int] = (host, port)
        self._listener: Optional[socket.socket] = None
        self._transports: List[net.FrameTransport] = []
        self._conn_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve(self) -> Tuple[Dict[str, Any], List[Any]]:
        """Serve until every profile has an outcome or degradation trips.

        Returns ``(outcomes by test name, remaining profiles)`` —
        ``remaining`` is non-empty exactly when the campaign must finish
        the rest on the local pool.
        """
        self._listen()
        accept_thread = threading.Thread(target=self._accept_loop,
                                         name="dist-accept", daemon=True)
        accept_thread.start()
        started = time.monotonic()
        try:
            with self.cond:
                while True:
                    if len(self.outcomes) == len(self.profiles):
                        break
                    self._police_locked(time.monotonic(), started)
                    if self.halted:
                        break
                    self.cond.wait(timeout=0.05)
            if not self.halted:
                self._linger()
        finally:
            self._teardown()
        remaining = [p for p in self.profiles
                     if p.test.full_name not in self.outcomes]
        self.stats.fleet = [self._fleet[name] for name in sorted(self._fleet)]
        return dict(self.outcomes), remaining

    def _listen(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self.stats.listen = "%s:%d" % self.address

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:  # listener closed: teardown
                return
            with self.lock:
                if self.closed:
                    sock.close()
                    return
                self._conn_seq += 1
                conn_id = "srv-%d" % self._conn_seq
            transport_ = net.FrameTransport(sock, conn_id=conn_id,
                                            plan=self.net_plan,
                                            on_fault=self._count_net_fault)
            with self.lock:
                self._transports.append(transport_)
            threading.Thread(target=self._serve_connection,
                             args=(transport_,),
                             name="dist-%s" % conn_id, daemon=True).start()

    def _serve_connection(self, transport_: net.FrameTransport) -> None:
        conn = _Conn(transport_)
        try:
            while True:
                # A healthy worker heartbeats well inside this window,
                # so a silent read here means the link itself is gone.
                message = transport_.recv(timeout=self.heartbeat_timeout * 2)
                if message.get("kind") == "bye":
                    self._departed(conn, "worker said goodbye",
                                   graceful=True)
                    return
                with self.lock:
                    reply = self._handle_message(conn, message)
                if reply is not None:
                    transport_.send(reply)
        except net.TransportError as exc:
            self._departed(conn, "connection lost: %s" % exc)
        finally:
            transport_.close()

    def _departed(self, conn: _Conn, reason: str,
                  graceful: bool = False) -> None:
        with self.cond:
            if conn.worker is not None and not self.closed:
                self._worker_lost_locked(conn.worker, reason,
                                         graceful=graceful)

    def _linger(self) -> None:
        """Keep answering ``fetch`` with ``done`` briefly so workers
        learn the campaign finished and exit 0 instead of dying on a
        closed port."""
        deadline = time.monotonic() + LINGER_S
        while time.monotonic() < deadline:
            with self.lock:
                if not any(w.alive for w in self.workers):
                    return
            time.sleep(0.02)

    def _teardown(self) -> None:
        with self.lock:
            self.closed = True
            transports = list(self._transports)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for transport_ in transports:
            transport_.close()

    def _count_net_fault(self, kind: str) -> None:
        with self.lock:
            self.stats.net_faults[kind] = \
                self.stats.net_faults.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # protocol (all under self.lock; sockets never touched here)
    # ------------------------------------------------------------------
    def _handle_message(self, conn: _Conn, message: Mapping[str, Any]
                        ) -> Optional[Dict[str, Any]]:
        kind = message.get("kind")
        if kind == "hello":
            if self.secret:
                # Challenge-response folded into the hello/welcome
                # exchange: stash the hello, prove *our* knowledge of the
                # secret over the worker's nonce (mutual auth), and make
                # the worker prove its own over ours before the welcome.
                conn.auth_nonce = os.urandom(16).hex()
                conn.pending_hello = dict(message)
                return {"kind": "challenge", "nonce": conn.auth_nonce,
                        "mac": _auth_mac(self.secret, "coordinator",
                                         str(message.get("nonce") or ""))}
            return self._hello_locked(conn, message)
        if kind == "auth":
            if not self.secret or conn.pending_hello is None:
                return {"kind": "reject", "reason": "unexpected auth"}
            hello, conn.pending_hello = conn.pending_hello, None
            expected = _auth_mac(self.secret, "worker", conn.auth_nonce)
            if not hmac.compare_digest(expected,
                                       str(message.get("mac") or "")):
                self.stats.auth_rejects += 1
                return {"kind": "reject",
                        "reason": "authentication failed (shared secret "
                                  "mismatch)"}
            return self._hello_locked(conn, hello)
        if conn.worker is not None:
            conn.worker.last_seen = time.monotonic()
        if kind == "heartbeat":
            return None
        if conn.worker is None:
            return {"kind": "reject", "reason": "hello first"}
        if kind == "fetch":
            return self._fetch_locked(conn.worker,
                                      int(message.get("max", 1)))
        if kind == "result":
            return self._result_locked(conn.worker, message)
        return {"kind": "reject", "reason": "unknown message %r" % kind}

    def _hello_locked(self, conn: _Conn,
                      message: Mapping[str, Any]) -> Dict[str, Any]:
        # A first-time worker has no campaign yet and sends digest=None;
        # the welcome carries our digest and the worker refuses locally
        # on mismatch.  A reconnecting worker knows its digest, so a
        # skewed checkout is rejected here before it can hold a lease.
        digest = message.get("digest")
        if digest is not None and int(digest) != self.digest:
            return {"kind": "reject",
                    "reason": "corpus digest mismatch: worker %r vs "
                              "coordinator %r — same checkout required"
                              % (digest, self.digest)}
        if self.closed or self.halted:
            return {"kind": "reject", "reason": "coordinator is shutting down"}
        worker = _RemoteWorker(str(message.get("worker") or "worker"),
                               int(message.get("slots", 1)))
        conn.worker = worker
        self.workers.append(worker)
        self.stats.workers_joined += 1
        self._fleet_lost_at = None
        from repro.core.report import FleetWorker
        fleet = self._fleet.setdefault(worker.name,
                                       FleetWorker(worker=worker.name))
        fleet.connects += 1
        campaign = self.campaign
        self.cond.notify_all()
        return {
            "kind": "welcome",
            "app": campaign.app,
            "digest": self.digest,
            "settings": campaign.config.checkpoint_settings(),
            "run_cost_s": campaign.config.run_cost_s,
            "observe": campaign._observing(),
            "heartbeat_s": self.heartbeat_s,
            "heartbeat_timeout_s": self.heartbeat_timeout,
        }

    def _fetch_locked(self, worker: _RemoteWorker,
                      max_tasks: int) -> Dict[str, Any]:
        if not worker.alive:
            return {"kind": "reject", "reason": "connection declared lost"}
        if self.halted or self.closed:
            return {"kind": "done"}
        tasks = []
        while len(tasks) < max(max_tasks, 1):
            lease = self._next_lease_locked(worker)
            if lease is None:
                break
            tasks.append(lease)
        if tasks:
            return {"kind": "lease", "tasks": tasks}
        if len(self.outcomes) == len(self.profiles):
            return {"kind": "done"}
        return {"kind": "wait", "delay": WAIT_DELAY_S}

    def _next_lease_locked(self, worker: _RemoteWorker
                           ) -> Optional[Dict[str, Any]]:
        while self.queue:
            name, delivery = self.queue.pop(0)
            if name in self.outcomes:
                continue  # finished while a redelivery/copy sat queued
            lease = self.leases.get(name)
            if lease is None:
                lease = self.leases[name] = {
                    "delivery": delivery, "holders": set(),
                    "granted_at": time.monotonic()}
            else:
                lease["delivery"] = max(lease["delivery"], delivery)
            if worker.key in lease["holders"]:
                continue  # never hand a worker its own lease again
            lease["holders"].add(worker.key)
            worker.tasks.add(name)
            self.stats.leases_granted += 1
            return {"task": name, "delivery": lease["delivery"]}
        # Queue drained: steal a copy of the oldest outstanding lease so
        # a straggler (or a silent death not yet detected) cannot stall
        # the campaign.  First finisher wins; the rest get suppressed.
        candidates = sorted(
            (lease["granted_at"], name)
            for name, lease in self.leases.items()
            if name not in self.outcomes
            and worker.key not in lease["holders"]
            and len(lease["holders"]) < self.max_copies)
        if not candidates:
            return None
        _, name = candidates[0]
        lease = self.leases[name]
        lease["holders"].add(worker.key)
        worker.tasks.add(name)
        self.stats.leases_granted += 1
        self.stats.steals += 1
        return {"task": name, "delivery": lease["delivery"]}

    def _result_locked(self, worker: _RemoteWorker,
                       message: Mapping[str, Any]) -> Dict[str, Any]:
        name = str(message["task"])
        ack = {"kind": "ack", "task": name}
        worker.tasks.discard(name)
        lease = self.leases.get(name)
        if lease is not None:
            lease["holders"].discard(worker.key)
        if name in self.outcomes:
            # A resend after a lost ack, or a stolen copy finishing
            # second: ack it (the worker must stop resending) but the
            # committed outcome stands — no double counting, ever.
            self.stats.duplicates_suppressed += 1
            return ack
        if name not in self.tests_by_name and not any(
                p.test.full_name == name for p in self.profiles):
            return ack  # not ours; ack to stop the resend loop
        outcome = parallel.profile_outcome_from_dict(message["outcome"],
                                                     self.tests_by_name)
        # The same commit path every backend uses: tracker replay,
        # immediate test-done journaling, live observability fold.
        parallel.commit_outcome(self.campaign, self.checkpoint, name, outcome)
        self.outcomes[name] = outcome
        self.leases.pop(name, None)
        self.stats.remote_profiles += 1
        self._fleet[worker.name].profiles += 1
        self.cond.notify_all()
        return ack

    # ------------------------------------------------------------------
    # failure policy (heartbeats, lease deadlines, degradation)
    # ------------------------------------------------------------------
    def _police_locked(self, now: float, started: float) -> None:
        for worker in list(self.workers):
            if (worker.alive
                    and now - worker.last_seen > self.heartbeat_timeout):
                self.stats.heartbeat_expiries += 1
                self._worker_lost_locked(
                    worker, "no heartbeat for %.1fs" % self.heartbeat_timeout)
        if self.lease_deadline is not None:
            for name, lease in list(self.leases.items()):
                if now - lease["granted_at"] <= self.lease_deadline:
                    continue
                # The holders may be alive-but-stuck; their late result
                # is still accepted (idempotently) if it ever arrives.
                self.stats.lease_expiries += 1
                for worker in self.workers:
                    worker.tasks.discard(name)
                del self.leases[name]
                self._requeue_or_quarantine_locked(
                    name, lease["delivery"],
                    "lease exceeded the %.1fs deadline" % self.lease_deadline)
        alive = any(w.alive for w in self.workers)
        if self.stats.workers_joined == 0:
            if now - started > self.join_grace:
                self._degrade_locked("no remote worker joined within %.1fs"
                                     % self.join_grace)
        elif not alive:
            if self._fleet_lost_at is None:
                self._fleet_lost_at = now
            elif now - self._fleet_lost_at > self.fleet_grace:
                self._degrade_locked(
                    "fleet lost: no live worker for %.1fs" % self.fleet_grace)
        else:
            self._fleet_lost_at = None

    def _worker_lost_locked(self, worker: _RemoteWorker, reason: str,
                            graceful: bool = False) -> None:
        if not worker.alive:
            return
        worker.alive = False
        self.workers.remove(worker)
        if not graceful:
            self.stats.workers_lost += 1
            self._fleet[worker.name].leases_lost += len(worker.tasks)
            obs = self.campaign.observation
            if obs is not None:
                # Failure-only event, like the supervisor's worker-death:
                # healthy-run span trees stay backend-identical.
                obs.event("dist-worker-lost", kind="coordinator",
                          worker=worker.name, reason=reason,
                          leases=len(worker.tasks))
        for name in sorted(worker.tasks):
            lease = self.leases.get(name)
            if lease is None:
                continue
            lease["holders"].discard(worker.key)
            if lease["holders"] or name in self.outcomes:
                continue  # a stolen copy is still running it
            del self.leases[name]
            self._requeue_or_quarantine_locked(
                name, lease["delivery"],
                "worker %r lost while holding the lease (%s)"
                % (worker.name, reason))
        worker.tasks.clear()
        self.cond.notify_all()

    def _requeue_or_quarantine_locked(self, name: str, delivery: int,
                                      reason: str) -> None:
        if delivery <= self.redelivery:
            self.stats.redeliveries += 1
            self.queue.append((name, delivery + 1))
            return
        # Same poison escalation as the supervised pool: record a
        # WORKER_CRASH outcome (journaled — a resume does not retry it).
        from repro.core.orchestrator import ProfileOutcome
        outcome = ProfileOutcome(
            error="%s; profile quarantined after %d deliveries"
                  % (reason, delivery),
            error_kind=WORKER_CRASH)
        parallel.commit_outcome(self.campaign, self.checkpoint, name, outcome)
        self.outcomes[name] = outcome
        self.stats.quarantined += 1
        obs = self.campaign.observation
        if obs is not None:
            obs.event("dist-quarantine", kind="coordinator", test=name,
                      reason=reason)
        self.cond.notify_all()

    def _degrade_locked(self, reason: str) -> None:
        if self.halted:
            return
        self.halted = True
        self.stats.degraded_to_local = True
        obs = self.campaign.observation
        if obs is not None:
            obs.event("dist-degraded", kind="coordinator", reason=reason)
        trace = self.campaign.config.trace
        if trace is not None:
            trace.emit("dist-degraded", app=self.campaign.app, reason=reason)
        self.cond.notify_all()


# ---------------------------------------------------------------------------
# orchestrator entry point
# ---------------------------------------------------------------------------
def run_profiles_distributed(campaign: Any, profiles: Sequence[Any],
                             checkpoint: Optional[Any],
                             tests_by_name: Mapping[str, UnitTest]
                             ) -> List[Any]:
    """Run ``profiles`` over the remote fleet, locally finishing whatever
    the fleet could not.  Outcomes come back aligned with ``profiles``."""
    config = campaign.config
    host, port = net.parse_address(config.distributed)
    campaign.distribution.enabled = True
    # LPT grant order: pure makespan, the fold stays catalog-ordered.
    order = (campaign.cost_model.lpt_order(profiles)
             if config.schedule == "lpt" else list(profiles))
    coordinator = Coordinator(campaign, order, checkpoint, tests_by_name,
                              host=host, port=port)
    outcomes, remaining = coordinator.serve()
    if remaining:
        # Graceful degradation: the local machine finishes the campaign
        # with whichever backend ``workers`` selects.  ``remaining``
        # keeps LPT order, which is what the local pool wants anyway.
        campaign.distribution.local_profiles = len(remaining)
        if config.workers > 1:
            from repro.core.supervise import run_profiles_parallel
            fresh = run_profiles_parallel(campaign, remaining, checkpoint,
                                          tests_by_name)
            for profile, outcome in zip(remaining, fresh):
                outcomes[profile.test.full_name] = outcome
        else:
            for profile in remaining:
                outcome = campaign._run_profile_contained(profile, checkpoint)
                campaign._profile_committed(outcome)
                outcomes[profile.test.full_name] = outcome
    return [outcomes[p.test.full_name] for p in profiles]


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
def _config_from_settings(settings: Mapping[str, Any], run_cost_s: float,
                          observe: bool, base: Any) -> Any:
    """Coordinator-sent findings-shaping settings + local execution shape
    (worker count, backend, supervision knobs) -> the worker's config."""
    from repro.common.faults import FaultPlan
    from repro.core.orchestrator import CampaignConfig
    plan_record = settings.get("fault_plan")
    fault_plan = None
    if plan_record is not None:
        data = dict(plan_record)
        for key in ("delay_range_s", "crash_window_s", "restart_delay_s"):
            if key in data:
                data[key] = tuple(data[key])
        fault_plan = FaultPlan(**data)
    only = settings.get("only_params")
    return CampaignConfig(
        alpha=settings["alpha"],
        max_trials=settings["max_trials"],
        blacklist_threshold=settings["blacklist_threshold"],
        max_value_pairs=settings["max_value_pairs"],
        max_pool_size=settings["max_pool_size"],
        disable_ipc_sharing=settings["disable_ipc_sharing"],
        only_params=None if only is None else frozenset(only),
        fault_plan=fault_plan,
        infra_retries=settings["infra_retries"],
        watchdog_sim_s=settings["watchdog_sim_s"],
        exec_cache=settings["exec_cache"],
        run_cost_s=run_cost_s,
        observe=observe,
        # Local-execution shape (never findings-bearing): the worker's
        # own durable store and its disk chaos come from its own flags,
        # not the coordinator's — store paths do not travel between
        # hosts, and the content-addressed keys make sharing safe.
        store_path=base.store_path,
        disk_fault_plan=base.disk_fault_plan,
        dist_secret=base.dist_secret,
        workers=base.workers,
        parallel_backend=base.parallel_backend,
        supervise=base.supervise,
        schedule=base.schedule,
        profile_deadline_s=base.profile_deadline_s,
        worker_rlimit_cpu_s=base.worker_rlimit_cpu_s,
        worker_rlimit_mem_mb=base.worker_rlimit_mem_mb,
        worker_redelivery=base.worker_redelivery,
        crash_loop_threshold=base.crash_loop_threshold,
        heartbeat_timeout_s=base.heartbeat_timeout_s)


def catalog_campaign_factory(app: str, config: Any) -> Any:
    """Default factory: build the worker's campaign from the app catalog
    (both sides must share the checkout; the corpus digest enforces it)."""
    from repro.apps import catalog
    from repro.core.orchestrator import Campaign
    spec = catalog.spec_for(app)
    return Campaign(app=app, registry=spec.registry,
                    dependency_rules=spec.dependency_rules, config=config)


class _OutcomeShipper:
    """Ships outcomes with acks; stashes what the wire loses for resend.

    At-least-once delivery lives here: every outcome enters ``unacked``
    before the send, and leaves only on a matching ack.  A transport
    failure (or a dropped/partitioned ack) marks the shipper broken; the
    batch finishes locally and the reconnect loop resends everything
    still unacked — the coordinator's duplicate suppression makes the
    resend safe.
    """

    def __init__(self, control_timeout: float) -> None:
        self.transport: Optional[net.FrameTransport] = None
        self.control_timeout = control_timeout
        self.deliveries: Dict[str, int] = {}
        self.unacked: Dict[str, Dict[str, Any]] = {}
        self.broken = False

    def ship(self, name: str, outcome: Any) -> None:
        """Send one profile outcome and wait for its ack (stash first)."""
        message = {"kind": "result", "task": name,
                   "delivery": self.deliveries.get(name, 1),
                   "outcome": parallel.profile_outcome_to_dict(outcome)}
        self.unacked[name] = message
        if not self.broken:
            self._send_one(name, message)

    def _send_one(self, name: str, message: Dict[str, Any]) -> None:
        try:
            self.transport.send(message)
            reply = self.transport.recv(timeout=self.control_timeout)
        except net.TransportError:
            self.broken = True
            return
        if reply.get("kind") == "ack" and reply.get("task") == name:
            self.unacked.pop(name, None)
        else:
            self.broken = True

    def resend_unacked(self) -> None:
        """After a reconnect: replay every stashed outcome, oldest first.

        Stops at the first failure and leaves the rest stashed for the
        next reconnect; duplicates are suppressed coordinator-side.
        """
        for name in sorted(self.unacked):
            if self.broken:
                return
            self._send_one(name, self.unacked[name])


def run_worker(connect: str, worker_config: Optional[Any] = None,
               campaign_factory: Any = catalog_campaign_factory,
               name: str = "", net_fault_plan: Optional[net.NetFaultPlan] = None,
               max_reconnects: int = 8, backoff_base_s: float = 0.2,
               backoff_cap_s: float = 5.0,
               log: Any = None) -> int:
    """The ``repro worker --connect`` process: pull leases, run profiles
    on the local (supervised) pool, stream outcomes back.  Returns a
    process exit code."""
    from repro.core.orchestrator import CampaignConfig
    host, port = net.parse_address(connect)
    base = worker_config if worker_config is not None else CampaignConfig()
    worker_name = name or "%s-%d" % (socket.gethostname(), id(base) % 10000)
    if log is None:
        def say(text: str) -> None:
            pass
    elif callable(log):
        say = log
    else:  # a stream (the CLI passes sys.stderr)
        def say(text: str) -> None:
            print(text, file=log, flush=True)

    campaign = None
    campaign_app = None
    profiles_by_name: Dict[str, Any] = {}
    tests_by_name: Dict[str, UnitTest] = {}
    shipper: Optional[_OutcomeShipper] = None
    previous_sharing = None
    failures = 0
    attempt = 0
    try:
        while True:
            if failures > max_reconnects:
                say("worker %s: giving up after %d failed reconnect "
                    "attempts" % (worker_name, failures))
                return EXIT_RECONNECTS_EXHAUSTED
            if failures:
                # Exponential backoff with jitter: a rebooting fleet must
                # not reconnect in lockstep and stampede the coordinator.
                delay = min(backoff_cap_s,
                            backoff_base_s * (2 ** (failures - 1)))
                time.sleep(delay * (0.5 + random.random() * 0.5))
            attempt += 1
            stop_beating = threading.Event()
            transport_ = None
            try:
                transport_ = net.connect(
                    host, port, timeout=5.0,
                    conn_id="%s#%d" % (worker_name, attempt),
                    plan=net_fault_plan)
                worker_nonce = os.urandom(16).hex()
                transport_.send({"kind": "hello", "worker": worker_name,
                                 "slots": max(base.workers, 1),
                                 "nonce": worker_nonce,
                                 "digest": (corpus_digest(campaign)
                                            if campaign is not None else None)})
                welcome = transport_.recv(timeout=CONTROL_TIMEOUT_S)
                if welcome.get("kind") == "challenge":
                    secret = base.dist_secret
                    if not secret:
                        say("worker %s: coordinator requires a shared "
                            "secret (--dist-secret / REPRO_DIST_SECRET)"
                            % worker_name)
                        return EXIT_REJECTED
                    coordinator_proof = _auth_mac(secret, "coordinator",
                                                  worker_nonce)
                    if not hmac.compare_digest(
                            coordinator_proof,
                            str(welcome.get("mac") or "")):
                        say("worker %s: coordinator failed mutual "
                            "authentication; refusing to join"
                            % worker_name)
                        return EXIT_REJECTED
                    transport_.send({"kind": "auth", "mac": _auth_mac(
                        secret, "worker", str(welcome.get("nonce") or ""))})
                    welcome = transport_.recv(timeout=CONTROL_TIMEOUT_S)
                elif base.dist_secret and welcome.get("kind") == "welcome":
                    # Mutual requirement: a worker carrying a secret must
                    # not hand results to a coordinator that never proved
                    # it holds the same one.
                    say("worker %s: coordinator did not authenticate; "
                        "refusing to join" % worker_name)
                    return EXIT_REJECTED
                if welcome.get("kind") == "reject":
                    say("worker %s: rejected: %s"
                        % (worker_name, welcome.get("reason")))
                    return EXIT_REJECTED
                if welcome.get("kind") != "welcome":
                    raise net.TransportError("expected welcome, got %r"
                                             % welcome.get("kind"))
                if campaign is None or campaign_app != welcome["app"]:
                    config = _config_from_settings(
                        welcome["settings"], welcome["run_cost_s"],
                        bool(welcome.get("observe")), base)
                    campaign = campaign_factory(welcome["app"], config)
                    campaign.config.trace = None  # parent-only channel
                    campaign_app = welcome["app"]
                    if corpus_digest(campaign) != welcome["digest"]:
                        say("worker %s: local corpus for %r does not match "
                            "the coordinator's" % (worker_name, campaign_app))
                        transport_.send({"kind": "bye"})
                        return EXIT_REJECTED
                    from repro.common.ipc import set_ipc_sharing
                    previous_sharing = set_ipc_sharing(
                        not config.disable_ipc_sharing)
                    campaign._cache = campaign._build_cache()
                    profiles = prerun_corpus(campaign.tests)
                    profiles_by_name = {p.test.full_name: p
                                        for p in profiles if p.usable}
                    tests_by_name = {t.full_name: t for t in campaign.tests}
                    shipper = _OutcomeShipper(
                        max(welcome.get("heartbeat_timeout_s",
                                        CONTROL_TIMEOUT_S), 1.0))
                shipper.transport = transport_
                shipper.broken = False
                failures = 0

                heartbeat_every = max(welcome.get("heartbeat_s", 1.0), 0.01)
                _start_heartbeat(transport_, stop_beating, heartbeat_every)
                shipper.resend_unacked()
                if shipper.broken:
                    raise net.TransportError("resend of unacked results "
                                             "failed")
                verdict = _serve_leases(campaign, transport_, shipper,
                                        profiles_by_name, tests_by_name,
                                        base)
                if verdict == "done":
                    try:
                        transport_.send({"kind": "bye"})
                    except net.TransportError:
                        pass
                    say("worker %s: campaign complete" % worker_name)
                    return EXIT_OK
                raise net.TransportError("connection must be rebuilt")
            except net.TransportError as exc:
                failures += 1
                say("worker %s: %s (reconnect %d/%d)"
                    % (worker_name, exc, failures, max_reconnects))
            finally:
                stop_beating.set()
                if transport_ is not None:
                    transport_.close()
    finally:
        if previous_sharing is not None:
            from repro.common.ipc import set_ipc_sharing
            set_ipc_sharing(previous_sharing)


def _start_heartbeat(transport_: net.FrameTransport, stop: threading.Event,
                     every: float) -> None:
    """One-way heartbeats from a side thread (send is thread-safe); a
    transport failure just stops the thread — the request loop hits the
    same failure and owns the reconnect."""
    def _beat() -> None:
        while not stop.wait(every):
            try:
                transport_.send({"kind": "heartbeat"})
            except net.TransportError:
                return

    threading.Thread(target=_beat, name="dist-heartbeat",
                     daemon=True).start()


def _serve_leases(campaign: Any, transport_: net.FrameTransport,
                  shipper: _OutcomeShipper,
                  profiles_by_name: Mapping[str, Any],
                  tests_by_name: Mapping[str, UnitTest],
                  base: Any) -> str:
    """Fetch/run/ship until the coordinator says done.  Returns "done" on
    a clean finish; raises TransportError when the link must be rebuilt."""
    while True:
        transport_.send({"kind": "fetch",
                         "max": max(campaign.config.workers, 1)})
        reply = transport_.recv(timeout=shipper.control_timeout)
        kind = reply.get("kind")
        if kind == "done":
            return "done"
        if kind == "wait":
            time.sleep(min(float(reply.get("delay", WAIT_DELAY_S)), 5.0))
            continue
        if kind == "reject":
            raise net.TransportError("coordinator rejected the fetch: %s"
                                     % reply.get("reason"))
        if kind != "lease":
            raise net.TransportError("expected a lease, got %r" % kind)
        batch = [(str(t["task"]), int(t.get("delivery", 1)))
                 for t in reply.get("tasks", ())]
        shipper.deliveries.update(dict(batch))
        _run_batch(campaign, batch, shipper, profiles_by_name, tests_by_name)
        if shipper.broken:
            raise net.TransportError("lost the link while shipping results")


def _run_batch(campaign: Any, batch: Sequence[Tuple[str, int]],
               shipper: _OutcomeShipper,
               profiles_by_name: Mapping[str, Any],
               tests_by_name: Mapping[str, UnitTest]) -> None:
    """Run one lease batch on the local pool, shipping each outcome as it
    commits (the supervised pool streams through its outcome sink)."""
    from repro.core.orchestrator import HARNESS_ERROR, ProfileOutcome
    from repro.core.supervise import (Supervisor,
                                      _run_profile_contained_noraise)
    runnable = []
    for task, _ in batch:
        profile = profiles_by_name.get(task)
        if profile is None:
            # Digest-matched corpora cannot disagree on usability, but a
            # confused lease must still produce *an* outcome or the
            # coordinator waits forever.
            shipper.ship(task, ProfileOutcome(
                error="worker has no usable profile %r" % task,
                error_kind=HARNESS_ERROR))
            continue
        runnable.append(profile)
    if not runnable:
        return
    config = campaign.config
    if (config.workers > 1 and config.parallel_backend == "process"
            and config.supervise and parallel.fork_available()):
        # The whole supervised-pool failure story (crash containment,
        # redelivery, deadlines, rlimits, its own quarantine) applies to
        # each remote batch; its commit hook doubles as our ship hook.
        supervisor = Supervisor(campaign, runnable, None, tests_by_name,
                                outcome_sink=shipper.ship)
        campaign.supervision = supervisor.stats
        supervisor.run()
    else:
        for profile in runnable:
            outcome = _run_profile_contained_noraise(campaign, profile)
            parallel.commit_outcome(campaign, None,
                                    profile.test.full_name, outcome,
                                    replay_tracker=False)
            shipper.ship(profile.test.full_name, outcome)
