"""Integration-test support: per-node configuration files (§3.2, §6.1).

"To run a unit test with a heterogeneous configuration, ConfAgent needs
to be able to control the configuration values at each node.  This would
be trivial in a real distributed setting or in an integration test, in
which each node would be running as a process: we could give each node a
separate configuration file."

This module provides that trivial path for our in-process clusters: a
:class:`FileAssignment` maps explicit per-node configuration "files"
(plain dicts) onto ConfAgent's injection interface, so integration-style
tests — where the author states each node's full configuration — run
through the very same machinery as generated campaigns.

Node selectors:

* ``"NameNode"``      — every node of the type
* ``"DataNode[1]"``   — the node with index 1 of the type
* ``"*"``             — every entity, including the test/client
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.confagent import NO_OVERRIDE, ConfAgent

_SELECTOR = re.compile(r"^(?P<type>[^\[\]]+)(\[(?P<index>\d+)\])?$")


class FileAssignment:
    """Per-node configuration files as a ConfAgent assignment.

    Resolution order for a ``(node_type, index, param)`` read: the exact
    ``Type[index]`` file, then the ``Type`` file, then the ``*`` file,
    then no override (the node's own object/defaults).
    """

    def __init__(self, files: Mapping[str, Mapping[str, Any]]) -> None:
        self._exact: Dict[Tuple[str, int], Dict[str, Any]] = {}
        self._by_type: Dict[str, Dict[str, Any]] = {}
        self._wildcard: Dict[str, Any] = {}
        for selector, values in files.items():
            if selector == "*":
                self._wildcard = dict(values)
                continue
            match = _SELECTOR.match(selector)
            if match is None:
                raise ValueError("bad node selector %r" % selector)
            node_type = match.group("type")
            index = match.group("index")
            if index is None:
                self._by_type[node_type] = dict(values)
            else:
                self._exact[(node_type, int(index))] = dict(values)

    def value_for(self, node_type: str, node_index: int, name: str) -> Any:
        for source in (self._exact.get((node_type, node_index)),
                       self._by_type.get(node_type),
                       self._wildcard):
            if source is not None and name in source:
                return source[name]
        return NO_OVERRIDE


def integration_session(files: Mapping[str, Mapping[str, Any]]) -> ConfAgent:
    """A ConfAgent session that deploys the given per-node config files.

    >>> with integration_session({
    ...     "NameNode": {"dfs.heartbeat.interval": 3},
    ...     "DataNode[1]": {"dfs.heartbeat.interval": 3000},
    ... }):
    ...     cluster = MiniDFSCluster(HdfsConfiguration(), num_datanodes=2)
    ...     ...
    """
    return ConfAgent(assignment=FileAssignment(files))
