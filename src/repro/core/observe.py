"""Campaign observability: spans, metrics, exporters, live progress.

ZebraConf campaigns run thousands of (test, parameter, assignment)
instances through pooling, bisection, caching, and a supervised worker
fleet.  This module is the window into a run:

* **Spans** — a hierarchical trace (app > prerun/profile > pool >
  bisection > instance > trial) where every span carries *two* clocks:

  - ``wall_*``   — real ``time.time()`` seconds, for humans and Perfetto;
  - ``sim_*``    — modelled machine seconds (executions x ``run_cost_s``
    plus retry backoff), which are **deterministic**: the same seeded
    campaign produces the same sim-timeline no matter the backend,
    scheduling, or host load.

* **Metrics** — a declared catalog of counters, gauges, and fixed-bucket
  histograms.  Merges are commutative (counters/histograms sum, gauges
  take max), so worker results folded in completion order still yield a
  byte-identical snapshot.  Metrics whose values depend on *how* the
  campaign ran rather than *what it computed* (worker spawns, wall-clock
  histograms, cache occupancy) are flagged ``volatile`` and excluded
  from the deterministic snapshot by default.

* **Exporters** — JSONL span dumps, a Chrome ``trace_event`` file
  loadable in Perfetto / ``chrome://tracing``, and a Prometheus-style
  text snapshot — plus validators for each format so CI can gate on
  schema-valid artifacts without external dependencies.

Worker-side collection: each profile gets its own :class:`Observation`
(single-threaded by construction), serialised via :meth:`Observation.
to_wire` into the ``ProfileOutcome`` that already crosses the
process/supervision boundary, and folded into the campaign-level
observation in the parent — metrics at commit time (so the live
progress line stays current), spans at the end of the run in
deterministic profile order (see ``orchestrator.Campaign``).
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    TextIO, Tuple)

__all__ = [
    "METRIC_CATALOG",
    "MetricSpec",
    "MetricsRegistry",
    "Span",
    "Observation",
    "ProgressReporter",
    "phase_costs",
    "write_spans_jsonl",
    "write_chrome_trace",
    "write_metrics_text",
    "validate_spans_jsonl",
    "validate_chrome_trace",
    "validate_metrics_text",
    "read_metrics_totals",
    "reconcile_with_report",
]

# --------------------------------------------------------------------------
# metric catalog
# --------------------------------------------------------------------------

#: Span kinds, outermost first.  "parameter" from the paper's hierarchy
#: does not exist as a span level — pooled testing deliberately runs
#: *many* parameters per execution — so parameters ride along as span
#: attributes instead (see docs/OBSERVABILITY.md).
SPAN_KINDS = ("app", "prerun", "audit", "profile", "pool", "bisection",
              "instance", "trial", "supervisor")

#: Modelled machine-seconds bucket boundaries.  Executions cost whole
#: multiples of ``run_cost_s`` (default 60s), so buckets are chosen in
#: execution-count terms: 1, 2, 4, ... executions at the default cost.
_MACHINE_SECONDS_BUCKETS = (60.0, 120.0, 240.0, 480.0, 960.0, 1920.0,
                            3840.0, 7680.0, 15360.0, 30720.0)
_EXECUTION_COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                            256.0, 512.0)
_POOL_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
_WALL_SECONDS_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: its kind, meaning, and merge semantics."""

    kind: str                          # "counter" | "gauge" | "histogram"
    help: str
    volatile: bool = False             # run-scoped; excluded from the
    #                                  # deterministic snapshot
    buckets: Tuple[float, ...] = ()    # histograms only; fixed boundaries


#: Every metric the campaign may emit.  Names outside this catalog are
#: rejected at emit time — the catalog IS the schema.
METRIC_CATALOG: Dict[str, MetricSpec] = {
    # -- deterministic: same seeded campaign => same values, any backend
    "zc_executions_total": MetricSpec(
        "counter", "Unit-test executions performed by profile runners "
        "(excludes prerun)."),
    "zc_prerun_executions_total": MetricSpec(
        "counter", "Instrumented pre-run executions used to learn node "
        "groups and parameter usage."),
    "zc_machine_seconds_total": MetricSpec(
        "counter", "Modelled machine time: executions x run_cost_s plus "
        "retry backoff."),
    "zc_backoff_seconds_total": MetricSpec(
        "counter", "Modelled machine time spent in infra-retry backoff."),
    "zc_infra_retries_total": MetricSpec(
        "counter", "Infrastructure-error retries performed by runners."),
    "zc_exec_cache_hits_total": MetricSpec(
        "counter", "Executions answered from the execution cache."),
    "zc_exec_cache_misses_total": MetricSpec(
        "counter", "Cacheable executions that ran and were stored."),
    "zc_exec_cache_bypasses_total": MetricSpec(
        "counter", "Executions that bypassed the cache (fault injection "
        "active, or caching disabled for the trial)."),
    "zc_pool_runs_total": MetricSpec(
        "counter", "Pooled executions at bisection depth 0."),
    "zc_bisection_runs_total": MetricSpec(
        "counter", "Pooled executions at bisection depth > 0."),
    "zc_singleton_instances_total": MetricSpec(
        "counter", "Instances that reached Definition-3.1 singleton "
        "evaluation."),
    "zc_pools_cleared_total": MetricSpec(
        "counter", "Pools whose every variant passed, clearing all "
        "members at once."),
    "zc_params_cleared_in_pools_total": MetricSpec(
        "counter", "Parameters cleared by a passing pool."),
    "zc_interference_events_total": MetricSpec(
        "counter", "Pools voided because a pooled parameter interfered "
        "with the others."),
    "zc_pool_voids_total": MetricSpec(
        "counter", "Pool runs voided (interference or repeated infra "
        "failure)."),
    "zc_pool_infra_giveups_total": MetricSpec(
        "counter", "Pool runs abandoned after exhausting infra retries."),
    "zc_blacklist_skips_total": MetricSpec(
        "counter", "Instances skipped because the parameter was "
        "blacklisted as a frequent failer."),
    "zc_already_confirmed_skips_total": MetricSpec(
        "counter", "Instances skipped because the parameter was already "
        "confirmed unsafe for the group."),
    "zc_faults_injected_total": MetricSpec(
        "counter", "Deterministic faults injected, by kind."),
    "zc_instance_verdicts_total": MetricSpec(
        "counter", "Singleton instances evaluated, by verdict."),
    "zc_profiles_total": MetricSpec(
        "counter", "Unit-test profiles finished, by status."),
    "zc_instance_executions": MetricSpec(
        "histogram", "Executions consumed per singleton instance "
        "(Definition 3.1 plus hypothesis-testing re-runs).",
        buckets=_EXECUTION_COUNT_BUCKETS),
    "zc_instance_machine_seconds": MetricSpec(
        "histogram", "Modelled machine seconds per singleton instance.",
        buckets=_MACHINE_SECONDS_BUCKETS),
    "zc_profile_machine_seconds": MetricSpec(
        "histogram", "Modelled machine seconds per unit-test profile.",
        buckets=_MACHINE_SECONDS_BUCKETS),
    "zc_pool_size": MetricSpec(
        "histogram", "Parameters per depth-0 pool run.",
        buckets=_POOL_SIZE_BUCKETS),
    "zc_pool_max_depth": MetricSpec(
        "gauge", "Deepest bisection recursion reached."),
    "zc_sched_predicted_executions_total": MetricSpec(
        "counter", "Cost-model predicted executions summed over usable "
        "profiles (analytic, emitted identically on every backend)."),
    "zc_sched_prediction_error_executions_total": MetricSpec(
        "counter", "Sum of |predicted - actual| executions over usable "
        "profiles: the cost model's absolute forecasting error."),
    "zc_audit_params_total": MetricSpec(
        "counter", "Registry parameters audited by the wiring audit, "
        "by verdict (WIRED / UNREAD / READ_BUT_INERT)."),
    "zc_audit_probe_executions_total": MetricSpec(
        "counter", "Differential probe executions performed by the "
        "wiring audit (accounted separately from campaign executions)."),
    "zc_audit_probe_cache_hits_total": MetricSpec(
        "counter", "Audit probes answered from the per-audit memo "
        "instead of executing."),
    "zc_audit_probes_collapsed_total": MetricSpec(
        "counter", "Audit probes skipped because their canonical form "
        "collapsed onto the original-configuration baseline."),
    "zc_audit_machine_seconds_total": MetricSpec(
        "counter", "Modelled machine time of audit probe executions "
        "(probe executions x run_cost_s; separate budget from "
        "zc_machine_seconds_total)."),
    # -- volatile: depends on backend/host, excluded from the
    # -- deterministic snapshot (rendered only with include_volatile)
    "zc_runtime_workers_spawned_total": MetricSpec(
        "counter", "Supervised worker processes spawned.", volatile=True),
    "zc_runtime_worker_crashes_total": MetricSpec(
        "counter", "Supervised workers that died mid-profile.",
        volatile=True),
    "zc_runtime_respawns_total": MetricSpec(
        "counter", "Replacement workers spawned after a death.",
        volatile=True),
    "zc_runtime_redeliveries_total": MetricSpec(
        "counter", "Profiles redelivered to a fresh worker after a "
        "crash.", volatile=True),
    "zc_runtime_deadline_kills_total": MetricSpec(
        "counter", "Workers SIGKILLed for exceeding the profile "
        "deadline.", volatile=True),
    "zc_runtime_heartbeat_kills_total": MetricSpec(
        "counter", "Workers SIGKILLed for missing heartbeats.",
        volatile=True),
    "zc_runtime_worker_recycles_total": MetricSpec(
        "counter", "Workers retired after reaching their per-worker "
        "profile budget.", volatile=True),
    "zc_runtime_quarantined_total": MetricSpec(
        "counter", "Profiles quarantined as WORKER_CRASH.", volatile=True),
    "zc_runtime_profile_wall_seconds": MetricSpec(
        "histogram", "Real wall-clock seconds per profile (host/load "
        "dependent).", volatile=True, buckets=_WALL_SECONDS_BUCKETS),
    "zc_runtime_exec_cache_entries": MetricSpec(
        "gauge", "Execution-cache entries at campaign end, by tier "
        "(cache sharing differs per backend).", volatile=True),
    "zc_runtime_sim_timers_cancelled_total": MetricSpec(
        "counter", "Simulation timers cancelled while still in a heap "
        "(kernel fast-path accounting; run-shape dependent).",
        volatile=True),
    "zc_runtime_sim_heap_compactions_total": MetricSpec(
        "counter", "Threshold-triggered simulation-heap compaction "
        "sweeps.", volatile=True),
    "zc_runtime_sim_timers_compacted_total": MetricSpec(
        "counter", "Cancelled heap entries removed by compaction sweeps.",
        volatile=True),
    "zc_dist_workers_joined_total": MetricSpec(
        "counter", "Remote worker connections that completed the "
        "hello/welcome handshake.", volatile=True),
    "zc_dist_workers_lost_total": MetricSpec(
        "counter", "Remote worker connections declared lost (EOF, "
        "reset, heartbeat silence).", volatile=True),
    "zc_dist_leases_granted_total": MetricSpec(
        "counter", "Profile leases granted to remote workers (includes "
        "stolen copies).", volatile=True),
    "zc_dist_redeliveries_total": MetricSpec(
        "counter", "Leases re-queued after their holder was lost or the "
        "lease deadline expired.", volatile=True),
    "zc_dist_lease_steals_total": MetricSpec(
        "counter", "Work-stealing copies granted of still-outstanding "
        "leases.", volatile=True),
    "zc_dist_duplicate_outcomes_total": MetricSpec(
        "counter", "Remote results acked but dropped because the profile "
        "was already committed.", volatile=True),
    "zc_dist_heartbeat_expiries_total": MetricSpec(
        "counter", "Remote workers declared lost for heartbeat silence.",
        volatile=True),
    "zc_dist_lease_expiries_total": MetricSpec(
        "counter", "Leases re-queued for exceeding the lease deadline.",
        volatile=True),
    "zc_dist_quarantined_total": MetricSpec(
        "counter", "Profiles quarantined by the coordinator after "
        "exhausting lease redelivery.", volatile=True),
    "zc_dist_remote_profiles_total": MetricSpec(
        "counter", "Profiles committed from remote worker outcomes.",
        volatile=True),
    "zc_dist_local_fallback_profiles_total": MetricSpec(
        "counter", "Profiles finished by the local pool after the "
        "coordinator degraded.", volatile=True),
    "zc_dist_net_faults_total": MetricSpec(
        "counter", "Injected transport faults on coordinator-side "
        "connections, by kind.", volatile=True),
    "zc_dist_auth_rejects_total": MetricSpec(
        "counter", "Connections refused by the HMAC handshake (bad or "
        "missing shared secret).", volatile=True),
    # Result-store counters live in their own zc_store_* budget and are
    # volatile by construction: what a store serves depends on the
    # campaigns that ran before this one, not on this one's findings.
    "zc_store_hits_total": MetricSpec(
        "counter", "Cache lookups served from the persistent store.",
        volatile=True),
    "zc_store_misses_total": MetricSpec(
        "counter", "Cache lookups that missed memory and the persistent "
        "store (true cold).", volatile=True),
    "zc_store_appends_total": MetricSpec(
        "counter", "Records durably appended to the store.", volatile=True),
    "zc_store_salvaged_records_total": MetricSpec(
        "counter", "Intact records recovered from damaged segments at "
        "open.", volatile=True),
    "zc_store_corrupt_records_total": MetricSpec(
        "counter", "Damage events (bad CRC/magic/length) skipped at "
        "open.", volatile=True),
    "zc_store_truncated_tails_total": MetricSpec(
        "counter", "Segments ending in an incomplete frame (interrupted "
        "final append).", volatile=True),
    "zc_store_stale_refused_total": MetricSpec(
        "counter", "Same-app entries refused for a mismatched corpus "
        "digest.", volatile=True),
    "zc_store_write_errors_total": MetricSpec(
        "counter", "Failed store appends (the writer degrades to "
        "read-only after the first).", volatile=True),
    "zc_store_entries_loaded": MetricSpec(
        "gauge", "Entries served from disk for this campaign's "
        "substrate at open.", volatile=True),
    # Incremental-plan counters (repro.core.plan) are volatile by
    # construction: the classification depends on what earlier campaigns
    # left in the store, not on what this one finds.
    "zc_plan_profiles_total": MetricSpec(
        "counter", "Profiles classified by the incremental planner, by "
        "decision (reuse/rerun/new).", volatile=True),
    "zc_plan_demoted_profiles_total": MetricSpec(
        "counter", "REUSE candidates demoted to RERUN by the blacklist-"
        "coupling closure.", volatile=True),
    "zc_plan_executions_saved_total": MetricSpec(
        "counter", "Stored executions the plan's REUSE folds avoided "
        "re-burning.", volatile=True),
}


def _fmt(value: float) -> str:
    """Prometheus-style number: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return "%d" % int(value)
    return repr(float(value))


class _Histogram:
    __slots__ = ("bucket_counts", "total")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)   # +Inf overflow last
        self.total = 0.0

    @property
    def count(self) -> int:
        return sum(self.bucket_counts)


class MetricsRegistry:
    """Catalog-checked metric store with deterministic merge semantics.

    One registry per :class:`Observation`; each observation is used from
    a single thread (one per profile, one in the campaign parent), so no
    locking is needed — "lock-free per worker" by construction.

    Merge rules (all commutative and associative, so fold order never
    matters): counters and histogram buckets **sum**; gauges take the
    **max**.  Counter values in this codebase are integers or exact
    binary multiples of ``run_cost_s``, so float summation is itself
    order-independent.
    """

    def __init__(self, constant_labels: Optional[Dict[str, str]] = None,
                 catalog: Optional[Dict[str, MetricSpec]] = None):
        self.catalog = METRIC_CATALOG if catalog is None else catalog
        self.constant_labels = tuple(sorted(
            (str(k), str(v)) for k, v in (constant_labels or {}).items()))
        # key: (name, ((label, value), ...)) -> float | _Histogram
        self._samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Any] = {}

    # -- emit ---------------------------------------------------------

    def _spec(self, name: str, kind: str) -> MetricSpec:
        spec = self.catalog.get(name)
        if spec is None:
            raise KeyError("metric %r is not in the catalog" % name)
        if spec.kind != kind:
            raise TypeError("metric %r is a %s, not a %s"
                            % (name, spec.kind, kind))
        return spec

    def _key(self, name: str,
             labels: Dict[str, Any]) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        merged = dict(self.constant_labels)
        merged.update((str(k), str(v)) for k, v in labels.items())
        return (name, tuple(sorted(merged.items())))

    def counter_inc(self, name: str, amount: float = 1.0,
                    **labels: Any) -> None:
        self._spec(name, "counter")
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % name)
        key = self._key(name, labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def gauge_max(self, name: str, value: float, **labels: Any) -> None:
        self._spec(name, "gauge")
        key = self._key(name, labels)
        current = self._samples.get(key)
        if current is None or value > current:
            self._samples[key] = float(value)

    def hist_observe(self, name: str, value: float, **labels: Any) -> None:
        spec = self._spec(name, "histogram")
        key = self._key(name, labels)
        hist = self._samples.get(key)
        if hist is None:
            hist = self._samples[key] = _Histogram(len(spec.buckets))
        for i, bound in enumerate(spec.buckets):
            if value <= bound:
                hist.bucket_counts[i] += 1
                break
        else:
            hist.bucket_counts[-1] += 1
        hist.total += value

    # -- read ---------------------------------------------------------

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets (0 if unseen)."""
        return sum(value for (sample_name, _), value
                   in self._samples.items()
                   if sample_name == name and not isinstance(value,
                                                             _Histogram))

    # -- merge + wire -------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        scalars, hists = [], []
        for (name, labels), value in sorted(self._samples.items(),
                                            key=lambda item: item[0]):
            if isinstance(value, _Histogram):
                hists.append([name, list(map(list, labels)),
                              list(value.bucket_counts), value.total])
            else:
                scalars.append([name, list(map(list, labels)), value])
        return {"scalars": scalars, "hists": hists}

    def merge_wire(self, wire: Dict[str, Any]) -> None:
        for name, labels, value in wire.get("scalars", ()):
            key = (name, tuple((k, v) for k, v in labels))
            spec = self.catalog.get(name)
            if spec is not None and spec.kind == "gauge":
                current = self._samples.get(key)
                if current is None or value > current:
                    self._samples[key] = float(value)
            else:
                self._samples[key] = self._samples.get(key, 0.0) + value
        for name, labels, buckets, total in wire.get("hists", ()):
            key = (name, tuple((k, v) for k, v in labels))
            hist = self._samples.get(key)
            if hist is None:
                hist = self._samples[key] = _Histogram(len(buckets) - 1)
            for i, count in enumerate(buckets):
                hist.bucket_counts[i] += count
            hist.total += total

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_wire(other.to_wire())

    # -- render -------------------------------------------------------

    def render_prometheus(self, include_volatile: bool = False) -> str:
        """Prometheus text-format snapshot.

        The default (``include_volatile=False``) is the *deterministic*
        snapshot: byte-identical across serial, thread, process, and
        supervised runs of the same seeded campaign.
        """
        lines: List[str] = []
        by_name: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], Any]]] = {}
        for (name, labels), value in self._samples.items():
            by_name.setdefault(name, []).append((labels, value))
        for name in sorted(by_name):
            spec = self.catalog[name]
            if spec.volatile and not include_volatile:
                continue
            lines.append("# HELP %s %s" % (name, spec.help))
            lines.append("# TYPE %s %s" % (name, spec.kind))
            for labels, value in sorted(by_name[name]):
                if isinstance(value, _Histogram):
                    cumulative = 0
                    for bound, count in zip(spec.buckets,
                                            value.bucket_counts):
                        cumulative += count
                        lines.append("%s_bucket%s %d" % (
                            name, _labelstr(labels + (("le", _fmt(bound)),)),
                            cumulative))
                    lines.append("%s_bucket%s %d" % (
                        name, _labelstr(labels + (("le", "+Inf"),)),
                        value.count))
                    lines.append("%s_sum%s %s"
                                 % (name, _labelstr(labels),
                                    _fmt(value.total)))
                    lines.append("%s_count%s %d"
                                 % (name, _labelstr(labels), value.count))
                else:
                    lines.append("%s%s %s"
                                 % (name, _labelstr(labels), _fmt(value)))
        return "\n".join(lines) + ("\n" if lines else "")


def _labelstr(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in labels)


# --------------------------------------------------------------------------
# spans
# --------------------------------------------------------------------------

@dataclass
class Span:
    """One timed region.  ``sim_*`` are modelled machine seconds since
    observation start (deterministic); ``wall_*`` are ``time.time()``."""

    span_id: int
    parent_id: Optional[int]
    name: str
    kind: str
    wall_start: float
    sim_start: float
    wall_end: float = 0.0
    sim_end: float = 0.0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration_s(self) -> float:
        return max(self.wall_end - self.wall_start, 0.0)

    @property
    def sim_duration_s(self) -> float:
        return max(self.sim_end - self.sim_start, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "kind": self.kind,
                "wall_start": self.wall_start, "wall_end": self.wall_end,
                "sim_start": self.sim_start, "sim_end": self.sim_end,
                "attrs": dict(self.attrs)}


class _SpanContext:
    __slots__ = ("_obs", "span")

    def __init__(self, obs: "Observation", span: Span):
        self._obs = obs
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._obs._close(self.span)


class Observation:
    """Span collector + metrics registry + modelled-time clock.

    Used from a single thread: the campaign parent owns one, and every
    profile runner (serial, thread, or forked worker) builds its own,
    shipped back as a wire dict and adopted by the parent.

    ``sim_now`` only advances via :meth:`advance_sim` — per execution
    (``run_cost_s``) and per retry backoff — so span sim-times are a
    pure function of campaign content.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 wall_clock: Callable[[], float] = time.time):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.wall_clock = wall_clock
        self.spans: List[Span] = []
        self.sim_now = 0.0
        self._next_id = 1
        self._stack: List[Span] = []

    # -- clock --------------------------------------------------------

    def advance_sim(self, seconds: float) -> None:
        self.sim_now += seconds

    # -- spans --------------------------------------------------------

    def span(self, name: str, kind: str, **attrs: Any) -> _SpanContext:
        if kind not in SPAN_KINDS:
            raise ValueError("unknown span kind %r" % kind)
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(span_id=self._next_id, parent_id=parent, name=name,
                    kind=kind, wall_start=self.wall_clock(),
                    sim_start=self.sim_now, attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def event(self, name: str, kind: str, **attrs: Any) -> Span:
        """A zero-duration span (supervisor events: crash, kill, ...)."""
        with self.span(name, kind, **attrs) as span:
            pass
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError("span %r closed out of order" % span.name)
        self._stack.pop()
        span.wall_end = self.wall_clock()
        span.sim_end = self.sim_now

    # -- wire ---------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {"spans": [span.to_dict() for span in self.spans],
                "metrics": self.metrics.to_wire(),
                "sim_total_s": self.sim_now}

    def adopt_spans(self, wire: Dict[str, Any],
                    parent: Optional[Span] = None) -> None:
        """Graft a worker observation's span tree under ``parent``.

        Span ids are remapped into this observation's id space and sim
        times shifted by the current ``sim_now`` — adopting profiles in
        deterministic order lays them on a single modelled timeline, as
        if one machine had run them back to back (which is exactly the
        machine-time model the report uses).
        """
        records = wire.get("spans", ())
        id_map = {}
        for record in records:
            id_map[record["span_id"]] = self._next_id
            self._next_id += 1
        offset = self.sim_now
        fallback = parent.span_id if parent is not None else None
        for record in records:
            raw_parent = record["parent_id"]
            new_parent = (id_map.get(raw_parent, fallback)
                          if raw_parent is not None else fallback)
            self.spans.append(Span(
                span_id=id_map[record["span_id"]], parent_id=new_parent,
                name=record["name"], kind=record["kind"],
                wall_start=record["wall_start"],
                wall_end=record["wall_end"],
                sim_start=offset + record["sim_start"],
                sim_end=offset + record["sim_end"],
                attrs=dict(record.get("attrs", ()))))
        self.sim_now = offset + wire.get("sim_total_s", 0.0)


# --------------------------------------------------------------------------
# analysis
# --------------------------------------------------------------------------

def phase_costs(observation: Observation) -> List[Tuple[str, int, float]]:
    """Modelled *self* time by span kind (child time excluded), so a
    pool span that spent all its time in bisection children attributes
    the cost to bisection, not to itself.

    Returns ``(kind, span_count, self_sim_seconds)`` rows sorted by
    self time descending, then kind.
    """
    child_sim: Dict[int, float] = {}
    for span in observation.spans:
        if span.parent_id is not None:
            child_sim[span.parent_id] = (child_sim.get(span.parent_id, 0.0)
                                         + span.sim_duration_s)
    counts: Dict[str, int] = {}
    self_time: Dict[str, float] = {}
    for span in observation.spans:
        counts[span.kind] = counts.get(span.kind, 0) + 1
        own = span.sim_duration_s - child_sim.get(span.span_id, 0.0)
        self_time[span.kind] = self_time.get(span.kind, 0.0) + max(own, 0.0)
    return sorted(((kind, counts[kind], self_time[kind])
                   for kind in counts),
                  key=lambda row: (-row[2], row[0]))


# --------------------------------------------------------------------------
# exporters
# --------------------------------------------------------------------------

Observations = Sequence[Tuple[str, Observation]]


def write_spans_jsonl(observations: Observations, path: str) -> int:
    """One JSON object per span, annotated with the owning app and both
    durations.  Returns the number of spans written."""
    written = 0
    with open(path, "w") as sink:
        for app, obs in observations:
            for span in obs.spans:
                record = span.to_dict()
                record["app"] = app
                record["wall_duration_s"] = span.wall_duration_s
                record["sim_duration_s"] = span.sim_duration_s
                sink.write(json.dumps(record, sort_keys=True) + "\n")
                written += 1
    return written


def _track_id(span: Span, by_id: Dict[int, Span]) -> int:
    """Chrome-trace thread id: the profile-level ancestor (the direct
    child of the app root), so each profile gets its own Perfetto
    track.  Root-level spans land on track 0."""
    current = span
    while current.parent_id is not None:
        parent = by_id.get(current.parent_id)
        if parent is None or parent.parent_id is None:
            return current.span_id
        current = parent
    return 0


def write_chrome_trace(observations: Observations, path: str) -> int:
    """Chrome ``trace_event`` JSON (Perfetto / ``chrome://tracing``).

    Mapping: app -> process, profile -> thread, spans -> complete ("X")
    events on the wall clock; the modelled sim duration rides along in
    ``args`` so both clocks are visible in the UI.
    """
    starts = [span.wall_start
              for _, obs in observations for span in obs.spans]
    base = min(starts) if starts else 0.0
    events: List[Dict[str, Any]] = []
    for pid, (app, obs) in enumerate(observations):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": app}})
        by_id = {span.span_id: span for span in obs.spans}
        for span in obs.spans:
            args = dict(span.attrs)
            args["sim_duration_s"] = span.sim_duration_s
            events.append({
                "ph": "X", "name": span.name, "cat": span.kind,
                "pid": pid, "tid": _track_id(span, by_id),
                "ts": int(round((span.wall_start - base) * 1e6)),
                "dur": int(round(span.wall_duration_s * 1e6)),
                "args": args})
    with open(path, "w") as sink:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  sink, sort_keys=True)
    return sum(1 for event in events if event["ph"] == "X")


def write_metrics_text(observations: Observations, path: str,
                       include_volatile: bool = True) -> int:
    """Merged Prometheus-style snapshot across apps.  Returns the
    number of sample lines written (excluding comments)."""
    merged = MetricsRegistry()
    for _, obs in observations:
        merged.merge(obs.metrics)
    text = merged.render_prometheus(include_volatile=include_volatile)
    with open(path, "w") as sink:
        sink.write(text)
    return sum(1 for line in text.splitlines()
               if line and not line.startswith("#"))


# --------------------------------------------------------------------------
# validators (hand-rolled; no jsonschema dependency)
# --------------------------------------------------------------------------

_SPAN_FIELDS = {"span_id": int, "name": str, "kind": str,
                "wall_start": (int, float), "wall_end": (int, float),
                "sim_start": (int, float), "sim_end": (int, float),
                "attrs": dict, "app": str,
                "wall_duration_s": (int, float),
                "sim_duration_s": (int, float)}


def validate_spans_jsonl(path: str) -> int:
    """Schema-check a ``--trace-spans`` artifact; returns the span
    count or raises ``ValueError`` describing the first violation."""
    ids_by_app: Dict[str, set] = {}
    parents_by_app: Dict[str, List[Tuple[int, int]]] = {}
    count = 0
    with open(path) as source:
        for lineno, line in enumerate(source, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise ValueError("line %d: not valid JSON" % lineno)
            for key, types in _SPAN_FIELDS.items():
                if key not in record:
                    raise ValueError("line %d: missing %r" % (lineno, key))
                if not isinstance(record[key], types) or \
                        isinstance(record[key], bool):
                    raise ValueError("line %d: %r has wrong type"
                                     % (lineno, key))
            if "parent_id" not in record:
                raise ValueError("line %d: missing 'parent_id'" % lineno)
            if record["parent_id"] is not None and \
                    not isinstance(record["parent_id"], int):
                raise ValueError("line %d: parent_id must be int or null"
                                 % lineno)
            if record["kind"] not in SPAN_KINDS:
                raise ValueError("line %d: unknown kind %r"
                                 % (lineno, record["kind"]))
            if record["wall_end"] < record["wall_start"]:
                raise ValueError("line %d: wall_end < wall_start" % lineno)
            if record["sim_end"] < record["sim_start"]:
                raise ValueError("line %d: sim_end < sim_start" % lineno)
            app_ids = ids_by_app.setdefault(record["app"], set())
            if record["span_id"] in app_ids:
                raise ValueError("line %d: duplicate span_id %d"
                                 % (lineno, record["span_id"]))
            app_ids.add(record["span_id"])
            if record["parent_id"] is not None:
                parents_by_app.setdefault(record["app"], []).append(
                    (lineno, record["parent_id"]))
            count += 1
    for app, refs in parents_by_app.items():
        for lineno, parent in refs:
            if parent not in ids_by_app[app]:
                raise ValueError("line %d: parent_id %d not present"
                                 % (lineno, parent))
    return count


def validate_chrome_trace(path: str) -> int:
    """Schema-check a ``--trace-chrome`` artifact; returns the complete-
    event count or raises ``ValueError``."""
    with open(path) as source:
        try:
            document = json.load(source)
        except ValueError:
            raise ValueError("not valid JSON")
    if not isinstance(document, dict) or \
            not isinstance(document.get("traceEvents"), list):
        raise ValueError("top level must be {'traceEvents': [...]}")
    complete = 0
    for index, event in enumerate(document["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError("event %d: not an object" % index)
        if event.get("ph") == "M":
            continue
        for key, types in (("ph", str), ("name", str), ("cat", str),
                           ("pid", int), ("tid", int), ("ts", int),
                           ("dur", int), ("args", dict)):
            if not isinstance(event.get(key), types):
                raise ValueError("event %d: bad %r" % (index, key))
        if event["ph"] != "X":
            raise ValueError("event %d: expected complete event 'X'"
                             % index)
        if event["ts"] < 0 or event["dur"] < 0:
            raise ValueError("event %d: negative ts/dur" % index)
        complete += 1
    if complete == 0:
        raise ValueError("no complete events")
    return complete


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.+eEInf]+)$")


def read_metrics_totals(path: str) -> Dict[str, float]:
    """Parse a ``--metrics-out`` artifact into ``{name: total}`` sums
    across label sets (histograms contribute their ``_sum``/``_count``
    series under those suffixed names)."""
    totals: Dict[str, float] = {}
    with open(path) as source:
        for line in source:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            match = _SAMPLE_RE.match(line)
            if match is None:
                raise ValueError("unparseable sample line: %r" % line)
            name = match.group(1)
            totals[name] = totals.get(name, 0.0) + float(match.group(3))
    return totals


def validate_metrics_text(path: str) -> int:
    """Schema-check a ``--metrics-out`` artifact against the catalog;
    returns the sample-line count or raises ``ValueError``."""
    helped, typed = set(), set()
    count = 0
    hist_series: Dict[str, Dict[str, float]] = {}
    with open(path) as source:
        for lineno, line in enumerate(source, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError("line %d: bad TYPE %r"
                                     % (lineno, parts[3]))
                typed.add(parts[2])
                continue
            if line.startswith("#"):
                continue
            match = _SAMPLE_RE.match(line)
            if match is None:
                raise ValueError("line %d: unparseable sample" % lineno)
            name, labelstr, value = match.groups()
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and \
                        name[:-len(suffix)] in METRIC_CATALOG:
                    base = name[:-len(suffix)]
                    break
            spec = METRIC_CATALOG.get(base)
            if spec is None:
                raise ValueError("line %d: %r not in the metric catalog"
                                 % (lineno, name))
            if base not in helped or base not in typed:
                raise ValueError("line %d: %r missing HELP/TYPE header"
                                 % (lineno, base))
            if spec.kind == "histogram":
                seen = hist_series.setdefault(base, {})
                if name.endswith("_sum"):
                    seen["sum"] = seen.get("sum", 0) + 1
                elif name.endswith("_count"):
                    seen["count"] = seen.get("count", 0) + 1
                elif name.endswith("_bucket"):
                    seen["bucket"] = seen.get("bucket", 0) + 1
                else:
                    raise ValueError(
                        "line %d: histogram %r needs a _bucket/_sum/"
                        "_count suffix" % (lineno, base))
            count += 1
    for base, seen in hist_series.items():
        for suffix in ("bucket", "sum", "count"):
            if suffix not in seen:
                raise ValueError("histogram %r missing its _%s series"
                                 % (base, suffix))
    if count == 0:
        raise ValueError("no samples")
    return count


#: metrics-total expression -> report-dict path, checked by
#: :func:`reconcile_with_report`.
_RECONCILIATIONS: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
    ("executions", ("zc_executions_total", "zc_prerun_executions_total"),
     ("executions",)),
    ("cache hits", ("zc_exec_cache_hits_total",), ("exec_cache", "hits")),
    ("cache misses", ("zc_exec_cache_misses_total",),
     ("exec_cache", "misses")),
    ("pool voids", ("zc_pool_voids_total",), ("pool_stats", "pool_voids")),
    ("pool runs", ("zc_pool_runs_total",), ("pool_stats", "pool_runs")),
    ("worker respawns", ("zc_runtime_respawns_total",),
     ("supervision", "respawns")),
)


def reconcile_with_report(totals: Dict[str, float],
                          report: Dict[str, Any]) -> List[str]:
    """Cross-check a metrics snapshot against an ``app_report_to_dict``
    record (or a summed campaign of them).  Returns a list of mismatch
    descriptions — empty means the books balance exactly."""
    problems = []
    for label, metric_names, report_path in _RECONCILIATIONS:
        expected: Any = report
        for key in report_path:
            if not isinstance(expected, dict) or key not in expected:
                expected = None
                break
            expected = expected[key]
        if expected is None:
            continue
        measured = sum(totals.get(name, 0.0) for name in metric_names)
        if measured != expected:
            problems.append("%s: metrics say %s, report says %s"
                            % (label, _fmt(measured), _fmt(float(expected))))
    return problems


# --------------------------------------------------------------------------
# live progress
# --------------------------------------------------------------------------

class ProgressReporter:
    """A single ``\\r``-rewritten status line fed from the campaign
    metrics at every profile commit (throttled to ``min_interval_s``)."""

    def __init__(self, stream: TextIO, app: str, total: int = 0,
                 min_interval_s: float = 0.2,
                 clock: Callable[[], float] = time.monotonic):
        self.stream = stream
        self.app = app
        self.total = total
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last_render = 0.0
        self._last_width = 0
        self._wrote = False

    def _render(self, snapshot: Dict[str, Any]) -> str:
        hits = snapshot.get("cache_hits", 0)
        misses = snapshot.get("cache_misses", 0)
        looked_up = hits + misses
        cache = ("cache %.1f%%" % (100.0 * hits / looked_up)
                 if looked_up else "cache -")
        parts = ["[%s] profiles %d/%d" % (self.app,
                                          snapshot.get("done", 0),
                                          self.total),
                 "exec %d" % snapshot.get("executions", 0), cache,
                 "voids %d" % snapshot.get("pool_voids", 0)]
        respawns = snapshot.get("respawns", 0)
        quarantined = snapshot.get("quarantined", 0)
        if respawns:
            parts.append("respawns %d" % respawns)
        if quarantined:
            parts.append("quarantined %d" % quarantined)
        return " | ".join(parts)

    def _write(self, snapshot: Dict[str, Any]) -> None:
        line = self._render(snapshot)
        pad = " " * max(self._last_width - len(line), 0)
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_width = len(line)
        self._wrote = True

    def tick(self, snapshot: Dict[str, Any]) -> None:
        now = self._clock()
        done = snapshot.get("done", 0)
        if done < self.total and \
                now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        self._write(snapshot)

    def close(self, snapshot: Optional[Dict[str, Any]] = None) -> None:
        if snapshot is not None:
            self._write(snapshot)
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
