"""Campaign planning: incremental re-testing against the result store.

A campaign with ``--store`` leaves behind one durable **profile record**
per completed unit test: the test's full pooled-testing outcome keyed by
a content digest of everything that shaped it — the parameter
definitions it tested, the group structure the pre-run observed, and the
behaviour-shaping campaign settings.  ``--incremental`` turns those
records into a plan:

* **REUSE** — the profile's key is unchanged, so the stored outcome is
  provably what a fresh run would produce.  The campaign folds it back
  (results, pool stats, blacklist effects) with **zero fresh
  executions**.
* **RERUN** — the store has seen this test before, but under a
  different key: some parameter it touches changed (default, candidate
  values, kind, tags) or a plan-relevant setting moved.  It runs fresh.
* **NEW** — the store has never seen this test.  It runs fresh.

One subtlety keeps findings byte-identical to a full cold campaign: the
frequent-failure blacklist couples profiles through *confirmations*.  A
rerun profile may confirm (or stop confirming) a parameter it shares
with a REUSE candidate, shifting the blacklist threshold-crossing that
the candidate's stored pool stats embedded.  :func:`build_plan` closes
over that coupling conservatively — a REUSE candidate that tests any
parameter whose confirmation trajectory may change is demoted to RERUN.
Parameters only ever cleared as safe never trip the closure, so the
common case (a diff touching a few parameters in a safe-dominated
registry) still reuses almost everything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.execcache import fingerprint, stable_seed

#: plan decisions, in the order the markdown report lists them.
PLAN_REUSE = "reuse"
PLAN_RERUN = "rerun"
PLAN_NEW = "new"
PLAN_DECISIONS = (PLAN_REUSE, PLAN_RERUN, PLAN_NEW)

#: configuration-sampling strategies (``--sample``).
SAMPLE_PAIRWISE = "pairwise"
SAMPLE_RANDOM_K = "random-k"
SAMPLE_DISSIMILARITY = "dissimilarity"
SAMPLE_MODES = (SAMPLE_PAIRWISE, SAMPLE_RANDOM_K, SAMPLE_DISSIMILARITY)

#: a sampling cell: one (strategy, value-pair layer, parameter) unit of
#: the exhaustive enumeration ``_profile_body`` walks.
Cell = Tuple[str, int, str]


def _cell_distance(a: Cell, b: Cell) -> int:
    """Structural distance between two cells: how many of the three
    coordinates (strategy, layer, parameter) differ."""
    return ((a[0] != b[0]) + (a[1] != b[1]) + (a[2] != b[2]))


def sample_cells(mode: Optional[str], seed: int, k: Optional[int],
                 test_name: str, group: str, strategies: Sequence[str],
                 layer_counts: Dict[str, int]) -> Optional[Set[Cell]]:
    """The deterministic subset of cells a sampled campaign keeps for
    one (unit test, group).

    ``None`` mode means exhaustive (keep everything — returned as
    ``None`` so callers skip membership tests entirely).  All three
    strategies draw from ``stable_seed`` over the campaign's sample
    seed and the cell coordinates, so the subset is identical across
    backends, processes and re-runs:

    * ``pairwise`` — every (parameter, value-pair layer) combination is
      covered exactly once, in one seeded-chosen strategy.  The choice
      is made per *layer*, not per parameter, so a layer's parameters
      stay together in one pooled run — scattering them across
      strategies would shatter pools into expensive singleton
      treatments and cost more than the exhaustive walk.  Budget is
      implicit: ``sum(layer_counts.values())`` cells.
    * ``random-k`` — a seeded uniform draw of ``k`` cells.
    * ``dissimilarity`` — greedy farthest-point selection of ``k``
      cells under the structural distance, from a seeded start; spreads
      the budget across strategies, layers and parameters instead of
      clustering.

    ``k`` defaults to the pairwise budget so the strategies are
    comparable at equal cost.
    """
    if mode is None:
        return None
    params = sorted(layer_counts)
    cells: List[Cell] = [(strategy, layer, param)
                         for strategy in strategies
                         for param in params
                         for layer in range(layer_counts[param])]
    if not cells:
        return set()
    if mode == SAMPLE_PAIRWISE:
        kept: Set[Cell] = set()
        layers = max(layer_counts.values())
        for layer in range(layers):
            index = stable_seed(seed, test_name, group,
                                layer) % len(strategies)
            strategy = strategies[index]
            kept.update((strategy, layer, param) for param in params
                        if layer < layer_counts[param])
        return kept
    budget = k if k is not None else sum(layer_counts.values())
    budget = max(1, min(budget, len(cells)))
    if mode == SAMPLE_RANDOM_K:
        rng = random.Random(stable_seed(seed, test_name, group, mode))
        return set(rng.sample(cells, budget))
    if mode == SAMPLE_DISSIMILARITY:
        start = stable_seed(seed, test_name, group, mode) % len(cells)
        chosen: List[Cell] = [cells[start]]
        remaining = [c for i, c in enumerate(cells) if i != start]
        while len(chosen) < budget:
            best = max(remaining,
                       key=lambda c: (min(_cell_distance(c, picked)
                                          for picked in chosen), c))
            chosen.append(best)
            remaining.remove(best)
        return set(chosen)
    raise ValueError("unknown sampling mode %r" % mode)

#: settings keys that never change what a profile run *finds* (the
#: store/exec-cache contracts guarantee byte-identical findings either
#: way), so they are excluded from the plan-settings digest: flipping
#: them must not invalidate stored profiles.
_FINDINGS_NEUTRAL_SETTINGS = ("exec_cache", "store", "incremental")


def param_digest(param: Any) -> str:
    """Content digest of one parameter definition.

    Everything test generation derives assignments from is in here, so
    a changed default, candidate list, enum domain, kind or tag set
    invalidates every stored profile that tested the parameter — while
    the registry-wide *name* digest (``corpus_digest``) stays put.
    """
    return fingerprint((param.name, param.kind, param.default,
                        param.candidates, param.values, tuple(param.tags)))


def plan_settings_digest(config: Any) -> str:
    """Digest of the campaign settings that shape a profile's outcome."""
    settings = {key: value
                for key, value in config.checkpoint_settings().items()
                if key not in _FINDINGS_NEUTRAL_SETTINGS}
    return fingerprint(tuple(sorted((key, repr(value))
                                    for key, value in settings.items())))


def profile_testable_params(campaign: Any, profile: Any) -> Set[str]:
    """The parameters the campaign would actually test on ``profile``
    (pre-run testability x registry membership x --params filter) —
    the same filter ``_profile_body`` applies."""
    names: Set[str] = set()
    for group in profile.groups:
        names.update(name for name in profile.testable_params(group)
                     if name in campaign.registry
                     and campaign.config.param_allowed(name))
    return names


def profile_key(campaign: Any, profile: Any) -> str:
    """Content key of one unit-test profile.

    Two campaigns produce the same key for a test exactly when a fresh
    run of that test is guaranteed (modulo the determinism the store
    contract already assumes) to reproduce the stored outcome: same
    behaviour-shaping settings, same group structure, same testable
    parameters with identical definitions, same explicitly-set params
    (they steer homogeneous collapse in the runner).
    """
    parts: List[Any] = [plan_settings_digest(campaign.config),
                        profile.test.full_name,
                        tuple(sorted(profile.explicit_sets))]
    for group in sorted(profile.groups):
        names = sorted(name for name in profile.testable_params(group)
                       if name in campaign.registry
                       and campaign.config.param_allowed(name))
        parts.append((group, profile.groups[group],
                      tuple((name,
                             param_digest(campaign.registry.get(name)))
                            for name in names)))
    return fingerprint(tuple(parts))


@dataclass
class ProfilePlan:
    """One unit test's slot in the campaign plan."""

    test: str
    decision: str
    reason: str
    key: str
    #: stored executions a REUSE fold avoids re-burning (0 otherwise).
    executions_saved: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"test": self.test, "decision": self.decision,
                "reason": self.reason, "key": self.key,
                "executions_saved": self.executions_saved}


@dataclass
class CampaignPlan:
    """The incremental plan for one campaign run, in profile order.

    Journaled into the checkpoint when one is configured, so a resumed
    campaign replays the *original* plan instead of replanning against
    a store the interrupted run already mutated.
    """

    profiles: List[ProfilePlan] = field(default_factory=list)
    #: REUSE candidates demoted to RERUN by the blacklist-coupling
    #: closure (their ``decision`` is RERUN; this counts them).
    demoted: int = 0

    def decision(self, test: str) -> Optional[str]:
        for profile in self.profiles:
            if profile.test == test:
                return profile.decision
        return None

    def plan_for(self, test: str) -> Optional[ProfilePlan]:
        for profile in self.profiles:
            if profile.test == test:
                return profile
        return None

    def count(self, decision: str) -> int:
        return sum(1 for p in self.profiles if p.decision == decision)

    @property
    def executions_saved(self) -> int:
        return sum(p.executions_saved for p in self.profiles)

    def to_dict(self) -> Dict[str, Any]:
        return {"reused": self.count(PLAN_REUSE),
                "rerun": self.count(PLAN_RERUN),
                "new": self.count(PLAN_NEW),
                "demoted": self.demoted,
                "executions_saved": self.executions_saved,
                "profiles": [p.to_dict() for p in self.profiles]}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "CampaignPlan":
        plan = cls(demoted=int(record.get("demoted", 0)))
        for entry in record.get("profiles", ()):
            plan.profiles.append(ProfilePlan(
                test=entry["test"], decision=entry["decision"],
                reason=entry.get("reason", ""), key=entry.get("key", ""),
                executions_saved=int(entry.get("executions_saved", 0))))
        return plan


def build_plan(campaign: Any, usable: Sequence[Any], store: Any
               ) -> CampaignPlan:
    """Classify every usable profile against the store's records."""
    plan = CampaignPlan()
    keys = {p.test.full_name: profile_key(campaign, p) for p in usable}
    decisions: Dict[str, str] = {}
    for profile in usable:
        name = profile.test.full_name
        if store.lookup_profile(keys[name]) is not None:
            decisions[name] = PLAN_REUSE
        elif store.profile_for_test(name) is not None:
            decisions[name] = PLAN_RERUN
        else:
            decisions[name] = PLAN_NEW

    # Blacklist-coupling closure: collect the parameters whose
    # confirmation trajectory may differ from the stored runs' —
    # anything a RERUN profile previously confirmed unsafe, plus any
    # previously-confirmed parameter a NEW profile now tests (one more
    # confirming test can cross the frequent-failure threshold).
    ever_confirmed = store.confirmed_params()
    unstable: Set[str] = set()
    for profile in usable:
        name = profile.test.full_name
        if decisions[name] == PLAN_RERUN:
            stored = store.profile_for_test(name)
            if stored is not None:
                unstable.update(stored.get("confirmed", ()))
        elif decisions[name] == PLAN_NEW:
            unstable.update(profile_testable_params(campaign, profile)
                            & ever_confirmed)

    for profile in usable:
        name = profile.test.full_name
        decision = decisions[name]
        saved = 0
        if decision == PLAN_REUSE:
            coupled = profile_testable_params(campaign, profile) & unstable
            if coupled:
                plan.demoted += 1
                decision = PLAN_RERUN
                reason = ("blacklist coupling: %s confirmed unsafe by a "
                          "profile that must rerun"
                          % ", ".join(sorted(coupled)))
            else:
                stored = store.lookup_profile(keys[name])
                saved = int(stored["record"].get("executions", 0))
                reason = "stored profile matches parameters and settings"
        elif decision == PLAN_RERUN:
            reason = "parameter substrate or settings changed since stored run"
        else:
            reason = "no stored profile for this test"
        plan.profiles.append(ProfilePlan(test=name, decision=decision,
                                         reason=reason, key=keys[name],
                                         executions_saved=saved))
    return plan
