"""``repro serve``: the campaign-as-a-service HTTP/JSON daemon.

This module is the public, network-facing face of the reproduction: a
stdlib-only (``http.server``) daemon that accepts campaign submissions,
schedules them through :mod:`repro.core.jobqueue`, shares one durable
result store across every submission, and serves reports whose bytes
are identical to what the CLI writes for the same spec.  The complete
operator guide — endpoint reference, spec schema, auth, lifecycle and
crash-recovery semantics — is docs/SERVICE.md; this docstring is the
short version.

Endpoints (all request/response bodies are JSON unless noted):

``GET  /v1/healthz``
    Liveness: daemon version, state dir, job counts.
``GET  /v1/apps``
    The application catalog (names + registry/corpus sizes).
``POST /v1/campaigns``
    Submit a campaign spec (see jobqueue.SPEC_SCHEMA); returns 202 with
    the new job's id and location.  Requires auth when a secret is set.
``GET  /v1/campaigns``
    All jobs, id-ordered, in summary form.
``GET  /v1/campaigns/{id}``
    Full status: canonical spec, state, latest progress snapshot, and —
    once done — the report's cost centers and distribution stats.
``GET  /v1/campaigns/{id}/report[?format=json|markdown]``
    The finished report, byte-identical to the CLI's --json/--markdown
    output for the same spec (404 until the job is done).
``GET  /v1/campaigns/{id}/events``
    Newline-delimited JSON progress feed: replays the job's event log,
    then follows live until the job reaches a terminal state.
``DELETE /v1/campaigns/{id}``
    Cancel (between profiles; the checkpoint journal keeps finished
    work, so an identical resubmission resumes).  Requires auth.
``GET  /v1/registry/{app}[?audit=1]``
    The parameter registry as an addressable resource; with ``audit=1``
    the wiring-audit verdicts (repro.core.audit) are attached (computed
    once per app, then cached).

Authentication reuses the fleet's HMAC shared-secret scheme
(repro.core.distrib): with ``--serve-secret SECRET`` set, mutating
endpoints (POST/DELETE) require ``Authorization: Bearer <token>`` where
``<token> = HMAC-SHA256(key=SECRET, msg="repro-serve:token")`` in hex —
printable via ``repro serve-token`` and verified with a constant-time
compare.  Read endpoints stay open, mirroring the coordinator's
read-only stance toward unauthenticated peers.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.jobqueue import (TERMINAL_STATES, CampaignJob, JobQueue,
                                 JobSpecError)

#: bump when the wire format changes incompatibly.
API_VERSION = 1

#: refuse request bodies beyond this (a campaign spec is tiny).
MAX_BODY_BYTES = 1 << 20

#: domain-separated message for the bearer token (the distrib handshake
#: MACs use "role:nonce" messages; this can never collide with them).
_TOKEN_MESSAGE = b"repro-serve:token"


def service_token(secret: str) -> str:
    """The bearer token for ``--serve-secret SECRET`` (hex HMAC-SHA256).

    Same construction as the distributed handshake's MACs
    (repro.core.distrib._auth_mac) under a distinct domain-separation
    message, so one operator secret can safely serve both purposes.
    """
    return hmac.new(secret.encode("utf-8"), _TOKEN_MESSAGE,
                    hashlib.sha256).hexdigest()


class CampaignService:
    """Routing/marshalling layer between HTTP and the job queue."""

    def __init__(self, queue: JobQueue, secret: Optional[str] = None) -> None:
        self.queue = queue
        self.secret = secret
        self._audit_cache: Dict[str, Dict[str, Any]] = {}
        self._audit_lock = threading.Lock()

    # ------------------------------------------------------------------
    # auth
    # ------------------------------------------------------------------
    def authorized(self, header: Optional[str]) -> bool:
        """Constant-time bearer-token check (True when auth is off)."""
        if not self.secret:
            return True
        if not header or not header.startswith("Bearer "):
            return False
        presented = header[len("Bearer "):].strip()
        return hmac.compare_digest(service_token(self.secret), presented)

    # ------------------------------------------------------------------
    # resource renderings
    # ------------------------------------------------------------------
    def job_summary(self, job: CampaignJob) -> Dict[str, Any]:
        """The listing form: status record + event count + report flag."""
        record = job.status_record()
        record["events"] = len(job.events)
        record["report_ready"] = job.has_report()
        return record

    def job_detail(self, job: CampaignJob) -> Dict[str, Any]:
        """The summary plus spec, latest progress, and report highlights."""
        record = self.job_summary(job)
        record["spec"] = job.spec
        record["progress"] = job.progress
        if job.has_report():
            try:
                with open(job.report_path("json")) as handle:
                    report = json.load(handle)
            except (OSError, ValueError):
                pass
            else:
                record["cost_centers"] = report.get("cost_centers", [])
                record["distribution"] = report.get("distribution")
                record["executions"] = report.get("executions")
                record["reported_params"] = [v["param"] for v in
                                             report.get("verdicts", [])]
        return record

    def registry_resource(self, app: str, with_audit: bool
                          ) -> Dict[str, Any]:
        """``GET /v1/registry/{app}``: the parameter registry as data,
        with the wiring-audit verdicts attached when ``?audit=1``."""
        from repro.apps import catalog
        spec = catalog.spec_for(app)
        unsafe = set(spec.expected_unsafe)
        params = []
        for param in spec.registry:
            default: Any = param.default
            try:
                json.dumps(default)
            except (TypeError, ValueError):
                default = repr(default)
            params.append({
                "name": param.name,
                "kind": param.kind,
                "default": default,
                "section": catalog.section_for_param(param.name),
                "tags": list(param.tags),
                "unsafe_table3": param.name in unsafe,
                "description": param.description,
            })
        record: Dict[str, Any] = {"app": app, "params": params}
        if with_audit:
            record["audit"] = self._audit_for(app)
        return record

    def _audit_for(self, app: str) -> Dict[str, Any]:
        """Wiring-audit verdicts, computed once per app then cached (the
        audit runs real probe executions; the cache makes the registry
        endpoint cheap after the first ?audit=1 request)."""
        with self._audit_lock:
            cached = self._audit_cache.get(app)
            if cached is None:
                from repro.core.audit import audit_app
                cached = audit_app(app).to_dict()
                self._audit_cache[app] = cached
            return cached


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: CampaignService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/%d" % API_VERSION

    # -- plumbing ------------------------------------------------------
    @property
    def service(self) -> CampaignService:
        """The shared :class:`CampaignService` hung off the server."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the operator's reverse proxy's job

    def _send_json(self, status: int, record: Any) -> None:
        body = (json.dumps(record, indent=2, sort_keys=True) + "\n"
                ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, body: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise JobSpecError("request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobSpecError("empty request body (expected a JSON spec)")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise JobSpecError("request body is not valid JSON")

    def _route(self) -> Tuple[List[str], Dict[str, List[str]]]:
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        return segments, parse_qs(parts.query)

    def _check_auth(self) -> bool:
        if self.service.authorized(self.headers.get("Authorization")):
            return True
        self._error(401, "missing or invalid bearer token "
                         "(see `repro serve-token` and docs/SERVICE.md)")
        return False

    # -- methods -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        """Route the read-only endpoints (never require auth)."""
        try:
            segments, query = self._route()
            if segments == ["v1", "healthz"]:
                return self._healthz()
            if segments == ["v1", "apps"]:
                return self._apps()
            if segments == ["v1", "campaigns"]:
                jobs = self.service.queue.list_jobs()
                return self._send_json(200, {
                    "campaigns": [self.service.job_summary(j) for j in jobs]})
            if len(segments) == 3 and segments[:2] == ["v1", "campaigns"]:
                return self._campaign_detail(segments[2])
            if len(segments) == 4 and segments[:2] == ["v1", "campaigns"]:
                if segments[3] == "report":
                    return self._campaign_report(segments[2], query)
                if segments[3] == "events":
                    return self._campaign_events(segments[2])
            if len(segments) == 3 and segments[:2] == ["v1", "registry"]:
                return self._registry(segments[2], query)
            self._error(404, "no such resource")
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_POST(self) -> None:  # noqa: N802
        """``POST /v1/campaigns``: authenticate, validate, submit (202)."""
        try:
            segments, _ = self._route()
            if segments != ["v1", "campaigns"]:
                return self._error(404, "no such resource")
            if not self._check_auth():
                return
            try:
                job = self.service.queue.submit(self._read_body())
            except JobSpecError as exc:
                return self._error(400, str(exc))
            record = self.service.job_summary(job)
            record["location"] = "/v1/campaigns/%s" % job.id
            self._send_json(202, record)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def do_DELETE(self) -> None:  # noqa: N802
        """``DELETE /v1/campaigns/{id}``: authenticate, cancel (202)."""
        try:
            segments, _ = self._route()
            if len(segments) != 3 or segments[:2] != ["v1", "campaigns"]:
                return self._error(404, "no such resource")
            if not self._check_auth():
                return
            try:
                job = self.service.queue.cancel(segments[2])
            except KeyError:
                return self._error(404, "no such campaign")
            self._send_json(202, self.service.job_summary(job))
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- GET handlers --------------------------------------------------
    def _healthz(self) -> None:
        queue = self.service.queue
        jobs = queue.list_jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        self._send_json(200, {
            "ok": True,
            "api_version": API_VERSION,
            "state_dir": queue.state_dir,
            "store": queue.store_path,
            "max_active": queue.max_active,
            "auth": bool(self.service.secret),
            "jobs": by_state,
        })

    def _apps(self) -> None:
        from repro.apps import catalog
        from repro.core.registry import load_all_suites
        corpus = load_all_suites()
        self._send_json(200, {"apps": [
            {"app": app,
             "unit_tests": len(corpus.for_app(app)),
             "parameters": len(catalog.spec_for(app).registry),
             "registry": "/v1/registry/%s" % app}
            for app in catalog.APP_NAMES]})

    def _campaign_detail(self, job_id: str) -> None:
        job = self.service.queue.get(job_id)
        if job is None:
            return self._error(404, "no such campaign")
        self._send_json(200, self.service.job_detail(job))

    def _campaign_report(self, job_id: str,
                         query: Dict[str, List[str]]) -> None:
        job = self.service.queue.get(job_id)
        if job is None:
            return self._error(404, "no such campaign")
        fmt = (query.get("format") or ["json"])[0]
        if fmt not in ("json", "markdown"):
            return self._error(400, "format must be json or markdown")
        if not job.has_report():
            return self._error(404, "no report yet (job state: %s)"
                               % job.state)
        path = job.report_path("json" if fmt == "json" else "md")
        try:
            with open(path, "rb") as handle:
                body = handle.read()
        except OSError:
            return self._error(404, "report unavailable")
        # exact stored bytes — the byte-identity contract with the CLI.
        self._send_bytes(body, "application/json" if fmt == "json"
                         else "text/markdown; charset=utf-8")

    def _campaign_events(self, job_id: str) -> None:
        queue = self.service.queue
        if queue.get(job_id) is None:
            return self._error(404, "no such campaign")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()  # HTTP/1.0: body is delimited by close
        index = 0
        while True:
            events, terminal = queue.events_since(job_id, index)
            for event in events:
                self.wfile.write((json.dumps(event, sort_keys=True)
                                  + "\n").encode("utf-8"))
            index += len(events)
            if events:
                self.wfile.flush()
            if terminal:
                remaining, _ = queue.events_since(job_id, index)
                if not remaining:
                    return
                continue
            queue.wait_for_change(0.5)

    def _registry(self, app: str, query: Dict[str, List[str]]) -> None:
        from repro.apps import catalog
        if app not in catalog.APP_NAMES:
            return self._error(404, "unknown app %r (known: %s)"
                               % (app, ", ".join(catalog.APP_NAMES)))
        with_audit = (query.get("audit") or ["0"])[0] in ("1", "true")
        self._send_json(200, self.service.registry_resource(app, with_audit))


# ---------------------------------------------------------------------------
# daemon entry point (the `repro serve` subcommand)
# ---------------------------------------------------------------------------
def parse_listen(listen: str) -> Tuple[str, int]:
    """``[HOST:]PORT`` -> (host, port); bare port binds 127.0.0.1."""
    host, _, port = listen.rpartition(":")
    return host or "127.0.0.1", int(port)


def run_service(listen: str, state_dir: str,
                store_path: Optional[str] = None, max_active: int = 1,
                secret: Optional[str] = None,
                dist_secret: Optional[str] = None,
                log: Any = None, ready: Optional[Any] = None) -> int:
    """Run the daemon until SIGTERM/SIGINT.  Blocks; returns exit code.

    ``ready`` (a callable, tests only) receives the bound
    ``(host, port)`` once the socket is listening — with port 0 that is
    the only way to learn the ephemeral port.
    """
    log = log if log is not None else sys.stderr
    queue = JobQueue(state_dir, store_path=store_path,
                     max_active=max_active, dist_secret=dist_secret,
                     log=log)
    queue.start()
    server = _ServiceServer(parse_listen(listen), CampaignService(
        queue, secret=secret))
    host, port = server.server_address[:2]
    print("repro serve: listening on http://%s:%d (state: %s%s%s)"
          % (host, port, state_dir,
             ", store: %s" % store_path if store_path else "",
             ", auth: on" if secret else ""), file=log, flush=True)
    if ready is not None:
        ready((host, port))

    stopping = threading.Event()

    def _shutdown(signum: int, frame: Any) -> None:
        if not stopping.is_set():
            stopping.set()
            # shutdown() must not run on the serve_forever thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _shutdown)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        queue.stop(cancel_active=True)
        print("repro serve: stopped (unfinished jobs remain resumable in"
              " %s)" % state_dir, file=log, flush=True)
    return 0
