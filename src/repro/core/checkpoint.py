"""Campaign checkpoint/resume: a JSONL journal of finished work.

A full campaign is hours of modelled machine time; a crash near the end
used to mean starting over.  :class:`CampaignCheckpoint` journals results
to an append-only JSON Lines file as they are produced, and a restarted
campaign pointed at the same file skips everything already finished.

Four record kinds appear in a journal:

* ``header``    — one per (app, campaign start): the settings that shape
  results.  A resume whose settings disagree with the journal would
  silently mix incompatible verdicts, so it is refused instead.
* ``plan``      — the incremental campaign plan (repro.core.plan) frozen
  at first run.  A resumed ``--incremental`` campaign replays this plan
  instead of replanning: the interrupted run already appended fresh
  profile records to the store, so replanning would silently reclassify
  its RERUN/NEW work as REUSE and change the journaled plan summary.
* ``instance``  — streamed as each singleton :class:`InstanceResult`
  completes.  Pure audit trail: it shows how far an interrupted test got,
  but partially-journaled tests are re-run in full on resume.
* ``test-done`` — one per finished unit-test profile (the campaign's
  parallelism granule): the serialized results plus the pool statistics
  and execution counts needed to rebuild the test's contribution to the
  final report bit-for-bit.

Only ``test-done`` records are authoritative.  Restoring at the test
granularity keeps resume correct for pooled testing, where a passing
pool clears many parameters while producing *no* InstanceResults — an
instance-level journal could not tell "pool passed" from "pool never
ran".
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import ReproError
from repro.core.pooling import PoolStats
from repro.core.registry import UnitTest
from repro.core.runner import InstanceResult
from repro.core.stats import TrialTally
from repro.core.testgen import (HeteroAssignment, ParamAssignment,
                                TestInstance)


class CheckpointError(ReproError):
    """The journal is unusable for this campaign (settings mismatch)."""


# ---------------------------------------------------------------------------
# InstanceResult <-> JSON
# ---------------------------------------------------------------------------
def _assignment_to_dict(assignment: ParamAssignment) -> Dict[str, Any]:
    return {
        "param": assignment.param,
        "group": assignment.group,
        "group_values": list(assignment.group_values),
        "other_value": assignment.other_value,
        "pinned": [list(pair) for pair in assignment.pinned],
    }


def _assignment_from_dict(record: Mapping[str, Any]) -> ParamAssignment:
    return ParamAssignment(
        param=record["param"],
        group=record["group"],
        group_values=tuple(record["group_values"]),
        other_value=record["other_value"],
        pinned=tuple((name, value) for name, value in record["pinned"]))


def result_to_dict(result: InstanceResult) -> Dict[str, Any]:
    instance = result.instance
    tally = result.tally
    return {
        "test": instance.test.full_name,
        "group": instance.group,
        "strategy": instance.strategy,
        "assignment": [_assignment_to_dict(a)
                       for a in instance.assignment.assignments],
        "verdict": result.verdict,
        "hetero_error": result.hetero_error,
        "executions": result.executions,
        "tally": None if tally is None else [
            tally.hetero_failures, tally.hetero_trials,
            tally.homo_failures, tally.homo_trials],
    }


def result_from_dict(record: Mapping[str, Any],
                     tests_by_name: Mapping[str, UnitTest]) -> InstanceResult:
    """Rebuild an :class:`InstanceResult` around the *live* UnitTest.

    Triage and rendering read test metadata (realistic, observability,
    strict assertions), so the restored instance must reference the real
    corpus entry, not a stub deserialized from JSON.
    """
    test = tests_by_name.get(record["test"])
    if test is None:
        raise CheckpointError("journaled test %r is not in this campaign's "
                              "corpus" % record["test"])
    assignment = HeteroAssignment(tuple(
        _assignment_from_dict(a) for a in record["assignment"]))
    instance = TestInstance(test=test, group=record["group"],
                            strategy=record["strategy"], assignment=assignment)
    raw_tally = record["tally"]
    tally = None
    if raw_tally is not None:
        hf, ht, jf, jt = raw_tally
        tally = TrialTally(hetero_failures=hf, hetero_trials=ht,
                           homo_failures=jf, homo_trials=jt)
    return InstanceResult(instance=instance, verdict=record["verdict"],
                          hetero_error=record["hetero_error"], tally=tally,
                          executions=record["executions"])


# ---------------------------------------------------------------------------
# the journal
# ---------------------------------------------------------------------------
def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path``.

    ``os.fsync`` on a file handle makes the *contents* durable, but the
    directory entry naming a freshly created file lives in the directory
    inode — until that is synced, a crash can leave a journal whose data
    reached disk under a name that never did.  Called once per journal
    file creation/rotation, not per append.
    """
    parent = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs refuses directory fsync
        pass
    finally:
        os.close(fd)


class CampaignCheckpoint:
    """Append-only JSONL journal shared by one or more app campaigns.

    Thread-compatible: writes are serialized under a lock, and each write
    is a single flushed line, so a crash leaves at most one truncated
    record at the tail (which :meth:`load` discards).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        #: test full name -> its authoritative ``test-done`` record.
        self._done: Dict[str, Dict[str, Any]] = {}
        #: app -> journaled ``header`` record.
        self._headers: Dict[str, Dict[str, Any]] = {}
        #: app -> journaled ``plan`` payload (repro.core.plan dict).
        self._plans: Dict[str, Dict[str, Any]] = {}
        #: tests that have streamed ``instance`` lines but no test-done.
        self.partial_tests: Dict[str, int] = {}

    # -- reading -------------------------------------------------------
    def load(self) -> int:
        """Read the journal; returns the number of finished tests found."""
        self._done.clear()
        self._headers.clear()
        self._plans.clear()
        self.partial_tests.clear()
        if not os.path.exists(self.path):
            return 0
        # errors="replace": a crash mid-append can leave raw garbage bytes
        # (not just a truncated JSON line) at the tail; undecodable bytes
        # become U+FFFD, json.loads refuses them, and the loop below stops
        # trusting the file there instead of load() blowing up.
        with open(self.path, errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # torn tail write from the crashed run; everything
                    # after it would be from a *different* crashed run,
                    # so stop trusting the file here.
                    break
                kind = record.get("kind")
                if kind == "header":
                    self._headers[record["app"]] = record
                elif kind == "plan":
                    self._plans[record["app"]] = record.get("plan", {})
                elif kind == "instance":
                    name = record["test"]
                    if name not in self._done:
                        self.partial_tests[name] = \
                            self.partial_tests.get(name, 0) + 1
                elif kind == "test-done":
                    self._done[record["test"]] = record
                    self.partial_tests.pop(record["test"], None)
        return len(self._done)

    def check_header(self, app: str, settings: Mapping[str, Any]) -> None:
        """Refuse to resume under different campaign settings.

        ``settings`` must be JSON-serializable; comparison happens on the
        JSON round-trip so tuples/lists compare equal.
        """
        canonical = json.loads(json.dumps(dict(settings)))
        existing = self._headers.get(app)
        if existing is not None:
            journaled = {k: v for k, v in existing.items()
                         if k not in ("kind", "app")}
            if journaled != canonical:
                raise CheckpointError(
                    "checkpoint %s was written by a campaign with different "
                    "settings (journaled %r, current %r); use a fresh "
                    "checkpoint path" % (self.path, journaled, canonical))
            return
        self._append(dict(canonical, kind="header", app=app))
        self._headers[app] = dict(canonical, kind="header", app=app)

    def has_test(self, test_name: str) -> bool:
        return test_name in self._done

    def plan_record(self, app: str) -> Optional[Dict[str, Any]]:
        """The journaled incremental plan for ``app`` (None = not planned
        yet, or the journal predates planning)."""
        return self._plans.get(app)

    def record_plan(self, app: str, plan: Mapping[str, Any]) -> None:
        """Freeze the incremental plan into the journal (first run only;
        resumes replay it via :meth:`plan_record`)."""
        payload = json.loads(json.dumps(dict(plan)))
        self._append({"kind": "plan", "app": app, "plan": payload})
        self._plans[app] = payload

    @property
    def finished_tests(self) -> List[str]:
        return sorted(self._done)

    def restore_test(self, test_name: str,
                     tests_by_name: Mapping[str, UnitTest]
                     ) -> Tuple[List[InstanceResult], PoolStats, int,
                                Dict[str, int], int, str, str]:
        """Rebuild one finished test's contribution to the campaign."""
        record = self._done[test_name]
        results = [result_from_dict(r, tests_by_name)
                   for r in record["results"]]
        stats = PoolStats(**record["pool_stats"])
        fault_counts = {str(k): int(v)
                        for k, v in record.get("fault_counts", {}).items()}
        return (results, stats, int(record["executions"]), fault_counts,
                int(record.get("retries", 0)), record.get("error", ""),
                record.get("error_kind", ""))

    # -- writing -------------------------------------------------------
    def record_instance(self, result: InstanceResult) -> None:
        self._append(dict(result_to_dict(result), kind="instance"))

    def record_test_done(self, test_name: str, results: List[InstanceResult],
                         stats: PoolStats, executions: int,
                         fault_counts: Optional[Dict[str, int]] = None,
                         retries: int = 0, error: str = "",
                         error_kind: str = "") -> None:
        record = {
            "kind": "test-done",
            "test": test_name,
            "results": [result_to_dict(r) for r in results],
            "pool_stats": asdict(stats),
            "executions": executions,
            "fault_counts": dict(fault_counts or {}),
            "retries": retries,
            "error": error,
            "error_kind": error_kind,
        }
        self._append(record)
        self._done[test_name] = record

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            creating = not os.path.exists(self.path)
            with open(self.path, "a") as handle:
                handle.write(line)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            if creating:
                # The first append creates the file; without a directory
                # fsync the new name itself is not yet durable.
                fsync_directory(self.path)
