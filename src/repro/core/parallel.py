"""Process-backed profile scheduler: true parallelism for campaigns.

``CampaignConfig.workers`` originally fanned profiles over a
``ThreadPoolExecutor``, which models the paper's testbed but speeds
nothing up: the simulation is pure Python, so the GIL serializes the
actual work.  This module fans the same parallelism granule — one unit
test's whole profile — over *processes* instead.

This is the **bare** backend (``--no-supervise``): a plain
``ProcessPoolExecutor`` with no crash containment — one child that
segfaults or ``os._exit``s still kills the whole pool with
``BrokenProcessPool``.  The default path is the supervised pool in
:mod:`repro.core.supervise`, which owns its workers over explicit pipes
and survives child death; the wire format below is shared by both.

Design constraints and how they are met:

* **No pickling of live campaign state.**  The pool uses the ``fork``
  start method, and workers find the campaign through the module-global
  :data:`_WORKER_STATE` set just before the pool is created, so children
  inherit registries, corpora, and profiles by copy-on-write instead of
  serialization.  Only unit-test *names* cross the pipe going in, and
  JSON-able result dicts (the checkpoint wire format) cross coming back.
* **Shared-state writes happen in the parent.**  A forked child's
  :class:`FrequentFailureTracker` and checkpoint journal are private
  copies, so the parent replays each returned profile's confirmed-unsafe
  results into the real tracker and writes the authoritative
  ``test-done`` journal records itself — **as each profile completes**,
  not after the pool drains, so a mid-campaign crash loses only the
  in-flight profiles.  Blacklist propagation *between* concurrently
  running profiles is therefore backend-dependent — exactly as it
  already is for threads, where it depends on scheduling order.
* **Trace logs stay parent-only.**  A forked TraceLog would interleave
  half-written lines from many processes into one file descriptor, so
  the worker initializer disables tracing in the child; per-profile
  counters still flow back through :class:`ProfileOutcome`.
* **Graceful fallback.**  Platforms without ``fork`` (Windows, some
  sandboxes) silently degrade to the thread backend rather than failing
  the campaign.

Each child inherits a fork-time snapshot of the execution cache
(normally empty) and keeps a private cache across the profiles it owns;
cache keys include the unit-test name, so per-child caches lose no
cross-profile sharing the thread backend would have had for the same
profile set.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.checkpoint import result_from_dict, result_to_dict
from repro.core.pooling import PoolStats
from repro.core.registry import UnitTest

#: Set by the parent immediately before forking the pool:
#: ``{"campaign": Campaign, "profiles": {test name: TestProfile}}``.
_WORKER_STATE: Dict[str, Any] = {}


# ---------------------------------------------------------------------------
# ProfileOutcome <-> JSON-able dict (the checkpoint wire format)
# ---------------------------------------------------------------------------
def profile_outcome_to_dict(outcome: Any) -> Dict[str, Any]:
    return {
        "results": [result_to_dict(r) for r in outcome.results],
        "pool_stats": asdict(outcome.stats),
        "executions": outcome.executions,
        "fault_counts": dict(outcome.fault_counts),
        "retries": outcome.retries,
        "error": outcome.error,
        "error_kind": outcome.error_kind,
        # Observation.to_wire() dict (spans + metrics + sim clock) when
        # the observability layer is on; already JSON-able.
        "observation": outcome.observation,
    }


def profile_outcome_from_dict(record: Mapping[str, Any],
                              tests_by_name: Mapping[str, UnitTest]) -> Any:
    from repro.core.orchestrator import ProfileOutcome
    return ProfileOutcome(
        results=[result_from_dict(r, tests_by_name)
                 for r in record["results"]],
        stats=PoolStats(**record["pool_stats"]),
        executions=int(record["executions"]),
        fault_counts={str(k): int(v)
                      for k, v in record["fault_counts"].items()},
        retries=int(record["retries"]),
        error=str(record["error"]),
        error_kind=str(record.get("error_kind", "")),
        observation=record.get("observation"))


# ---------------------------------------------------------------------------
# child-side entry points
# ---------------------------------------------------------------------------
def _worker_init() -> None:
    """Runs once per forked child: detach shared output channels."""
    campaign = _WORKER_STATE.get("campaign")
    if campaign is not None:
        campaign.config.trace = None


def _run_profile_worker(test_name: str) -> Dict[str, Any]:
    campaign = _WORKER_STATE["campaign"]
    profile = _WORKER_STATE["profiles"][test_name]
    try:
        # checkpoint=None: journaling is the parent's job (the child's
        # journal object is a useless fork copy and concurrent appends
        # from many processes would tear the file).
        outcome = campaign._run_test_profile(profile, checkpoint=None)
    except Exception:  # noqa: BLE001 - degrade, never kill the pool
        from repro.core.orchestrator import HARNESS_ERROR, ProfileOutcome
        # The full traceback crosses the wire: the parent process cannot
        # reconstruct a child stack after the fact, and the markdown
        # report's infra section renders it for triage.
        outcome = ProfileOutcome(error=traceback.format_exc(),
                                 error_kind=HARNESS_ERROR)
    return profile_outcome_to_dict(outcome)


# ---------------------------------------------------------------------------
# parent-side scheduler
# ---------------------------------------------------------------------------
def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def commit_outcome(campaign: Any, checkpoint: Optional[Any], name: str,
                   outcome: Any, replay_tracker: bool = True) -> None:
    """Apply one finished profile's shared-state effects in the parent.

    Frequent-failure bookkeeping feeds both future blacklisting and the
    final report's blacklist section; it is replayed only for process
    workers (a thread worker shares the live tracker and already
    recorded its confirmations).  The ``test-done`` journal record is
    written immediately — the incremental-journaling invariant both
    backends rely on for crash-resume.
    """
    if replay_tracker:
        from repro.core.runner import CONFIRMED_UNSAFE
        for result in outcome.results:
            if result.verdict == CONFIRMED_UNSAFE:
                for param in result.instance.params:
                    campaign.tracker.record_unsafe(param, name)
    if checkpoint is not None:
        checkpoint.record_test_done(
            name, outcome.results, outcome.stats, outcome.executions,
            fault_counts=outcome.fault_counts, retries=outcome.retries,
            error=outcome.error, error_kind=outcome.error_kind)
    # Measured scheduling weights (repro.core.costmodel.CostBook) are a
    # commit-time concern too: they must be durable beside the journal
    # before a crash, so a resume reschedules from measured costs.
    campaign._record_measured_cost(name, outcome)
    # Live observability fold (metrics merge + progress tick); span
    # adoption happens later in deterministic profile order.
    campaign._profile_committed(outcome)


def run_profiles_in_processes(campaign: Any, profiles: Sequence[Any],
                              checkpoint: Optional[Any],
                              tests_by_name: Mapping[str, UnitTest]
                              ) -> List[Any]:
    """Run ``profiles`` across ``campaign.config.workers`` bare processes.

    Returns outcomes aligned with ``profiles``; tracker replay and
    checkpoint journaling happen here, in the parent, as each profile
    completes.
    """
    if not fork_available():
        from repro.core.supervise import run_profiles_in_threads
        return run_profiles_in_threads(campaign, profiles, checkpoint)

    names = [p.test.full_name for p in profiles]
    _WORKER_STATE["campaign"] = campaign
    _WORKER_STATE["profiles"] = {p.test.full_name: p for p in profiles}
    outcomes_by_name: Dict[str, Any] = {}
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=campaign.config.workers,
                                 mp_context=context,
                                 initializer=_worker_init) as pool:
            futures = {pool.submit(_run_profile_worker, name): name
                       for name in names}
            for future in as_completed(futures):
                name = futures[future]
                # BrokenProcessPool propagates here: the bare backend
                # cannot survive a hard-dead child.  Profiles journaled
                # before the crash are already durable.
                record = future.result()
                outcome = profile_outcome_from_dict(record, tests_by_name)
                commit_outcome(campaign, checkpoint, name, outcome)
                outcomes_by_name[name] = outcome
    finally:
        _WORKER_STATE.clear()
    return [outcomes_by_name[name] for name in names]
