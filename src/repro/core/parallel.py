"""Process-backed profile scheduler: true parallelism for campaigns.

``CampaignConfig.workers`` originally fanned profiles over a
``ThreadPoolExecutor``, which models the paper's testbed but speeds
nothing up: the simulation is pure Python, so the GIL serializes the
actual work.  This module fans the same parallelism granule — one unit
test's whole profile — over *processes* instead.

Design constraints and how they are met:

* **No pickling of live campaign state.**  The pool uses the ``fork``
  start method, and workers find the campaign through the module-global
  :data:`_WORKER_STATE` set just before the pool is created, so children
  inherit registries, corpora, and profiles by copy-on-write instead of
  serialization.  Only unit-test *names* cross the pipe going in, and
  JSON-able result dicts (the checkpoint wire format) cross coming back.
* **Shared-state writes happen in the parent.**  A forked child's
  :class:`FrequentFailureTracker` and checkpoint journal are private
  copies, so the parent replays each returned profile's confirmed-unsafe
  results into the real tracker and writes the authoritative
  ``test-done`` journal records itself, in submission order.  Blacklist
  propagation *between* concurrently running profiles is therefore
  backend-dependent — exactly as it already is for threads, where it
  depends on scheduling order.
* **Trace logs stay parent-only.**  A forked TraceLog would interleave
  half-written lines from many processes into one file descriptor, so
  the worker initializer disables tracing in the child; per-profile
  counters still flow back through :class:`ProfileOutcome`.
* **Graceful fallback.**  Platforms without ``fork`` (Windows, some
  sandboxes) silently degrade to the thread backend rather than failing
  the campaign.

Each child inherits a fork-time snapshot of the execution cache
(normally empty) and keeps a private cache across the profiles it owns;
cache keys include the unit-test name, so per-child caches lose no
cross-profile sharing the thread backend would have had for the same
profile set.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.checkpoint import result_from_dict, result_to_dict
from repro.core.pooling import PoolStats
from repro.core.registry import UnitTest

#: Set by the parent immediately before forking the pool:
#: ``{"campaign": Campaign, "profiles": {test name: TestProfile}}``.
_WORKER_STATE: Dict[str, Any] = {}


# ---------------------------------------------------------------------------
# ProfileOutcome <-> JSON-able dict (the checkpoint wire format)
# ---------------------------------------------------------------------------
def profile_outcome_to_dict(outcome: Any) -> Dict[str, Any]:
    return {
        "results": [result_to_dict(r) for r in outcome.results],
        "pool_stats": asdict(outcome.stats),
        "executions": outcome.executions,
        "fault_counts": dict(outcome.fault_counts),
        "retries": outcome.retries,
        "error": outcome.error,
    }


def profile_outcome_from_dict(record: Mapping[str, Any],
                              tests_by_name: Mapping[str, UnitTest]) -> Any:
    from repro.core.orchestrator import ProfileOutcome
    return ProfileOutcome(
        results=[result_from_dict(r, tests_by_name)
                 for r in record["results"]],
        stats=PoolStats(**record["pool_stats"]),
        executions=int(record["executions"]),
        fault_counts={str(k): int(v)
                      for k, v in record["fault_counts"].items()},
        retries=int(record["retries"]),
        error=str(record["error"]))


# ---------------------------------------------------------------------------
# child-side entry points
# ---------------------------------------------------------------------------
def _worker_init() -> None:
    """Runs once per forked child: detach shared output channels."""
    campaign = _WORKER_STATE.get("campaign")
    if campaign is not None:
        campaign.config.trace = None


def _run_profile_worker(test_name: str) -> Dict[str, Any]:
    campaign = _WORKER_STATE["campaign"]
    profile = _WORKER_STATE["profiles"][test_name]
    try:
        # checkpoint=None: journaling is the parent's job (the child's
        # journal object is a useless fork copy and concurrent appends
        # from many processes would tear the file).
        outcome = campaign._run_test_profile(profile, checkpoint=None)
    except Exception as exc:  # noqa: BLE001 - degrade, never kill the pool
        from repro.core.orchestrator import ProfileOutcome
        outcome = ProfileOutcome(error="%s: %s" % (type(exc).__name__, exc))
    return profile_outcome_to_dict(outcome)


# ---------------------------------------------------------------------------
# parent-side scheduler
# ---------------------------------------------------------------------------
def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_profiles_in_processes(campaign: Any, profiles: Sequence[Any],
                              checkpoint: Optional[Any],
                              tests_by_name: Mapping[str, UnitTest]
                              ) -> List[Any]:
    """Run ``profiles`` across ``campaign.config.workers`` processes.

    Returns outcomes aligned with ``profiles``; tracker replay and
    checkpoint journaling happen here, in the parent, in profile order.
    """
    from repro.core.runner import CONFIRMED_UNSAFE

    if not fork_available():
        with ThreadPoolExecutor(max_workers=campaign.config.workers) as pool:
            return list(pool.map(
                lambda p: campaign._run_profile_contained(p, checkpoint),
                profiles))

    names = [p.test.full_name for p in profiles]
    _WORKER_STATE["campaign"] = campaign
    _WORKER_STATE["profiles"] = {p.test.full_name: p for p in profiles}
    try:
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=campaign.config.workers,
                                 mp_context=context,
                                 initializer=_worker_init) as pool:
            records = list(pool.map(_run_profile_worker, names))
    finally:
        _WORKER_STATE.clear()

    outcomes: List[Any] = []
    for profile, record in zip(profiles, records):
        name = profile.test.full_name
        outcome = profile_outcome_from_dict(record, tests_by_name)
        # Replay shared-state effects the forked child could not apply:
        # frequent-failure bookkeeping feeds both future blacklisting and
        # the final report's blacklist section.
        for result in outcome.results:
            if result.verdict == CONFIRMED_UNSAFE:
                for param in result.instance.params:
                    campaign.tracker.record_unsafe(param, name)
        if checkpoint is not None:
            checkpoint.record_test_done(
                name, outcome.results, outcome.stats, outcome.executions,
                fault_counts=outcome.fault_counts, retries=outcome.retries,
                error=outcome.error)
        outcomes.append(outcome)
    return outcomes
