"""Pooled testing: divide and conquer over parameters (§4).

Most parameters are heterogeneous *safe*, so instead of one unit-test run
per parameter, ZebraConf tests a whole **pool** of parameters in one run —
each pooled parameter gets its own heterogeneous assignment
simultaneously.  A passing pooled run clears every member; a failing one
is bisected recursively until the offending singletons are isolated, and
singletons get the full Definition-3.1 treatment (homogeneous baselines +
hypothesis-testing confirmation) from :class:`~repro.core.runner.TestRunner`.

A small number of unsafe parameters (encryption, compression, ...) fail
almost every unit test and would drag every pool into bisection.  The
:class:`FrequentFailureTracker` implements the paper's countermeasure: a
parameter confirmed unsafe by enough distinct unit tests is marked unsafe
outright and excluded from future pools.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.execcache import execution_seed
from repro.core.runner import CONFIRMED_UNSAFE, InstanceResult, TestRunner
from repro.core.registry import UnitTest
from repro.core.testgen import HeteroAssignment, ParamAssignment, TestInstance


class FrequentFailureTracker:
    """Blacklist parameters that keep failing unit tests (§4).

    ``threshold`` distinct unit tests confirming a parameter unsafe are
    enough to stop testing it: it is reported unsafe and never pooled
    again.

    One tracker is shared by every worker thread of a campaign
    (``CampaignConfig.workers > 1``), so the read-modify-write in
    :meth:`record_unsafe` is guarded by a lock — without it two threads
    confirming the same parameter concurrently could each observe a
    below-threshold set and the parameter would never be blacklisted.
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = threshold
        self._lock = threading.Lock()
        self._failed_tests: Dict[str, Set[str]] = {}
        self.blacklisted: Set[str] = set()

    def record_unsafe(self, param: str, test_name: str) -> None:
        with self._lock:
            tests = self._failed_tests.setdefault(param, set())
            tests.add(test_name)
            if len(tests) >= self.threshold:
                self.blacklisted.add(param)

    def failure_count(self, param: str) -> int:
        with self._lock:
            return len(self._failed_tests.get(param, set()))

    def allowed(self, param: str) -> bool:
        with self._lock:
            return param not in self.blacklisted


@dataclass
class PoolStats:
    """Bookkeeping for the Table-5 "after pooled testing" row."""

    pool_runs: int = 0
    bisection_runs: int = 0
    singleton_instances: int = 0
    pools_cleared: int = 0
    params_cleared_in_pools: int = 0
    interference_events: int = 0
    blacklist_skips: int = 0
    already_confirmed_skips: int = 0
    #: pool executions voided (infra error or watchdog timeout) and
    #: re-drawn under a fresh seed instead of bisected.
    pool_voids: int = 0
    #: pools abandoned after every re-draw came back infrastructural —
    #: no oracle signal, so bisection would only burn executions.
    pool_infra_giveups: int = 0
    #: execution-cache counters (merged from the campaign's runners).
    exec_cache_hits: int = 0
    exec_cache_misses: int = 0
    exec_cache_bypasses: int = 0

    @property
    def total_instances_run(self) -> int:
        return self.pool_runs + self.bisection_runs + self.singleton_instances


class PooledTester:
    """Runs one (unit test, group, strategy) worth of parameters as pools."""

    def __init__(self, runner: TestRunner,
                 tracker: Optional[FrequentFailureTracker] = None,
                 max_pool_size: Optional[int] = None,
                 on_result: Optional[Callable[[InstanceResult], None]] = None,
                 max_pool_redraws: int = 2) -> None:
        self.runner = runner
        self.tracker = tracker if tracker is not None else FrequentFailureTracker()
        #: None reproduces the paper's setting: "we set the maximal pool
        #: size to be equal to the number of parameters".
        self.max_pool_size = max_pool_size
        #: how many times a voided (infra/timed-out) pool execution is
        #: re-drawn under a fresh seed before the pool gives up (infra)
        #: or the failure is accepted as oracle evidence (timeout).
        self.max_pool_redraws = max(max_pool_redraws, 0)
        #: invoked with each InstanceResult the moment it is produced
        #: (campaign checkpoints journal through this).
        self.on_result = on_result
        self.stats = PoolStats()
        #: test full name -> parameters already confirmed unsafe on it;
        #: once a parameter is confirmed for a unit test, its remaining
        #: (strategy, value-pair) instances on that test are redundant.
        self._confirmed_on_test: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def run(self, test: UnitTest, group: str, strategy: str,
            units: Sequence[ParamAssignment]) -> List[InstanceResult]:
        """Test all ``units`` (one per parameter), pooling then bisecting."""
        allowed = []
        confirmed_here = self._confirmed_on_test.setdefault(test.full_name, set())
        for unit in units:
            if not self.tracker.allowed(unit.param):
                self.stats.blacklist_skips += 1
            elif unit.param in confirmed_here:
                self.stats.already_confirmed_skips += 1
            else:
                allowed.append(unit)
        results: List[InstanceResult] = []
        pool_size = self.max_pool_size or len(allowed) or 1
        for start in range(0, len(allowed), pool_size):
            pool = list(allowed[start:start + pool_size])
            results.extend(self._run_pool(test, group, strategy, pool, depth=0))
        return results

    # ------------------------------------------------------------------
    def _run_pool(self, test: UnitTest, group: str, strategy: str,
                  units: List[ParamAssignment], depth: int) -> List[InstanceResult]:
        if not units:
            return []
        obs = getattr(self.runner, "obs", None)
        if obs is None or len(units) == 1:
            return self._run_pool_inner(test, group, strategy, units, depth)
        kind = "pool" if depth == 0 else "bisection"
        metrics = obs.metrics
        if depth == 0:
            metrics.hist_observe("zc_pool_size", len(units))
        else:
            metrics.gauge_max("zc_pool_max_depth", depth)
        with obs.span(test.full_name, kind=kind, size=len(units),
                      depth=depth, params=[u.param for u in units]):
            return self._run_pool_inner(test, group, strategy, units, depth)

    def _run_pool_inner(self, test: UnitTest, group: str, strategy: str,
                        units: List[ParamAssignment],
                        depth: int) -> List[InstanceResult]:
        if len(units) == 1:
            param = units[0].param
            confirmed_here = self._confirmed_on_test.setdefault(test.full_name,
                                                                set())
            if param in confirmed_here:
                self.stats.already_confirmed_skips += 1
                return []
            self.stats.singleton_instances += 1
            instance = TestInstance(test=test, group=group, strategy=strategy,
                                    assignment=HeteroAssignment(tuple(units)))
            result = self.runner.evaluate(instance)
            if result.verdict == CONFIRMED_UNSAFE:
                confirmed_here.add(param)
                self.tracker.record_unsafe(param, test.full_name)
            if self.on_result is not None:
                self.on_result(result)
            return [result]

        assignment = HeteroAssignment(tuple(units))
        canonical = self.runner.canonical_form(assignment)
        if depth == 0:
            self.stats.pool_runs += 1
        else:
            self.stats.bisection_runs += 1
        # Pool seeds derive from the assignment *content* (not the group/
        # strategy/depth labels), so a bisection half that reconstitutes an
        # already-seen parameter set re-uses its execution via the cache.
        outcome = self.runner.execute(
            test, assignment, execution_seed(test.full_name, canonical, 0),
            canonical=canonical)
        redraws = 0
        while ((outcome.infra or outcome.timed_out)
               and redraws < self.max_pool_redraws):
            # An infrastructure error (or a watchdog kill) carries no
            # oracle signal about any pooled parameter; bisecting on it
            # would waste up to 2·|pool| executions.  Void the run and
            # re-draw under a fresh seed.
            redraws += 1
            self.stats.pool_voids += 1
            outcome = self.runner.execute(
                test, assignment,
                execution_seed(test.full_name, canonical, redraws),
                canonical=canonical)
        if outcome.infra:
            # Still infrastructural after every re-draw: the harness, not
            # the configuration, is failing.  Give the pool up rather than
            # feeding bisection garbage; the campaign surfaces this via
            # PoolStats.pool_infra_giveups.
            self.stats.pool_infra_giveups += 1
            return []
        if outcome.ok:
            if depth == 0:
                self.stats.pools_cleared += 1
                self.stats.params_cleared_in_pools += len(units)
            return []

        mid = len(units) // 2
        left = self._run_pool(test, group, strategy, units[:mid], depth + 1)
        right = self._run_pool(test, group, strategy, units[mid:], depth + 1)
        if not any(r.verdict == CONFIRMED_UNSAFE for r in left + right):
            # Both halves exonerated every parameter although the pool
            # failed: either a parameter interaction (violating the §4
            # independence assumption) or nondeterminism.  Recorded, not
            # reported — matching the paper's stated assumption.
            self.stats.interference_events += 1
        return left + right
