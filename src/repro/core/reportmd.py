"""Markdown rendering of campaign reports (the CLI's ``--markdown``).

CI systems and code review surfaces consume markdown; this renders the
same content as the text renderers — verdicts, stage counts, §7.2
statistics — as pipe tables, one document per campaign or evaluation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.report import AppReport, CampaignReport


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def app_report_markdown(report: AppReport) -> str:
    sections: List[str] = ["# ZebraConf campaign: %s" % report.app, ""]

    sections.append("## Instances per stage")
    sections.append(_table(["Stage", "Instances"],
                           [[stage, format(count, ",")]
                            for stage, count in report.stage_counts.rows()]))
    sections.append("")

    sections.append("## Reported parameters")
    if report.verdicts:
        sections.append(_table(
            ["Parameter", "Verdict", "Category / cause", "Failing tests"],
            [[v.param,
              "**TRUE PROBLEM**" if v.is_true_problem else "false positive",
              v.category if v.is_true_problem else v.fp_reason,
              len(v.failing_tests)] for v in report.verdicts]))
    else:
        sections.append("_none_")
    sections.append("")

    audit = report.audit
    if audit is not None:
        sections.append("## Wiring audit")
        sections.append(_table(["metric", "value"], [
            ["parameters audited", audit.params_total],
            ["WIRED", audit.wired],
            ["UNREAD", audit.unread],
            ["READ_BUT_INERT", audit.inert],
            ["flagged but exempt", audit.exempt_flagged],
            ["differential probe executions",
             format(audit.probe_executions, ",")],
            ["probe cache hits", format(audit.probe_cache_hits, ",")],
            ["probes collapsed onto baseline",
             format(audit.probes_collapsed, ",")],
            ["audit machine hours (separate budget)",
             "%.1f" % (audit.machine_time_s / 3600)],
        ]))
        sections.append("")
        flagged = audit.flagged()
        if flagged:
            sections.append(_table(
                ["Parameter", "Verdict", "Read sites", "Detail"],
                [["`%s`" % f.param, "**%s**" % f.verdict,
                  len(f.read_sites), f.detail] for f in flagged]))
        else:
            sections.append("_every audited parameter is wired_")
        sections.append("")

    hypo = report.hypothesis_stats
    sections.append("## Run statistics")
    stats_rows = [
        ["unit-test executions", format(report.executions, ",")],
        ["modelled machine hours", "%.1f" % (report.machine_time_s / 3600)],
        ["suspicious first trials", hypo.suspicious_first_trial],
        ["filtered as flaky", hypo.filtered_as_flaky],
        ["blacklisted parameters", len(report.blacklisted)],
    ]
    pool = report.pool_stats
    if pool.pool_voids or pool.pool_infra_giveups:
        stats_rows.append(["voided pool runs (re-drawn)", pool.pool_voids])
        stats_rows.append(["pools abandoned as infra",
                           pool.pool_infra_giveups])
    if report.exec_cache_enabled:
        stats_rows.append(["exec-cache hits", format(pool.exec_cache_hits,
                                                     ",")])
        stats_rows.append(["exec-cache misses",
                           format(pool.exec_cache_misses, ",")])
        stats_rows.append(["exec-cache bypasses", pool.exec_cache_bypasses])
    sections.append(_table(["metric", "value"], stats_rows))
    sections.append("")

    plan = report.plan
    if plan is not None:
        from repro.core.plan import PLAN_NEW, PLAN_RERUN, PLAN_REUSE
        sections.append("## Campaign plan")
        sections.append(_table(["metric", "value"], [
            ["profiles reused from store", plan.count(PLAN_REUSE)],
            ["profiles rerun (substrate changed)", plan.count(PLAN_RERUN)],
            ["profiles new to the store", plan.count(PLAN_NEW)],
            ["reuse demoted by blacklist coupling", plan.demoted],
            ["executions saved", format(plan.executions_saved, ",")],
        ]))
        sections.append("")
        sections.append(_table(
            ["Unit test", "Decision", "Reason", "Executions saved"],
            [["`%s`" % p.test, p.decision.upper(), p.reason,
              format(p.executions_saved, ",")] for p in plan.profiles]))
        sections.append("")

    if report.cost_centers:
        sections.append("## Top cost centers")
        sections.append(_table(
            ["Unit test", "Executions", "Predicted", "Modelled hours",
             "Instances"],
            [["`%s`" % center.test, format(center.executions, ","),
              format(center.predicted_executions, ","),
              "%.1f" % (center.machine_time_s / 3600), center.instances]
             for center in report.cost_centers]))
        sections.append("")

    if report.observation is not None:
        from repro.core.observe import phase_costs
        rows = phase_costs(report.observation)
        if rows:
            sections.append("## Where time went")
            sections.append(_table(
                ["Phase", "Spans", "Modelled hours (self time)"],
                [[kind, count, "%.1f" % (self_s / 3600)]
                 for kind, count, self_s in rows]))
            sections.append("")

    supervision = report.supervision
    if supervision.enabled:
        sections.append("## Worker supervision")
        sections.append(_table(["metric", "value"], [
            ["workers spawned", supervision.workers_spawned],
            ["worker crashes", supervision.crashes],
            ["respawns", supervision.respawns],
            ["profile redeliveries", supervision.redeliveries],
            ["deadline kills", supervision.deadline_kills],
            ["heartbeat kills", supervision.heartbeat_kills],
            ["rlimit recycles", supervision.recycles],
            ["profiles quarantined", supervision.quarantined],
            ["circuit breaker tripped",
             "**yes — partial report**" if supervision.circuit_breaker_tripped
             else "no"],
        ]))
        sections.append("")

    store = report.store
    if store is not None and store.enabled:
        sections.append("## Result store")
        store_rows = [
            ["segments", store.segments],
            ["entries loaded at open", format(store.entries_loaded, ",")],
            ["reports loaded at open", store.reports_loaded],
            ["store hits", format(store.hits, ",")],
            ["store misses", format(store.misses, ",")],
            ["entries appended", format(store.appends, ",")],
        ]
        if store.salvaged_records or store.corrupt_records \
                or store.truncated_tails:
            store_rows.append(["records salvaged from damaged segments",
                               store.salvaged_records])
            store_rows.append(["corrupt records skipped",
                               store.corrupt_records])
            store_rows.append(["truncated tails skipped",
                               store.truncated_tails])
        if store.stale_refused:
            store_rows.append(["stale entries refused (digest mismatch)",
                               store.stale_refused])
        if store.write_errors:
            store_rows.append(
                ["write errors (store degraded to read-only)",
                 "**%d**" % store.write_errors])
        sections.append(_table(["metric", "value"], store_rows))
        sections.append("")

    distribution = report.distribution
    if distribution.enabled:
        sections.append("## Fleet")
        fleet_rows = [
            ["coordinator listen address", distribution.listen],
            ["workers joined", distribution.workers_joined],
            ["workers lost", distribution.workers_lost],
            ["leases granted", distribution.leases_granted],
            ["lease redeliveries", distribution.redeliveries],
            ["work-stealing copies", distribution.steals],
            ["duplicate outcomes suppressed",
             distribution.duplicates_suppressed],
            ["heartbeat expiries", distribution.heartbeat_expiries],
            ["lease deadline expiries", distribution.lease_expiries],
            ["connections refused by auth handshake",
             distribution.auth_rejects],
            ["profiles quarantined", distribution.quarantined],
            ["profiles run remotely", distribution.remote_profiles],
            ["profiles run by local fallback", distribution.local_profiles],
            ["degraded to local pool",
             "**yes**" if distribution.degraded_to_local else "no"],
        ]
        for kind, count in sorted(distribution.net_faults.items()):
            fleet_rows.append(["injected net faults (%s)" % kind, count])
        sections.append(_table(["metric", "value"], fleet_rows))
        sections.append("")
        if distribution.fleet:
            sections.append(_table(
                ["Worker", "Connects", "Profiles", "Leases lost"],
                [[w.worker, w.connects, w.profiles, w.leases_lost]
                 for w in sorted(distribution.fleet,
                                 key=lambda w: w.worker)]))
            sections.append("")

    if report.degraded_tests:
        sections.append("## Infrastructure failures")
        quarantined = set(report.quarantined_tests)
        sections.append(_table(["Unit test", "Failure"], [
            ["`%s`" % name,
             "worker crash (profile quarantined)" if name in quarantined
             else "harness error (profile degraded)"]
            for name in report.degraded_tests]))
        sections.append("")
        for name in report.degraded_tests:
            error = report.degraded_errors.get(name, "")
            if not error:
                continue
            sections.append("### `%s`" % name)
            sections.append("```\n%s\n```" % error.rstrip("\n"))
            sections.append("")
    return "\n".join(sections)


def campaign_report_markdown(report: CampaignReport) -> str:
    sections: List[str] = ["# ZebraConf evaluation", ""]
    sections.append(_table(
        ["", "count"],
        [["reported parameters", len(report.unique_verdicts())],
         ["true problems", len(report.unique_true_problems())],
         ["false positives", len(report.unique_false_positives())],
         ["machine hours (modelled)",
          "%.1f" % report.total_machine_hours]]))
    sections.append("")
    sections.append("## True heterogeneous-unsafe parameters")
    from repro.apps.catalog import TABLE3_WHY, section_for_param
    sections.append(_table(
        ["Section", "Parameter", "Why (paper's Table 3)"],
        [[section_for_param(v.param), "`%s`" % v.param,
          TABLE3_WHY.get(v.param, v.category)]
         for v in report.unique_true_problems()]))
    sections.append("")
    for app_report in report.apps:
        sections.append(app_report_markdown(app_report))
    return "\n".join(sections)
