"""Pre-run phase: profile each unit test once to filter ineffective
instances (§4 "Pre-run unit tests", §6.2 Observation 3).

The pre-run executes every unit test exactly once under a recording
:class:`~repro.core.confagent.ConfAgent` (no value injection) and learns:

* which node types the test starts (tests that start none are dropped);
* which parameters each node type — and the unit test itself, treated as
  a client node — actually reads;
* which parameters were read through configuration objects the mapping
  rules could not place (those (test, parameter) combinations are
  excluded, because misattributed injection would fabricate intra-node
  inconsistencies and hence false positives);
* whether the test already fails with its original homogeneous
  configuration (broken-at-baseline tests are dropped).
"""

from __future__ import annotations

import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.confagent import UNIT_TEST, ConfAgent
from repro.core.registry import TestContext, UnitTest

#: Seed used for every pre-run so profiles are reproducible.
PRERUN_SEED = 20210426  # EuroSys'21 opening day


@dataclass
class TestProfile:
    """What the pre-run learned about one unit test."""

    test: UnitTest
    #: node type -> count; includes UNIT_TEST (count 1) when the test's
    #: own configuration objects read any parameter.
    groups: Dict[str, int] = field(default_factory=dict)
    #: node type (or UNIT_TEST) -> parameters read through its confs.
    params_by_group: Dict[str, Set[str]] = field(default_factory=dict)
    #: parameters read through unmappable configuration objects.
    uncertain_params: Set[str] = field(default_factory=set)
    #: parameters the test explicitly ``set``s during execution; the
    #: execution cache must not collapse homo(param=default) onto the
    #: original run for these (injection shadows the explicit set).
    explicit_sets: Set[str] = field(default_factory=set)
    #: read-site attribution: (node_type, node_index) -> {param -> get
    #: count}.  The wiring audit (repro.core.audit) inverts this into
    #: per-parameter read sites with component granularity.
    read_sites: Dict[Tuple[str, int], Dict[str, int]] = field(
        default_factory=dict)
    #: baseline failure message, if the test failed its pre-run.
    baseline_error: Optional[str] = None
    starts_nodes: bool = False
    #: wall seconds the single pre-run execution took.  Volatile (host
    #: dependent) — used only as the per-execution weight in the cost
    #: model's makespan scheduling, never in findings or reports.
    prerun_wall_s: float = 0.0

    @property
    def usable(self) -> bool:
        return self.starts_nodes and self.baseline_error is None

    def testable_params(self, group: str) -> Set[str]:
        """Parameters worth testing on ``group`` after all exclusions."""
        return self.params_by_group.get(group, set()) - self.uncertain_params


def prerun_test(test: UnitTest) -> TestProfile:
    """Execute one unit test in recording mode and build its profile."""
    profile = TestProfile(test=test)
    agent = ConfAgent(assignment=None, record_usage=True)
    ctx = TestContext(rng=random.Random(PRERUN_SEED), trial=-1)
    started = time.perf_counter()
    with agent:
        try:
            test.fn(ctx)
        except Exception as exc:  # noqa: BLE001 - a failing test is data
            profile.baseline_error = "%s: %s" % (type(exc).__name__, exc)
    profile.prerun_wall_s = time.perf_counter() - started
    profile.groups = agent.started_node_groups()
    profile.starts_nodes = bool(profile.groups)
    for owner, params in agent.usage.items():
        profile.params_by_group[owner] = set(params)
    if agent.usage.get(UNIT_TEST):
        profile.groups[UNIT_TEST] = 1
    profile.uncertain_params = set(agent.uncertain_params)
    profile.explicit_sets = set(agent.set_params)
    profile.read_sites = {site: dict(counts)
                          for site, counts in agent.read_sites.items()}
    return profile


def prerun_corpus(tests: List[UnitTest]) -> List[TestProfile]:
    return [prerun_test(test) for test in tests]


@dataclass
class PreRunSummary:
    """Aggregate pre-run statistics for reporting (Table 5 support)."""

    total_tests: int = 0
    tests_without_nodes: int = 0
    tests_broken_at_baseline: int = 0
    tests_with_uncertain_confs: int = 0

    @classmethod
    def from_profiles(cls, profiles: List[TestProfile]) -> "PreRunSummary":
        summary = cls(total_tests=len(profiles))
        for profile in profiles:
            if not profile.starts_nodes:
                summary.tests_without_nodes += 1
            if profile.baseline_error is not None:
                summary.tests_broken_at_baseline += 1
            if profile.uncertain_params:
                summary.tests_with_uncertain_confs += 1
        return summary
