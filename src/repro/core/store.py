"""Durable, crash-consistent result store shared across campaigns.

PR 2's content-addressed execution cache dies with the process, so every
campaign starts cold.  This module persists the cache's two tiers
(deterministic / seeded) and finished ``AppReport``s on disk, behind
``--store DIR``, with **crash consistency as the contract** rather than
an aspiration:

* **Append-only CRC32-framed segments.**  Every record is
  ``MAGIC | length | crc32 | JSON payload``; appends reuse the
  checkpoint module's fsync discipline (flush + ``os.fsync`` per record,
  directory fsync when a segment is created).  A record is either fully
  durable or detectably damaged — there is no in-place mutation to tear.
* **Salvage-everything recovery.**  Opening a store scans every segment;
  a truncated tail stops the scan cleanly, a corrupt frame mid-file
  triggers a byte-wise resync on the next magic marker, and every record
  whose CRC verifies is served.  Reopen never raises on damage — damage
  is *counted* (``StoreStats``), not fatal.
* **Substrate guard.**  Segments open with a version header, and every
  entry carries the ``(app, corpus digest)`` it was produced under
  (the distribution layer's handshake digest).  A newer-format store is
  refused outright (:class:`StoreError`); entries from a different
  digest of the *same* app are silently not served (counted as stale) —
  config substrates drift across releases, and replaying results across
  that drift would fabricate findings.
* **Concurrent writers.**  Each writer claims a fresh segment under a
  brief exclusive ``flock`` on ``LOCK``, then holds a lifetime ``flock``
  on its own segment.  Forked children (process backend, supervised
  pool) detect the pid change and claim their own segment lazily — the
  inherited parent handle is left untouched because flock is per
  open-file-description.  GC skips any segment whose lock is still held.
* **Degradation over loss.**  A failed append (ENOSPC, I/O error — real
  or injected via :class:`repro.common.faults.DiskFaultPlan`) retires
  the writer and the store continues read-only; the campaign's findings
  never depend on the store being writable.

The serving path plugs into the campaign as
:class:`StoreBackedExecutionCache`, a drop-in ``ExecutionCache`` whose
misses fall through to the loaded persistent entries (promote-on-hit)
and whose stores also append a durable record.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import asdict, dataclass, field, replace
from typing import (Any, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from repro.common.errors import ReproError
from repro.common.faults import DiskFaultPlan, FaultyFile
from repro.core.checkpoint import fsync_directory
from repro.core.execcache import ExecutionCache
from repro.core.runner import RunOutcome

try:  # advisory locking is POSIX-only; the store degrades to lock-free
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bump on any incompatible change to the record format.  A store written
#: by a newer version is *refused*, never guessed at.
STORE_VERSION = 1

#: Frame marker.  Scans resynchronise on it after corruption.
MAGIC = b"ZCRS"

_FRAME_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

#: Upper bound on one record.  A "length" beyond this is treated as frame
#: corruption (a garbage length would otherwise swallow the whole tail).
MAX_RECORD = 8 * 1024 * 1024

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"
MANIFEST_NAME = "MANIFEST.json"
LOCK_NAME = "LOCK"


class StoreError(ReproError):
    """The store cannot be used at all (format from the future, unusable
    root path).  Damage within a compatible store is never an error —
    it is salvaged around and counted."""


@dataclass
class StoreStats:
    """Counters for one store session (scan + serve + append)."""

    enabled: bool = True
    #: segments scanned at open.
    segments: int = 0
    #: entries loaded for *this* campaign's (app, digest).
    entries_loaded: int = 0
    #: reports seen at open (all substrates).
    reports_loaded: int = 0
    #: whole-profile records loaded for this campaign's app (all
    #: digests: profile reuse is keyed by content, not corpus digest).
    profiles_loaded: int = 0
    #: valid records recovered from segments that also contained damage.
    salvaged_records: int = 0
    #: damage events: bad CRC/magic/length frames and skipped byte spans.
    corrupt_records: int = 0
    #: segments ending in an incomplete frame (interrupted final append).
    truncated_tails: int = 0
    #: same-app entries refused because their corpus digest differs.
    stale_refused: int = 0
    #: lookups served from persisted entries this session.
    hits: int = 0
    #: lookups that missed memory *and* the persisted entries.
    misses: int = 0
    #: records durably appended this session.
    appends: int = 0
    #: failed appends (the writer is retired after the first).
    write_errors: int = 0


def _frame(payload: bytes) -> bytes:
    return MAGIC + _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _encode(record: Mapping[str, Any]) -> bytes:
    return _frame(json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8"))


def iter_frames(data: bytes) -> Iterator[Tuple[str, Any]]:
    """Yield ``("record", payload)`` for every intact frame in ``data``,
    interleaved with ``("corrupt", byte_offset)`` damage events and at
    most one trailing ``("truncated", byte_offset)``.

    Recovery rule: a frame is served iff its magic, length, and CRC all
    verify.  After any damage the scan resynchronises on the next magic
    marker, so intact records *beyond* a corrupt span are still salvaged
    — a false marker inside a payload merely fails its CRC and the scan
    moves on.
    """
    offset, size = 0, len(data)
    while offset < size:
        start = data.find(MAGIC, offset)
        if start < 0:
            yield ("corrupt", offset)
            return
        if start > offset:
            yield ("corrupt", offset)
        header_end = start + len(MAGIC) + _FRAME_HEADER.size
        if header_end > size:
            yield ("truncated", start)
            return
        length, crc = _FRAME_HEADER.unpack(
            data[start + len(MAGIC):header_end])
        if length > MAX_RECORD:
            yield ("corrupt", start)
            offset = start + 1
            continue
        end = header_end + length
        if end > size:
            yield ("truncated", start)
            return
        payload = data[header_end:end]
        if zlib.crc32(payload) != crc:
            yield ("corrupt", start)
            offset = start + 1
            continue
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            yield ("corrupt", start)
            offset = start + 1
            continue
        yield ("record", record)
        offset = end


@dataclass
class _SegmentScan:
    """Everything recovered from one segment file."""

    name: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    corrupt: int = 0
    truncated: int = 0

    @property
    def damaged(self) -> bool:
        """True when the scan hit any corrupt record or truncated tail."""
        return bool(self.corrupt or self.truncated)


def _scan_segment(path: str) -> _SegmentScan:
    scan = _SegmentScan(name=os.path.basename(path))
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError:
        scan.corrupt += 1
        return scan
    for kind, value in iter_frames(data):
        if kind == "record":
            if isinstance(value, dict):
                scan.records.append(value)
            else:
                scan.corrupt += 1
        elif kind == "corrupt":
            scan.corrupt += 1
        else:
            scan.truncated += 1
    return scan


class ResultStore:
    """One process's handle on a store directory.

    ``open(app, digest)`` scans the segments and builds the serving maps
    for that substrate; a writer segment is claimed lazily on the first
    append (and re-claimed per pid, so forked campaign workers each own
    their segment).  Construction without ``open`` is enough for the
    maintenance surface (``summary`` / ``gc``) used by ``repro store``.
    """

    def __init__(self, root: str,
                 disk_fault_plan: Optional[DiskFaultPlan] = None) -> None:
        self.root = root
        self.disk_fault_plan = disk_fault_plan
        self.stats = StoreStats()
        self.fault_counts: Dict[str, int] = {}
        # RLock: the append path holds it across segment claiming, which
        # itself touches manifest helpers that count their own errors.
        self._lock = threading.RLock()
        self.app: Optional[str] = None
        self.digest: Optional[int] = None
        self._det: Dict[str, RunOutcome] = {}
        self._seeded: Dict[Tuple[str, int], RunOutcome] = {}
        # whole-profile records for incremental planning (repro.core.plan):
        # newest record per content key, and per test name (so a changed
        # test is classified RERUN rather than NEW).
        self._profiles_by_key: Dict[str, Dict[str, Any]] = {}
        self._profile_by_test: Dict[str, Dict[str, Any]] = {}
        self._writer: Optional[Any] = None
        self._writer_pid: Optional[int] = None
        self._writer_dead = False

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    @property
    def segments_dir(self) -> str:
        """The directory holding the CRC-framed segment files."""
        return os.path.join(self.root, "segments")

    def _segment_paths(self) -> List[str]:
        try:
            names = os.listdir(self.segments_dir)
        except OSError:
            return []
        return [os.path.join(self.segments_dir, name)
                for name in sorted(names)
                if name.startswith(_SEGMENT_PREFIX)
                and name.endswith(_SEGMENT_SUFFIX)]

    def _ensure_layout(self) -> None:
        try:
            os.makedirs(self.segments_dir, exist_ok=True)
        except OSError as exc:
            raise StoreError("cannot create store at %r: %s"
                             % (self.root, exc))

    # ------------------------------------------------------------------
    # manifest (advisory bookkeeping; the directory is the truth)
    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def read_manifest(self) -> Dict[str, Any]:
        """The advisory manifest, normalised; a valid empty one on damage.

        The manifest is bookkeeping only — the segments directory is the
        truth — so an unreadable or malformed file is never an error.
        """
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return {"version": STORE_VERSION, "segments": []}
        if isinstance(manifest, dict):
            manifest.setdefault("version", STORE_VERSION)
            manifest.setdefault("segments", [])
            return manifest
        return {"version": STORE_VERSION, "segments": []}

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        """Atomic temp + rename + fsync: readers see the old manifest or
        the new one, never a torn one.  Failures are survivable — open()
        reconciles against the directory listing anyway."""
        path = self._manifest_path()
        temp = path + ".tmp.%d" % os.getpid()
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
            fsync_directory(path)
        except OSError:
            with self._lock:
                self.stats.write_errors += 1
            try:
                os.unlink(temp)
            except OSError:
                pass

    def _reconcile_manifest(self) -> None:
        """Fold crash gaps back in: segments on disk but missing from the
        manifest (died between segment create and manifest write) are
        added; manifest entries with no file (died mid-GC) are dropped."""
        on_disk = [os.path.basename(p) for p in self._segment_paths()]
        manifest = self.read_manifest()
        if manifest.get("segments") != on_disk:
            manifest["segments"] = on_disk
            self._write_manifest(manifest)

    # ------------------------------------------------------------------
    # advisory locking
    # ------------------------------------------------------------------
    def _flock(self, handle: Any, flags: int) -> bool:
        if fcntl is None:
            return True
        try:
            fcntl.flock(handle.fileno(), flags)
            return True
        except OSError:
            return False

    def _claim_lock(self) -> Optional[Any]:
        """The store-wide LOCK, held only across segment allocation and
        GC planning (never across record I/O)."""
        try:
            handle = open(os.path.join(self.root, LOCK_NAME), "ab")
        except OSError:
            return None
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                handle.close()
                return None
        return handle

    # ------------------------------------------------------------------
    # open / scan
    # ------------------------------------------------------------------
    def open(self, app: str, digest: int) -> StoreStats:
        """Scan the store and build the serving maps for one substrate.

        Never raises on damage; raises :class:`StoreError` only for an
        unusable root or a store written by a newer format version.
        """
        self._ensure_layout()
        self.app = app
        self.digest = digest
        for path in self._segment_paths():
            scan = _scan_segment(path)
            self._ingest(scan)
        self._reconcile_manifest()
        return self.stats

    def _check_version(self, record: Mapping[str, Any], name: str) -> None:
        version = record.get("version")
        if isinstance(version, int) and version > STORE_VERSION:
            raise StoreError(
                "store segment %s was written by format version %d; this "
                "build reads up to version %d — refusing to guess"
                % (name, version, STORE_VERSION))

    def _ingest(self, scan: _SegmentScan) -> None:
        with self._lock:
            self.stats.segments += 1
            self.stats.corrupt_records += scan.corrupt
            self.stats.truncated_tails += scan.truncated
        loaded = 0
        for record in scan.records:
            kind = record.get("kind")
            if kind == "header":
                self._check_version(record, scan.name)
                continue
            if kind == "report":
                with self._lock:
                    self.stats.reports_loaded += 1
                continue
            if kind == "profile":
                # Profile records are filtered by app only, NOT by corpus
                # digest: reusing them across registry drift is the whole
                # point — the per-profile content key embeds the parameter
                # definitions, so staleness is decided per profile, not
                # per substrate.
                if record.get("app") != self.app:
                    continue
                key = record.get("key")
                test = record.get("test")
                if not isinstance(key, str) or not isinstance(test, str) \
                        or not isinstance(record.get("record"), dict):
                    with self._lock:
                        self.stats.corrupt_records += 1
                    continue
                with self._lock:
                    self._profiles_by_key[key] = record
                    self._profile_by_test[test] = record
                    self.stats.profiles_loaded += 1
                continue
            if kind != "entry":
                continue
            if record.get("app") != self.app:
                continue
            if record.get("digest") != self.digest:
                with self._lock:
                    self.stats.stale_refused += 1
                continue
            outcome = _outcome_from_record(record)
            if outcome is None:
                with self._lock:
                    self.stats.corrupt_records += 1
                continue
            key = record["key"]
            seed = record.get("seed")
            with self._lock:
                if seed is None:
                    self._det[key] = outcome
                else:
                    self._seeded[(key, int(seed))] = outcome
                loaded += 1
        with self._lock:
            self.stats.entries_loaded += loaded
            if scan.damaged:
                self.stats.salvaged_records += len(scan.records)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def lookup_entry(self, key: str, seed: int
                     ) -> Tuple[Optional[RunOutcome], bool]:
        """``(outcome, seed_sensitive)`` from the persisted tiers, or
        ``(None, False)``.  Counts a store hit or a (true cold) miss."""
        with self._lock:
            outcome = self._det.get(key)
            if outcome is not None:
                self.stats.hits += 1
                return replace(outcome), False
            outcome = self._seeded.get((key, seed))
            if outcome is not None:
                self.stats.hits += 1
                return replace(outcome), True
            self.stats.misses += 1
            return None, False

    def lookup_profile(self, key: str) -> Optional[Dict[str, Any]]:
        """The newest whole-profile record with this content key."""
        with self._lock:
            return self._profiles_by_key.get(key)

    def profile_for_test(self, test: str) -> Optional[Dict[str, Any]]:
        """The newest whole-profile record for this unit test (any key)."""
        with self._lock:
            return self._profile_by_test.get(test)

    def confirmed_params(self) -> Set[str]:
        """Every parameter the newest stored profiles confirmed unsafe —
        the blacklist-coupling closure's raw material."""
        with self._lock:
            confirmed: Set[str] = set()
            for record in self._profile_by_test.values():
                confirmed.update(str(p) for p in record.get("confirmed", ()))
            return confirmed

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _claim_segment_locked(self) -> Optional[Any]:
        """Allocate and open a fresh segment for this pid.  Returns the
        writable handle (header already durable) or None on failure."""
        lock = self._claim_lock()
        try:
            existing = {os.path.basename(p) for p in self._segment_paths()}
            index = len(existing) + 1
            while True:
                name = "%s%06d%s" % (_SEGMENT_PREFIX, index, _SEGMENT_SUFFIX)
                if name not in existing:
                    break
                index += 1
            path = os.path.join(self.segments_dir, name)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except OSError:
                return None
            handle: Any = os.fdopen(fd, "ab")
            # lifetime lock: GC must not compact a live writer's segment.
            if fcntl is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    handle.close()
                    return None
            if self.disk_fault_plan is not None \
                    and self.disk_fault_plan.active:
                handle = FaultyFile(handle, self.disk_fault_plan,
                                    label=name, counts=self.fault_counts)
            header = {"kind": "header", "version": STORE_VERSION,
                      "app": self.app, "digest": self.digest,
                      "writer_pid": os.getpid()}
            try:
                handle.write(_encode(header))
                handle.flush()
                os.fsync(handle.fileno())
                fsync_directory(path)
            except OSError:
                handle.close()
                return None
            manifest = self.read_manifest()
            segments = list(manifest.get("segments", []))
            if name not in segments:
                segments.append(name)
                manifest["segments"] = sorted(segments)
                self._write_manifest(manifest)
            return handle
        finally:
            if lock is not None:
                if fcntl is not None:
                    try:
                        fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
                    except OSError:
                        pass
                lock.close()

    def _writer_handle(self) -> Optional[Any]:
        """The current pid's writer, claimed lazily.  A forked child sees
        the parent's pid on the inherited state and claims its *own*
        segment — the inherited handle is deliberately left open and
        untouched (closing it would release the parent's flock, which is
        shared across the fork)."""
        pid = os.getpid()
        if self._writer_pid == pid:
            return None if self._writer_dead else self._writer
        self._writer = None
        self._writer_pid = pid
        self._writer_dead = False
        self._writer = self._claim_segment_locked()
        if self._writer is None:
            self._writer_dead = True
            self.stats.write_errors += 1
        return self._writer

    def _append(self, record: Mapping[str, Any]) -> bool:
        """Durably append one record; False (never an exception) when the
        store is degraded or the write fails.  InjectedCrash — simulated
        process death — is the one thing allowed through, by design."""
        with self._lock:
            writer = self._writer_handle()
            if writer is None:
                return False
            try:
                writer.write(_encode(record))
                writer.flush()
                os.fsync(writer.fileno())
            except OSError:
                # ENOSPC / torn write / dying disk: retire the writer and
                # keep the campaign alive read-only.  The segment's intact
                # prefix remains salvageable.
                self.stats.write_errors += 1
                self._writer_dead = True
                try:
                    writer.close()
                except OSError:
                    pass
                self._writer = None
                return False
            self.stats.appends += 1
            return True

    def append_entry(self, key: str, seed: Optional[int],
                     outcome: RunOutcome) -> bool:
        """Durably append one cache entry (``seed=None`` = deterministic).

        Returns False (store retired read-only, campaign unaffected) when
        the write layer fails; see :meth:`_append`.
        """
        return self._append({"kind": "entry", "app": self.app,
                             "digest": self.digest, "key": key,
                             "seed": seed, "outcome": asdict(outcome)})

    def append_profile(self, key: str, test: str,
                       record: Mapping[str, Any],
                       confirmed: Sequence[str] = ()) -> bool:
        """Durably append one whole-profile record (newest wins per key).

        ``record`` is the checkpoint test-done payload (results, pool
        stats, executions, ...); ``confirmed`` lists the parameters this
        profile confirmed unsafe, for the planner's blacklist-coupling
        closure.  The serving maps are updated in place so a plan built
        later in the same session sees the fresh record.
        """
        framed = {"kind": "profile", "app": self.app, "digest": self.digest,
                  "key": key, "test": test, "confirmed": list(confirmed),
                  "record": dict(record)}
        if not self._append(framed):
            return False
        with self._lock:
            self._profiles_by_key[key] = framed
            self._profile_by_test[test] = framed
        return True

    def put_report(self, report: Mapping[str, Any]) -> bool:
        """Durably append the finished application report (newest wins)."""
        return self._append({"kind": "report", "app": self.app,
                             "digest": self.digest, "report": dict(report)})

    def close(self) -> None:
        """Release the writer segment (and its flock), if this pid owns it.

        Safe to call repeatedly and from forked children: a child that
        inherited the handle leaves it alone for the parent to close.
        """
        with self._lock:
            writer, self._writer = self._writer, None
            owned = self._writer_pid == os.getpid()
            self._writer_pid = None
        if writer is not None and owned:
            try:
                writer.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # maintenance surface (repro store {stats,verify,gc})
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A full scan of every substrate in the store (no app binding)."""
        self._ensure_layout()
        substrates: Dict[Tuple[str, int], Dict[str, int]] = {}
        totals = {"segments": 0, "bytes": 0, "entries": 0,
                  "deterministic": 0, "seeded": 0, "reports": 0,
                  "profiles": 0, "corrupt_records": 0,
                  "truncated_tails": 0, "salvaged_records": 0}
        max_version = 0
        for path in self._segment_paths():
            scan = _scan_segment(path)
            totals["segments"] += 1
            try:
                totals["bytes"] += os.path.getsize(path)
            except OSError:
                pass
            totals["corrupt_records"] += scan.corrupt
            totals["truncated_tails"] += scan.truncated
            if scan.damaged:
                totals["salvaged_records"] += len(scan.records)
            for record in scan.records:
                kind = record.get("kind")
                if kind == "header":
                    version = record.get("version")
                    if isinstance(version, int):
                        max_version = max(max_version, version)
                    continue
                bucket = substrates.setdefault(
                    (str(record.get("app")), record.get("digest")),
                    {"entries": 0, "deterministic": 0, "seeded": 0,
                     "reports": 0, "profiles": 0})
                if kind == "entry":
                    totals["entries"] += 1
                    bucket["entries"] += 1
                    tier = "deterministic" if record.get("seed") is None \
                        else "seeded"
                    totals[tier] += 1
                    bucket[tier] += 1
                elif kind == "report":
                    totals["reports"] += 1
                    bucket["reports"] += 1
                elif kind == "profile":
                    totals["profiles"] += 1
                    bucket["profiles"] += 1
        if max_version > STORE_VERSION:
            raise StoreError(
                "store at %r was written by format version %d; this build "
                "reads up to version %d" % (self.root, max_version,
                                            STORE_VERSION))
        totals["substrates"] = [
            {"app": app, "digest": digest, **counts}
            for (app, digest), counts in sorted(substrates.items(),
                                                key=lambda kv: str(kv[0]))]
        return totals

    def gc(self) -> Dict[str, Any]:
        """Compact every *quiescent* segment into one deduplicated
        segment: the newest record per entry slot and the newest report
        per substrate survive; damaged spans and superseded duplicates
        are dropped.  Segments still flocked by a live writer are left
        alone entirely."""
        self._ensure_layout()
        lock = self._claim_lock()
        try:
            live_entries: Dict[Tuple[str, Any, str, Any], Dict[str, Any]] = {}
            live_reports: Dict[Tuple[str, Any], Dict[str, Any]] = {}
            live_profiles: Dict[Tuple[str, str], Dict[str, Any]] = {}
            compacted: List[str] = []
            skipped: List[str] = []
            dropped_damage = 0
            for path in self._segment_paths():
                try:
                    probe = open(path, "rb")
                except OSError:
                    skipped.append(os.path.basename(path))
                    continue
                busy = not self._flock(
                    probe, (fcntl.LOCK_EX | fcntl.LOCK_NB)
                    if fcntl is not None else 0)
                if busy:
                    probe.close()
                    skipped.append(os.path.basename(path))
                    continue
                scan = _scan_segment(path)
                probe.close()
                dropped_damage += scan.corrupt + scan.truncated
                for record in scan.records:
                    kind = record.get("kind")
                    if kind == "entry":
                        slot = (str(record.get("app")), record.get("digest"),
                                str(record.get("key")), record.get("seed"))
                        live_entries[slot] = record
                    elif kind == "report":
                        live_reports[(str(record.get("app")),
                                      record.get("digest"))] = record
                    elif kind == "profile":
                        live_profiles[(str(record.get("app")),
                                       str(record.get("key")))] = record
                compacted.append(os.path.basename(path))
            if not compacted:
                return {"compacted_segments": 0, "kept_segments": len(skipped),
                        "entries": 0, "profiles": 0, "reports": 0,
                        "dropped_damage": dropped_damage}
            index = 1
            existing = {os.path.basename(p) for p in self._segment_paths()}
            while "%s%06d%s" % (_SEGMENT_PREFIX, index,
                                _SEGMENT_SUFFIX) in existing:
                index += 1
            name = "%s%06d%s" % (_SEGMENT_PREFIX, index, _SEGMENT_SUFFIX)
            path = os.path.join(self.segments_dir, name)
            with open(path, "wb") as handle:
                handle.write(_encode({"kind": "header",
                                      "version": STORE_VERSION,
                                      "app": None, "digest": None,
                                      "compacted": True,
                                      "writer_pid": os.getpid()}))
                for slot in sorted(live_entries, key=repr):
                    handle.write(_encode(live_entries[slot]))
                for slot in sorted(live_profiles, key=repr):
                    handle.write(_encode(live_profiles[slot]))
                for who in sorted(live_reports, key=repr):
                    handle.write(_encode(live_reports[who]))
                handle.flush()
                os.fsync(handle.fileno())
            fsync_directory(path)
            manifest = self.read_manifest()
            manifest["segments"] = sorted(
                (set(manifest.get("segments", [])) - set(compacted))
                | {name} | set(skipped))
            self._write_manifest(manifest)
            for old in compacted:
                try:
                    os.unlink(os.path.join(self.segments_dir, old))
                except OSError:
                    pass
            fsync_directory(path)
            return {"compacted_segments": len(compacted),
                    "kept_segments": len(skipped),
                    "entries": len(live_entries),
                    "profiles": len(live_profiles),
                    "reports": len(live_reports),
                    "dropped_damage": dropped_damage,
                    "segment": name}
        finally:
            if lock is not None:
                if fcntl is not None:
                    try:
                        fcntl.flock(lock.fileno(), fcntl.LOCK_UN)
                    except OSError:
                        pass
                lock.close()


def _outcome_from_record(record: Mapping[str, Any]) -> Optional[RunOutcome]:
    payload = record.get("outcome")
    if not isinstance(payload, dict):
        return None
    try:
        return RunOutcome(
            ok=bool(payload["ok"]),
            error_type=str(payload.get("error_type", "")),
            error_message=str(payload.get("error_message", "")),
            timed_out=bool(payload.get("timed_out", False)),
            infra=bool(payload.get("infra", False)),
            retries=int(payload.get("retries", 0)),
            faults=int(payload.get("faults", 0)),
            rng_used=bool(payload.get("rng_used", False)))
    except (KeyError, TypeError, ValueError):
        return None


class StoreBackedExecutionCache(ExecutionCache):
    """An :class:`ExecutionCache` whose misses fall through to a
    :class:`ResultStore` and whose stores also persist durably.

    Persisted hits are promoted into the in-memory tiers, so the disk is
    consulted at most once per key and the replay semantics (two-tier
    seeded/deterministic soundness, infra never cached) are exactly the
    in-memory cache's — the store only widens where entries come from.
    """

    def __init__(self, context: Optional[Mapping[str, Any]],
                 backing: ResultStore) -> None:
        super().__init__(context)
        self.backing = backing

    def lookup(self, test_name: str, canonical: Any,
               seed: int) -> Optional[Any]:
        """Memory first, then disk; a disk hit is promoted into memory."""
        key = self._key(test_name, canonical)
        with self._lock:
            outcome = self._deterministic.get(key)
            if outcome is None:
                outcome = self._seeded.get((key, seed))
            if outcome is not None:
                self.hits += 1
                return replace(outcome)
        stored, seed_sensitive = self.backing.lookup_entry(key, seed)
        with self._lock:
            if stored is None:
                self.misses += 1
                return None
            self.hits += 1
            if seed_sensitive:
                self._seeded[(key, seed)] = stored
            else:
                self._deterministic[key] = stored
            return replace(stored)

    def store(self, test_name: str, canonical: Any, seed: int, outcome: Any,
              seed_sensitive: bool) -> bool:
        """Cache in memory, and persist iff the cache accepted the entry
        (so nothing uncacheable — infra outcomes — ever reaches disk)."""
        cached = super().store(test_name, canonical, seed, outcome,
                               seed_sensitive)
        if cached:
            self.backing.append_entry(self._key(test_name, canonical),
                                      seed if seed_sensitive else None,
                                      outcome)
        return cached
