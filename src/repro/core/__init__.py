"""ZebraConf core: ConfAgent, TestGenerator, TestRunner, orchestration."""

from repro.core.confagent import (NO_OVERRIDE, UNIT_TEST, ConfAgent, NullAgent,
                                  current_agent)
from repro.core.depinfer import (InferredDependency, infer_dependencies,
                                 infer_rules_for_corpus)
from repro.core.integration import FileAssignment, integration_session
from repro.core.observe import (METRIC_CATALOG, MetricsRegistry, Observation,
                                phase_costs, write_chrome_trace,
                                write_metrics_text, write_spans_jsonl)
from repro.core.orchestrator import (Campaign, CampaignConfig,
                                     application_campaigns, run_full_campaign)
from repro.core.pooling import FrequentFailureTracker, PooledTester
from repro.core.prerun import TestProfile, prerun_corpus, prerun_test
from repro.core.registry import CORPUS, Corpus, TestContext, UnitTest, unit_test
from repro.core.report import AppReport, CampaignReport
from repro.core.runner import TestRunner
from repro.core.testgen import (DependencyRule, HeteroAssignment,
                                ParamAssignment, TestGenerator, TestInstance)
from repro.core.triage import ParamVerdict, triage_param, triage_report

__all__ = [
    "ConfAgent", "NullAgent", "current_agent", "NO_OVERRIDE", "UNIT_TEST",
    "Campaign", "CampaignConfig", "application_campaigns", "run_full_campaign",
    "FrequentFailureTracker", "PooledTester", "TestProfile", "prerun_corpus",
    "prerun_test", "CORPUS", "Corpus", "TestContext", "UnitTest", "unit_test",
    "AppReport", "CampaignReport", "TestRunner", "DependencyRule",
    "HeteroAssignment", "ParamAssignment", "TestGenerator", "TestInstance",
    "ParamVerdict", "triage_param", "triage_report", "InferredDependency",
    "infer_dependencies", "infer_rules_for_corpus", "FileAssignment",
    "integration_session", "METRIC_CATALOG", "MetricsRegistry", "Observation",
    "phase_costs", "write_chrome_trace", "write_metrics_text",
    "write_spans_jsonl",
]
