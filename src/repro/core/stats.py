"""Hypothesis testing for nondeterministic unit tests (§5, §7.2).

TestRunner reports a parameter only when the heterogeneous configuration
fails *and* the homogeneous configurations pass — but a flaky test can
produce that pattern by chance.  The paper re-runs suspicious instances
"until we can be sure that the parameter is heterogeneous unsafe with
high probability, according to hypothesis testing using a significance
level of 0.0001".

We use the one-sided Fisher exact test on the 2x2 table

    =============  =======  =======
                   failed   passed
    heterogeneous  k        n - k
    homogeneous    j        m - j
    =============  =======  =======

with null hypothesis "failure probability is independent of the
configuration being heterogeneous".  The one-sided p-value is the
hypergeometric tail P(X >= k).  With fully deterministic outcomes the
smallest confirming design is 8 hetero failures vs 0 homo failures out of
8 trials each: p = 1 / C(16, 8) ~= 7.8e-5 < 1e-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Tuple

#: Significance level from §5.
DEFAULT_ALPHA = 1e-4

#: Smallest per-side trial count that can reach significance when the
#: outcome pattern is perfectly separated (see module docstring).
MIN_DECISIVE_TRIALS = 8


def hypergeom_tail(k: int, n: int, j: int, m: int) -> float:
    """One-sided Fisher exact p-value: P(hetero failures >= k).

    ``k``/``n``: failures/trials under heterogeneous configuration;
    ``j``/``m``: failures/trials under homogeneous configurations.
    """
    if not (0 <= k <= n and 0 <= j <= m):
        raise ValueError("inconsistent contingency table")
    total_fail = k + j
    total = n + m
    if total == 0:
        return 1.0
    denom = comb(total, total_fail)
    tail = 0
    upper = min(n, total_fail)
    for x in range(k, upper + 1):
        tail += comb(n, x) * comb(m, total_fail - x)
    return tail / denom


@dataclass
class TrialTally:
    """Running outcome counts for one suspicious test instance."""

    hetero_failures: int = 0
    hetero_trials: int = 0
    homo_failures: int = 0
    homo_trials: int = 0

    def record_hetero(self, failed: bool) -> None:
        self.hetero_trials += 1
        if failed:
            self.hetero_failures += 1

    def record_homo(self, failed: bool) -> None:
        self.homo_trials += 1
        if failed:
            self.homo_failures += 1

    def p_value(self) -> float:
        return hypergeom_tail(self.hetero_failures, self.hetero_trials,
                              self.homo_failures, self.homo_trials)

    def significant(self, alpha: float = DEFAULT_ALPHA) -> bool:
        return self.p_value() <= alpha

    def hopeless(self, alpha: float = DEFAULT_ALPHA,
                 max_trials: int = 64) -> bool:
        """True when even a perfect future streak cannot reach ``alpha``
        within ``max_trials`` per side — stop wasting machine time."""
        best = TrialTally(
            hetero_failures=self.hetero_failures + (max_trials - self.hetero_trials),
            hetero_trials=max_trials,
            homo_failures=self.homo_failures,
            homo_trials=max_trials)
        return not best.significant(alpha)


def decisive_trials(alpha: float = DEFAULT_ALPHA) -> int:
    """Smallest n with 1 / C(2n, n) <= alpha (perfect-separation design)."""
    n = 1
    while 1.0 / comb(2 * n, n) > alpha:
        n += 1
    return n
