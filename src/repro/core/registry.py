"""Registry of reusable whole-system unit tests (the corpus).

ZebraConf does not write tests; it *reuses* the target application's
existing whole-system unit tests (§3.2).  Our corpus plays the role of
those JUnit suites: each entry is a callable that builds a mini cluster,
drives a scenario, and raises on failure.  The registry also carries
ground-truth metadata used **only** by triage/benchmark code (never by
detection): whether the test manipulates private node state, whether its
assertions observe state through public APIs, and whether it is known to
be nondeterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass
class TestContext:
    """Per-execution context handed to every corpus unit test.

    ``rng`` is freshly seeded per trial by TestRunner, so tests that model
    nondeterminism (timing races, random payload sizes) genuinely flake
    between trials while staying reproducible for a fixed seed.
    """

    rng: random.Random
    trial: int = 0

    def maybe(self, probability: float) -> bool:
        """True with the given probability (nondeterminism helper)."""
        return self.rng.random() < probability


@dataclass(frozen=True)
class UnitTest:
    """One whole-system unit test in the corpus."""

    app: str
    name: str
    fn: Callable[[TestContext], None]
    #: False when the test pokes private node state / shares objects in a
    #: way impossible in a real distributed setting (§7.1 FP cause 1).
    realistic: bool = True
    #: "public" when its assertions observe state through public APIs,
    #: "private" when only through internals (§7.1's 7-vs-9 split).
    observability: str = "public"
    #: True for assertions the paper calls overly strict (FP cause 3).
    strict_assertion: bool = False
    #: Declared nondeterminism rate, for ground-truth accounting only.
    flaky: bool = False
    tags: Tuple[str, ...] = ()
    notes: str = ""

    @property
    def full_name(self) -> str:
        return "%s::%s" % (self.app, self.name)


class Corpus:
    """All registered unit tests, keyed by application."""

    def __init__(self) -> None:
        self._tests: Dict[str, List[UnitTest]] = {}

    def register(self, test: UnitTest) -> UnitTest:
        tests = self._tests.setdefault(test.app, [])
        if any(t.name == test.name for t in tests):
            raise ValueError("duplicate test %s" % test.full_name)
        tests.append(test)
        return test

    def for_app(self, app: str) -> List[UnitTest]:
        return list(self._tests.get(app, []))

    def apps(self) -> List[str]:
        return sorted(self._tests)

    def all_tests(self) -> List[UnitTest]:
        return [t for app in self.apps() for t in self._tests[app]]

    def get(self, app: str, name: str) -> UnitTest:
        for test in self._tests.get(app, []):
            if test.name == name:
                return test
        raise KeyError("%s::%s" % (app, name))

    def __len__(self) -> int:
        return sum(len(v) for v in self._tests.values())


#: The process-wide corpus; app suites register into it at import time.
CORPUS = Corpus()


def unit_test(app: str, name: Optional[str] = None, *, realistic: bool = True,
              observability: str = "public", strict_assertion: bool = False,
              flaky: bool = False, tags: Iterable[str] = (), notes: str = "",
              corpus: Corpus = CORPUS) -> Callable:
    """Decorator registering a corpus unit test.

    >>> @unit_test("hdfs", "TestHeartbeat.testDeadNodeDetection")
    ... def test_dead_node_detection(ctx):
    ...     ...
    """

    def decorate(fn: Callable[[TestContext], None]) -> Callable[[TestContext], None]:
        corpus.register(UnitTest(
            app=app, name=name or fn.__name__, fn=fn, realistic=realistic,
            observability=observability, strict_assertion=strict_assertion,
            flaky=flaky, tags=tuple(tags), notes=notes))
        return fn

    return decorate


def load_all_suites() -> Corpus:
    """Import every application package so its suite registers itself."""
    # Imports are local to avoid import cycles at package-init time.
    # (Hadoop Common has no tests of its own — Table 5 has no Common
    # column; its two unsafe parameters surface through the other apps.)
    import repro.apps.hdfs.suite  # noqa: F401
    import repro.apps.mapreduce.suite  # noqa: F401
    import repro.apps.yarn.suite  # noqa: F401
    import repro.apps.flink.suite  # noqa: F401
    import repro.apps.hbase.suite  # noqa: F401
    import repro.apps.hadooptools.suite  # noqa: F401
    return CORPUS
