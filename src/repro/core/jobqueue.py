"""Multi-campaign job queue behind ``repro serve`` (docs/SERVICE.md).

The queue turns one-shot CLI campaigns into *jobs*: named, persistent,
cancellable units of work that survive a daemon crash.  It is the thin
scheduling layer between the HTTP front end (repro.core.service) and the
existing orchestrator — every job is an ordinary
:class:`repro.core.orchestrator.Campaign` run with

* a **checkpoint journal keyed by the spec digest** (not the job id), so
  a cancelled or crashed job — or a brand-new job with a byte-identical
  spec — resumes from whatever profiles are already journaled;
* the daemon's shared **result store** (``--store``), so an identical
  resubmission is served warm (strictly fewer executions, byte-identical
  findings — the store's own contract);
* a ``progress_hook`` streaming one NDJSON event per committed profile
  into ``events.jsonl`` (served by ``GET /v1/campaigns/{id}/events``);
* a ``cancel_event`` so ``DELETE /v1/campaigns/{id}`` stops the campaign
  between profiles while keeping the journal resumable.

Scheduling is FIFO with a bounded number of concurrently running jobs
(``--serve-max-active``).  Two safety constraints may let a younger job
overtake a blocked head-of-line job: (1) jobs with the *same spec
digest* never run concurrently (they would share one checkpoint
journal), and (2) jobs whose ``disable_ipc_sharing`` setting differs
from the currently running set wait (the IPC-sharing switch is process
global).

On-disk layout under the daemon's ``--serve-state DIR``::

    jobs/<id>/spec.json    # canonical spec, written once at submit
    jobs/<id>/status.json  # atomic (tmp+rename+fsync) state record
    jobs/<id>/events.jsonl # append-only NDJSON progress/lifecycle feed
    jobs/<id>/report.json  # byte-identical to `repro campaign --json`
    jobs/<id>/report.md    # byte-identical to `repro campaign --markdown`
    checkpoints/<digest>.jsonl  # the orchestrator's own journal format

``status.json`` is the authoritative record (fsync'd on every
transition); ``events.jsonl`` is a best-effort feed that can always be
re-derived by re-running.  A daemon restarted on the same state
directory re-queues every job found ``queued`` or ``running`` and keeps
serving the reports of finished ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import CheckpointError, fsync_directory
from repro.core.orchestrator import (Campaign, CampaignCancelled,
                                     CampaignConfig)

#: job lifecycle states (see docs/SERVICE.md for the transition diagram).
SUBMITTED = "submitted"
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (SUBMITTED, QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: states a job can never leave.
TERMINAL_STATES = frozenset((DONE, FAILED, CANCELLED))

#: fault-probability override keys accepted in a spec's ``faults`` map,
#: mirroring the CLI's --fault-* flags (repro.common.faults.FaultPlan).
FAULT_KEYS = {
    "drop": "drop_prob",
    "delay": "delay_prob",
    "duplicate": "duplicate_prob",
    "crash": "crash_prob",
    "slow_io": "io_slowdown_prob",
    "clock_jitter": "clock_jitter",
    "infra": "infra_error_prob",
    "worker_crash": "worker_crash_prob",
}

#: campaign-spec schema: key -> (default, type tag).  Type tags: "bool",
#: "int", "float?" (optional float), "int?" (optional int), "str?"
#: (optional string), "params" (optional list of parameter names),
#: "faults" (mapping of FAULT_KEYS to probabilities), "choice:..." and
#: "choice?:..." (nullable choice).
#: Kept flat and explicit so docs/SERVICE.md can state it verbatim.
SPEC_SCHEMA: Dict[str, Tuple[Any, str]] = {
    "app": (None, "app"),
    "params": (None, "params"),
    "workers": (1, "int"),
    "parallel_backend": ("thread", "choice:thread,process"),
    "schedule": ("lpt", "choice:lpt,catalog"),
    "exec_cache": (False, "bool"),
    "store": (True, "bool"),
    "incremental": (False, "bool"),
    "sample": (None, "choice?:pairwise,random-k,dissimilarity"),
    "sample_k": (None, "int?"),
    "sample_seed": (0, "int"),
    "audit": (False, "bool"),
    "supervise": (True, "bool"),
    "pool_size": (None, "int?"),
    "blacklist_threshold": (3, "int"),
    "disable_ipc_sharing": (False, "bool"),
    "infra_retries": (2, "int"),
    "watchdog": (None, "float?"),
    "chaos": (False, "bool"),
    "fault_seed": (0, "int"),
    "faults": (None, "faults"),
    "distributed": (None, "str?"),
}


class JobSpecError(ValueError):
    """A submitted campaign spec failed validation (HTTP 400)."""


def canonical_spec(spec: Any) -> Dict[str, Any]:
    """Validate a submitted spec and return its canonical form.

    The canonical form has every key of :data:`SPEC_SCHEMA` present (so
    defaults are pinned at submission time), ``params`` sorted, and no
    unknown keys — it is what gets digested, journaled against, and
    echoed back by the status endpoint.  Raises :class:`JobSpecError`
    with a human-readable message on any problem.
    """
    from repro.apps import catalog
    if not isinstance(spec, dict):
        raise JobSpecError("spec must be a JSON object")
    unknown = sorted(set(spec) - set(SPEC_SCHEMA))
    if unknown:
        raise JobSpecError("unknown spec key(s): %s" % ", ".join(unknown))
    out: Dict[str, Any] = {}
    for key, (default, kind) in SPEC_SCHEMA.items():
        value = spec.get(key, default)
        if kind == "app":
            if value not in catalog.APP_NAMES:
                raise JobSpecError(
                    "app must be one of %s" % ", ".join(catalog.APP_NAMES))
        elif kind == "bool":
            if not isinstance(value, bool):
                raise JobSpecError("%s must be a boolean" % key)
        elif kind == "int":
            if not isinstance(value, int) or isinstance(value, bool):
                raise JobSpecError("%s must be an integer" % key)
        elif kind == "int?":
            if value is not None and (not isinstance(value, int)
                                      or isinstance(value, bool)):
                raise JobSpecError("%s must be an integer or null" % key)
        elif kind == "float?":
            if value is not None and not isinstance(value, (int, float)):
                raise JobSpecError("%s must be a number or null" % key)
            if value is not None:
                value = float(value)
        elif kind == "str?":
            if value is not None and not isinstance(value, str):
                raise JobSpecError("%s must be a string or null" % key)
        elif kind == "params":
            if value is not None:
                if (not isinstance(value, list)
                        or not all(isinstance(p, str) for p in value)):
                    raise JobSpecError(
                        "params must be a list of parameter names")
                value = sorted(set(value))
        elif kind == "faults":
            if value is not None:
                if not isinstance(value, dict):
                    raise JobSpecError("faults must be an object")
                bad = sorted(set(value) - set(FAULT_KEYS))
                if bad:
                    raise JobSpecError(
                        "unknown fault key(s): %s (known: %s)"
                        % (", ".join(bad), ", ".join(sorted(FAULT_KEYS))))
                for name, prob in value.items():
                    if not isinstance(prob, (int, float)):
                        raise JobSpecError("faults.%s must be a number"
                                           % name)
                value = {k: float(v) for k, v in sorted(value.items())}
        elif kind.startswith("choice?:"):
            choices = kind.split(":", 1)[1].split(",")
            if value is not None and value not in choices:
                raise JobSpecError("%s must be null or one of %s"
                                   % (key, ", ".join(choices)))
        elif kind.startswith("choice:"):
            choices = kind.split(":", 1)[1].split(",")
            if value not in choices:
                raise JobSpecError("%s must be one of %s"
                                   % (key, ", ".join(choices)))
        out[key] = value
    if out["incremental"] and not out["store"]:
        raise JobSpecError("incremental requires store: true (the plan is "
                           "a diff against stored profile records)")
    return out


def spec_digest(spec: Dict[str, Any]) -> str:
    """Content digest of a canonical spec (the checkpoint-journal key)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _fault_plan_from_spec(spec: Dict[str, Any]) -> Optional[Any]:
    """Mirror of the CLI's --chaos/--fault-* flag handling."""
    from dataclasses import replace

    from repro.common.faults import FaultPlan
    base = (FaultPlan.moderate(spec["fault_seed"]) if spec["chaos"]
            else FaultPlan(seed=spec["fault_seed"]))
    overrides = {FAULT_KEYS[name]: prob
                 for name, prob in (spec["faults"] or {}).items()}
    plan = replace(base, **overrides) if overrides else base
    return plan if plan.active else None


def _write_json_atomic(path: str, record: Dict[str, Any]) -> None:
    """Durable single-file update: temp file, fsync, rename, dir fsync."""
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(os.path.dirname(path))


class CampaignJob:
    """One submitted campaign: spec + lifecycle state + artifacts.

    All mutable fields are guarded by the owning queue's lock; the
    service layer only reads them through :class:`JobQueue` accessors.
    """

    def __init__(self, job_id: str, spec: Dict[str, Any], root: str) -> None:
        self.id = job_id
        self.spec = spec
        self.digest = spec_digest(spec)
        self.root = root
        self.state = SUBMITTED
        self.error = ""
        self.cancel_requested = False
        self.cancel_event = threading.Event()
        #: in-memory copy of events.jsonl (replayed to stream clients).
        self.events: List[Dict[str, Any]] = []
        #: latest orchestrator progress snapshot (None before the first
        #: profile commit).
        self.progress: Optional[Dict[str, Any]] = None

    # -- paths ---------------------------------------------------------
    def path(self, name: str) -> str:
        """A file path inside this job's state directory."""
        return os.path.join(self.root, name)

    def report_path(self, fmt: str) -> str:
        """Where the persisted report lives (``fmt``: json | markdown)."""
        return self.path("report.json" if fmt == "json" else "report.md")

    def has_report(self) -> bool:
        """True once the report artifacts have been durably written."""
        return os.path.exists(self.report_path("json"))

    # -- serialization -------------------------------------------------
    def status_record(self) -> Dict[str, Any]:
        """The persisted/served core status (what status.json holds)."""
        return {
            "id": self.id,
            "app": self.spec["app"],
            "spec_digest": self.digest,
            "state": self.state,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
        }


class JobQueue:
    """FIFO campaign scheduler with bounded concurrency and persistence.

    Lifecycle: construct, :meth:`start` (loads prior state and spawns the
    scheduler thread), then :meth:`submit`/:meth:`cancel`/accessors from
    any thread, and finally :meth:`stop`.  See the module docstring for
    the scheduling constraints and the on-disk layout.
    """

    def __init__(self, state_dir: str, store_path: Optional[str] = None,
                 max_active: int = 1, dist_secret: Optional[str] = None,
                 log: Optional[Any] = None) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.state_dir = state_dir
        self.store_path = store_path
        self.max_active = max_active
        self.dist_secret = dist_secret
        self.log = log
        self.jobs: Dict[str, CampaignJob] = {}
        self._pending: List[str] = []   # job ids, FIFO
        self._active: Dict[str, CampaignJob] = {}
        self._lock = threading.Lock()
        #: notified on every event append / state transition; the events
        #: endpoint and the scheduler both wait on it.
        self.changed = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        self._next_id = 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Load persisted jobs, re-queue unfinished ones, start scheduling."""
        os.makedirs(os.path.join(self.state_dir, "jobs"), exist_ok=True)
        os.makedirs(os.path.join(self.state_dir, "checkpoints"),
                    exist_ok=True)
        self._load()
        self._scheduler = threading.Thread(target=self._schedule_loop,
                                           name="jobqueue-scheduler",
                                           daemon=True)
        self._scheduler.start()

    def stop(self, cancel_active: bool = True) -> None:
        """Stop scheduling; optionally cancel running jobs (they stay
        resumable — a later daemon on the same state dir picks them up)."""
        with self.changed:
            self._stop.set()
            if cancel_active:
                for job in self._active.values():
                    job.cancel_requested = True
                    job.cancel_event.set()
            self.changed.notify_all()
        if self._scheduler is not None:
            self._scheduler.join(timeout=5.0)

    def _load(self) -> None:
        jobs_root = os.path.join(self.state_dir, "jobs")
        for name in sorted(os.listdir(jobs_root)):
            root = os.path.join(jobs_root, name)
            try:
                with open(os.path.join(root, "spec.json")) as handle:
                    spec = canonical_spec(json.load(handle))
                with open(os.path.join(root, "status.json")) as handle:
                    status = json.load(handle)
            except (OSError, ValueError, JobSpecError):
                continue  # half-created job dir (crash mid-submit)
            job = CampaignJob(name, spec, root)
            job.state = status.get("state", QUEUED)
            job.error = status.get("error", "")
            job.cancel_requested = status.get("cancel_requested", False)
            job.events = self._load_events(job)
            for event in reversed(job.events):
                if event.get("event") == "progress":
                    job.progress = {k: v for k, v in event.items()
                                    if k not in ("event", "seq")}
                    break
            self.jobs[name] = job
            try:
                self._next_id = max(self._next_id, int(name.lstrip("c")) + 1)
            except ValueError:
                pass
            if job.state not in TERMINAL_STATES:
                # interrupted mid-flight (daemon crash): run it again —
                # the digest-keyed checkpoint journal makes that cheap.
                job.state = QUEUED
                job.cancel_requested = False
                self._persist(job)
                self._append_event(job, {"event": "state", "state": QUEUED,
                                         "reason": "requeued-on-restart"})
                self._pending.append(name)

    @staticmethod
    def _load_events(job: CampaignJob) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        try:
            with open(job.path("events.jsonl")) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        break  # torn tail from a crash — drop the rest
        except OSError:
            pass
        return events

    # ------------------------------------------------------------------
    # public API (used by repro.core.service)
    # ------------------------------------------------------------------
    def submit(self, raw_spec: Any) -> CampaignJob:
        """Validate, persist, and enqueue one campaign submission."""
        spec = canonical_spec(raw_spec)
        with self.changed:
            job_id = "c%06d" % self._next_id
            self._next_id += 1
            root = os.path.join(self.state_dir, "jobs", job_id)
            os.makedirs(root, exist_ok=True)
            job = CampaignJob(job_id, spec, root)
            _write_json_atomic(job.path("spec.json"), spec)
            job.state = QUEUED
            self._persist(job)
            self._append_event(job, {"event": "state", "state": QUEUED})
            self.jobs[job_id] = job
            self._pending.append(job_id)
            self.changed.notify_all()
            return job

    def get(self, job_id: str) -> Optional[CampaignJob]:
        """The job with this id, or None."""
        with self._lock:
            return self.jobs.get(job_id)

    def list_jobs(self) -> List[CampaignJob]:
        """Every known job, id-ordered (submission order)."""
        with self._lock:
            return [self.jobs[name] for name in sorted(self.jobs)]

    def cancel(self, job_id: str) -> CampaignJob:
        """Request cancellation; returns the job (KeyError if unknown).

        A queued job is cancelled immediately; a running one raises
        CampaignCancelled at its next between-profile check and lands in
        ``cancelled`` shortly after.  Either way the digest-keyed journal
        keeps every committed profile, so resubmitting the same spec
        resumes instead of restarting.
        """
        with self.changed:
            job = self.jobs[job_id]
            if job.state in TERMINAL_STATES:
                return job
            job.cancel_requested = True
            job.cancel_event.set()
            if job.state in (SUBMITTED, QUEUED):
                if job_id in self._pending:
                    self._pending.remove(job_id)
                self._transition(job, CANCELLED)
            else:
                self._persist(job)
                self._append_event(job, {"event": "cancel-requested"})
            self.changed.notify_all()
            return job

    def events_since(self, job_id: str, index: int
                     ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events after ``index`` plus whether the job is terminal."""
        with self._lock:
            job = self.jobs[job_id]
            return list(job.events[index:]), job.state in TERMINAL_STATES

    def wait_for_change(self, timeout: float) -> None:
        """Block until any event/transition happens (or timeout)."""
        with self.changed:
            self.changed.wait(timeout)

    def checkpoint_path_for(self, digest: str) -> str:
        """The digest-keyed journal shared by all jobs with this spec."""
        return os.path.join(self.state_dir, "checkpoints",
                            digest + ".jsonl")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _startable_locked(self) -> Optional[CampaignJob]:
        """First pending job that violates no concurrency constraint."""
        if len(self._active) >= self.max_active:
            return None
        active_digests = {j.digest for j in self._active.values()}
        ipc_modes = {j.spec["disable_ipc_sharing"]
                     for j in self._active.values()}
        for job_id in self._pending:
            job = self.jobs[job_id]
            if job.digest in active_digests:
                continue  # would share a checkpoint journal
            if ipc_modes and job.spec["disable_ipc_sharing"] not in ipc_modes:
                continue  # IPC-sharing switch is process-global
            return job
        return None

    def _schedule_loop(self) -> None:
        while not self._stop.is_set():
            with self.changed:
                job = self._startable_locked()
                if job is None:
                    self.changed.wait(0.2)
                    continue
                self._pending.remove(job.id)
                self._active[job.id] = job
                self._transition(job, RUNNING)
            thread = threading.Thread(target=self._run_job, args=(job,),
                                      name="job-%s" % job.id, daemon=True)
            thread.start()

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def _config_for(self, job: CampaignJob) -> CampaignConfig:
        """Spec -> CampaignConfig, mirroring the CLI's ``_config``."""
        spec = job.spec
        config = CampaignConfig(
            workers=spec["workers"],
            parallel_backend=spec["parallel_backend"],
            schedule=spec["schedule"],
            exec_cache=spec["exec_cache"],
            store_path=self.store_path if spec["store"] else None,
            incremental=spec["incremental"],
            sample=spec["sample"],
            sample_k=spec["sample_k"],
            sample_seed=spec["sample_seed"],
            audit=spec["audit"],
            supervise=spec["supervise"],
            max_pool_size=spec["pool_size"],
            blacklist_threshold=spec["blacklist_threshold"],
            disable_ipc_sharing=spec["disable_ipc_sharing"],
            only_params=(frozenset(spec["params"]) if spec["params"]
                         else None),
            infra_retries=spec["infra_retries"],
            fault_plan=_fault_plan_from_spec(spec),
            distributed=spec["distributed"],
            dist_secret=self.dist_secret,
            checkpoint_path=self.checkpoint_path_for(job.digest),
            cancel_event=job.cancel_event,
            progress_hook=lambda snapshot, _job=job: self._on_progress(
                _job, snapshot))
        if spec["watchdog"] is not None:
            config.watchdog_sim_s = spec["watchdog"]
        return config

    def _run_job(self, job: CampaignJob) -> None:
        from repro.apps import catalog
        from repro.core.store import StoreError
        try:
            spec = catalog.spec_for(job.spec["app"])
            campaign = Campaign(job.spec["app"], spec.registry,
                                dependency_rules=spec.dependency_rules,
                                config=self._config_for(job))
            report = campaign.run()
            self._write_report(job, report)
            final, error = DONE, ""
        except CampaignCancelled:
            final, error = CANCELLED, ""
        except (CheckpointError, StoreError) as exc:
            final, error = FAILED, str(exc)
        except Exception:  # noqa: BLE001 - the daemon must survive
            final, error = FAILED, traceback.format_exc()
        with self.changed:
            self._active.pop(job.id, None)
            self._transition(job, final, error=error)
            self.changed.notify_all()
        if self.log is not None:
            print("job %s (%s): %s%s"
                  % (job.id, job.spec["app"], final,
                     " — " + error.strip().splitlines()[-1] if error
                     else ""), file=self.log, flush=True)

    @staticmethod
    def _write_report(job: CampaignJob, report: Any) -> None:
        """Persist the report with the CLI's exact serialization, so the
        report endpoint serves bytes identical to ``repro campaign
        --json/--markdown`` for the same spec.

        The observation is stripped first: service jobs always observe
        (the progress hook implies it), but a CLI reference run usually
        does not, and the markdown renderer adds a "Where time went"
        section when an observation is present.  Dropping it keeps the
        byte-identity contract; the events stream is the service's
        observability surface.
        """
        from repro.core.report import app_report_to_dict
        from repro.core.reportmd import app_report_markdown
        report.observation = None
        with open(job.report_path("json"), "w") as handle:
            json.dump(app_report_to_dict(report), handle, indent=2)
        with open(job.report_path("md"), "w") as handle:
            handle.write(app_report_markdown(report))

    def _on_progress(self, job: CampaignJob, snapshot: Dict[str, Any]
                     ) -> None:
        """progress_hook target: runs on the campaign's committing thread."""
        with self.changed:
            job.progress = dict(snapshot)
            event = {"event": "progress"}
            event.update(snapshot)
            self._append_event(job, event)
            self.changed.notify_all()

    # ------------------------------------------------------------------
    # persistence primitives (caller holds the lock)
    # ------------------------------------------------------------------
    def _transition(self, job: CampaignJob, state: str, error: str = ""
                    ) -> None:
        job.state = state
        job.error = error
        self._persist(job)
        event = {"event": "state", "state": state}
        if error:
            event["error"] = error.strip().splitlines()[-1]
        self._append_event(job, event)

    def _persist(self, job: CampaignJob) -> None:
        _write_json_atomic(job.path("status.json"), job.status_record())

    def _append_event(self, job: CampaignJob, event: Dict[str, Any]) -> None:
        event = dict(event, seq=len(job.events) + 1)
        job.events.append(event)
        try:
            with open(job.path("events.jsonl"), "a") as handle:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:
            pass  # the feed is best-effort; status.json is authoritative
