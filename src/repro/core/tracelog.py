"""Structured campaign trace log.

A campaign makes thousands of pass/fail decisions; when a verdict looks
surprising, the raw material for debugging it is *which instances ran
and what each one concluded*.  `TraceLog` records that as structured
events which can be filtered in-process or dumped to JSON Lines (the
CLI's ``--trace`` flag).

Event kinds:

* ``prerun``    — one per unit test: usable?, node groups, exclusions
* ``instance``  — one per evaluated singleton instance: verdict + trials
* ``blacklist`` — a parameter crossed the frequent-failure threshold
* ``campaign``  — the closing summary

Every event carries two timestamps: ``at`` is wall-clock ``time.time()``
(useful for correlating with host logs, but nondeterministic), while
``sim_at`` is modelled machine time — cumulative executions x
``run_cost_s`` plus backoff at the moment of emission — which is a pure
function of campaign content.  Deterministic tests should assert on
``(kind, seq, sim_at)``, never on ``at``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    kind: str
    at: float
    data: Dict[str, Any]
    #: emission index within this log (deterministic tiebreak when two
    #: events share a sim timestamp)
    seq: int = 0
    #: modelled machine seconds at emission; deterministic
    sim_at: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "seq": self.seq,
                "sim_at": self.sim_at, **self.data}


class TraceLog:
    """Append-only, thread-compatible event collector."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, kind: str, sim_at: Optional[float] = None,
             **data: Any) -> TraceEvent:
        """Record an event.  Emitters that know the modelled clock pass
        ``sim_at``; others inherit the latest known sim time so the
        sim-timeline stays monotone."""
        if sim_at is None:
            sim_at = self.events[-1].sim_at if self.events else 0.0
        event = TraceEvent(kind=kind, at=time.time(), data=data,
                           seq=len(self.events), sim_at=sim_at)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def instances_for_param(self, param: str) -> List[TraceEvent]:
        return [event for event in self.of_kind("instance")
                if param in event.data.get("params", ())]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    def write_jsonl(self, path: str) -> int:
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.events)

    @classmethod
    def read_jsonl(cls, path: str) -> "TraceLog":
        log = cls()
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                kind = record.pop("kind")
                at = record.pop("at")
                # both fields absent in pre-observability trace files
                seq = record.pop("seq", len(log.events))
                sim_at = record.pop("sim_at", 0.0)
                log.events.append(TraceEvent(kind=kind, at=at, data=record,
                                             seq=seq, sim_at=sim_at))
        return log
